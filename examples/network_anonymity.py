"""Network-level anonymity: WhoPay over onion circuits (Section 4.3).

The paper's anonymity analysis is about application-level identities and
explicitly assumes onion routing underneath "whenever network level
anonymity is desired."  This example layers the two: a whistleblower peer
routes every WhoPay request through a 3-hop onion circuit, and we inspect
the actual transport traffic to show what each party observed.

Run:  python examples/network_anonymity.py
"""

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork
from repro.anonymity.onion import OnionOverlay, anonymize_node


def main() -> None:
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    whistleblower = net.add_peer("whistleblower", PeerConfig(balance=10))
    newsroom = net.add_peer("newsroom")
    overlay = OnionOverlay(net.transport, net.params, size=3)

    # Tap the transport to see who talks to whom.
    observed: list[tuple[str, str, str]] = []
    original = net.transport.request

    def tap(src, dst, kind, payload):
        observed.append((src, dst, kind))
        return original(src, dst, kind, payload)

    net.transport.request = tap

    circuit = anonymize_node(whistleblower, overlay)
    print(f"circuit established: client -> {' -> '.join(circuit.relays)} -> destination\n")

    state = whistleblower.purchase(value=2)
    whistleblower.issue("newsroom", state.coin_y)
    print("whistleblower purchased a coin and paid the newsroom through the circuit")

    # What did the endpoints see?
    broker_sources = {src for src, dst, kind in observed if dst == "broker" and kind.startswith("whopay.")}
    newsroom_sources = {src for src, dst, kind in observed if dst == "newsroom" and kind.startswith("whopay.")}
    print(f"\nsources the BROKER observed:   {sorted(broker_sources)}")
    print(f"sources the NEWSROOM observed: {sorted(newsroom_sources)}")
    assert "whistleblower" not in broker_sources | newsroom_sources
    print("-> the whistleblower's transport address never reached either endpoint")

    entry = circuit.relays[0]
    entry_peers = {dst for src, dst, kind in observed if src == entry} | {
        src for src, dst, kind in observed if dst == entry
    }
    print(f"\nparties the ENTRY relay touched: {sorted(entry_peers - {entry})}")
    print("-> the entry relay sees the client but only the next relay, never the payee/broker")

    hops = sum(1 for _src, _dst, kind in observed if kind == "onion.relay")
    direct = sum(1 for _src, _dst, kind in observed if kind.startswith("whopay."))
    print(f"\ncost of anonymity: {hops} relay hops carried {direct} protocol exchanges")
    print(f"payment still verified end-to-end: newsroom wallet value = {newsroom.balance_held()}")


if __name__ == "__main__":
    main()
