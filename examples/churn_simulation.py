"""Reproduce a slice of the paper's evaluation from the command line.

Runs a reduced Setup-A availability sweep (Policy I, proactive sync — the
configuration of Figures 2 and 4) and prints the broker-side and peer-side
series the paper plots, plus the headline scalability numbers.

Then demonstrates the fault-tolerant client API on a live deployment: a
payment storm over a lossy, duplicating network with a broker partition
window, driven entirely through the typed facades and their retry
policies — every payment still completes and the broker's conservation
audit passes.

Run:  python examples/churn_simulation.py            (reduced scale, ~10 s)
      WHOPAY_FULL=1 python examples/churn_simulation.py   (paper scale)
"""

import os

from repro.analysis.tables import format_series_table
from repro.sim import POLICY_I, run_availability_sweep
from repro.core.network import PeerConfig


def chaos_demo() -> None:
    """A payment workload surviving injected faults via the client API."""
    from repro.core.network import WhoPayNetwork
    from repro.crypto.params import PARAMS_TEST_512
    from repro.net.rpc import RetryPolicy
    from repro.net.transport import FaultPlan

    # Every peer's BrokerClient/PeerClient facade runs under this policy:
    # mutating calls carry idempotency keys, so retried requests whose
    # replies were lost are answered from the replay cache, never re-run.
    policy = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.1)
    net = WhoPayNetwork(params=PARAMS_TEST_512, retry_policy=policy)
    peers = [net.add_peer(f"p{i}", PeerConfig(balance=10)) for i in range(4)]
    for i, peer in enumerate(peers):
        coins = [peer.purchase() for _ in range(3)]
        peer.issue(peers[(i + 1) % 4].address, coins[0].coin_y)

    # 5% request loss + 5% reply loss + duplicates, and the broker cut off
    # for a window mid-run.  The seed makes the whole schedule replayable.
    plan = FaultPlan(
        seed=7, request_loss=0.05, response_loss=0.05, duplicate_rate=0.05
    ).partition("broker", "*", start=10.0, end=25.0)
    net.install_faults(plan)

    payments = 40
    from repro.core.errors import ServiceUnavailable

    for k in range(payments):
        payer, payee = peers[k % 4], peers[(k + 1) % 4]
        if k == 15:  # inside the window: the broker really is unreachable
            try:
                payer.purchase()
            except ServiceUnavailable as exc:
                print(f"  (t={net.clock.now():.0f}s: {exc})")
        payer.pay(payee.address)  # degrades to broker-free methods in the window
        net.advance(1.0)

    net.install_faults(None)
    for peer in peers:
        peer.sync_with_broker()

    recovered = sum(
        p.broker_client.stats.recovered + p.peer_client.stats.recovered for p in peers
    )
    print(f"{payments}/{payments} payments completed under faults: "
          f"{plan.stats.requests_dropped} requests dropped, "
          f"{plan.stats.replies_dropped} replies lost, "
          f"{plan.stats.duplicates_delivered} duplicates, "
          f"{plan.stats.partition_blocks} partition blocks; "
          f"{recovered} calls recovered by retries.")
    assert net.broker.verify_conservation(4 * 10)
    print("Conservation audit: OK — ledger effects stayed exactly-once.")


def main() -> None:
    full = os.environ.get("WHOPAY_FULL", "") == "1"
    rows = run_availability_sweep(POLICY_I, "proactive", small=not full)
    mu = [r["mu_hours"] for r in rows]

    print(format_series_table(
        "mu_hours",
        mu,
        {
            "purchases": [r["broker_purchase"] for r in rows],
            "dt_transfers": [r["broker_downtime_transfer"] for r in rows],
            "dt_renewals": [r["broker_downtime_renewal"] for r in rows],
            "syncs": [r["broker_sync"] for r in rows],
        },
        title="Broker load vs mean online session length (Figure 2 shape)",
    ))
    print()
    print(format_series_table(
        "mu_hours",
        mu,
        {
            "transfers": [round(r["peer_avg_transfer"], 1) for r in rows],
            "issues": [round(r["peer_avg_issue"], 1) for r in rows],
            "renewals": [round(r["peer_avg_renewal"], 1) for r in rows],
        },
        title="Average peer load (Figure 4 shape; note transfers dominate)",
    ))
    print()
    print(format_series_table(
        "mu_hours",
        mu,
        {
            "broker/peer cpu ratio": [round(r["cpu_ratio"], 1) for r in rows],
            "broker share of load": [round(r["broker_cpu_share"], 4) for r in rows],
        },
        title="Scalability headline (Figures 8/10 shape)",
    ))
    last = rows[-1]
    print(f"\nAt {last['availability']:.0%} availability the broker carries "
          f"{last['broker_cpu_share']:.1%} of total CPU load — the peers absorb the rest.")
    print("\nFault-tolerance demo (typed clients + retry policies + fault plan):")
    chaos_demo()


if __name__ == "__main__":
    main()
