"""Reproduce a slice of the paper's evaluation from the command line.

Runs a reduced Setup-A availability sweep (Policy I, proactive sync — the
configuration of Figures 2 and 4) and prints the broker-side and peer-side
series the paper plots, plus the headline scalability numbers.

Run:  python examples/churn_simulation.py            (reduced scale, ~10 s)
      WHOPAY_FULL=1 python examples/churn_simulation.py   (paper scale)
"""

import os

from repro.analysis.tables import format_series_table
from repro.sim import POLICY_I, run_availability_sweep


def main() -> None:
    full = os.environ.get("WHOPAY_FULL", "") == "1"
    rows = run_availability_sweep(POLICY_I, "proactive", small=not full)
    mu = [r["mu_hours"] for r in rows]

    print(format_series_table(
        "mu_hours",
        mu,
        {
            "purchases": [r["broker_purchase"] for r in rows],
            "dt_transfers": [r["broker_downtime_transfer"] for r in rows],
            "dt_renewals": [r["broker_downtime_renewal"] for r in rows],
            "syncs": [r["broker_sync"] for r in rows],
        },
        title="Broker load vs mean online session length (Figure 2 shape)",
    ))
    print()
    print(format_series_table(
        "mu_hours",
        mu,
        {
            "transfers": [round(r["peer_avg_transfer"], 1) for r in rows],
            "issues": [round(r["peer_avg_issue"], 1) for r in rows],
            "renewals": [round(r["peer_avg_renewal"], 1) for r in rows],
        },
        title="Average peer load (Figure 4 shape; note transfers dominate)",
    ))
    print()
    print(format_series_table(
        "mu_hours",
        mu,
        {
            "broker/peer cpu ratio": [round(r["cpu_ratio"], 1) for r in rows],
            "broker share of load": [round(r["broker_cpu_share"], 4) for r in rows],
        },
        title="Scalability headline (Figures 8/10 shape)",
    ))
    last = rows[-1]
    print(f"\nAt {last['availability']:.0%} availability the broker carries "
          f"{last['broker_cpu_share']:.1%} of total CPU load — the peers absorb the rest.")


if __name__ == "__main__":
    main()
