"""Micropayments: PayWord credit windows over WhoPay (paper Section 7).

A streaming scenario: a listener pays a radio station one hash-chain unit
per ~10 seconds of audio.  Individual micropayments are two SHA-256
invocations' worth of work and zero protocol messages; every ``threshold``
units, the window settles with one real WhoPay coin payment.

Run:  python examples/micropayment_payword.py
"""

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork
from repro.baselines.payword import PaywordCreditWindow


def main() -> None:
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    listener = net.add_peer("listener", PeerConfig(balance=50))
    station = net.add_peer("radio-station")

    window = PaywordCreditWindow(listener, station, chain_length=120, threshold=10)
    print("credit window open: chain length 120, settle every 10 units\n")

    minutes_streamed = 0
    for segment in range(1, 61):  # one hour in 1-minute segments
        window.micropay(units=6)  # 6 ten-second units per minute
        minutes_streamed += 1
        if minutes_streamed % 10 == 0:
            print(f"after {minutes_streamed:>2} min: {window.micropayments_made:>4} micropayments, "
                  f"{window.whopay_payments_made:>2} WhoPay settlements, "
                  f"station wallet value {station.balance_held()}")

    print("\n== aggregation achieved ==")
    print(f"micropayments made:        {window.micropayments_made}")
    print(f"WhoPay payments triggered: {window.whopay_payments_made}")
    ratio = window.micropayments_made / window.whopay_payments_made
    print(f"aggregation ratio:         {ratio:.0f} micropayments per coin payment")
    print(f"unsettled residual credit: {window.unsettled_units} units")
    print(f"\nprotocol messages total:   {net.transport.total_messages} "
          f"(~{net.transport.total_messages / window.whopay_payments_made:.0f} per settlement; "
          "micropayments themselves moved none)")


if __name__ == "__main__":
    main()
