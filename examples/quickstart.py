"""Quickstart: the full WhoPay coin lifecycle with real cryptography.

Walks the paper's Figure 1 end to end — purchase, issue, transfer via the
owner, downtime transfer via the broker, renewal, synchronization, deposit —
printing what each party can (and provably cannot) see along the way.

Run:  python examples/quickstart.py
"""

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork


def main() -> None:
    # A complete deployment: transport + judge + broker, on the fast test
    # group (use PARAMS_1024_160 for the paper's production key size).
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", PeerConfig(balance=10))  # will own coins
    bob = net.add_peer("bob")
    carol = net.add_peer("carol")

    print("== 1. Purchase ==")
    state = alice.purchase(value=3)
    print(f"alice bought a coin worth {state.coin.value}; the coin IS a public key:")
    print(f"  pk_C = {state.coin_y:#x}"[:60] + "…")
    print(f"  alice's account balance at the broker: {net.broker.balance('alice')}")

    print("\n== 2. Issue (alice -> bob) ==")
    binding = alice.issue("bob", state.coin_y)
    print(f"bob now holds the coin under a fresh one-time holder key (seq={binding.seq})")
    print("the coin names its owner (alice) — issue is semi-anonymous;")
    print("bob's identity never appeared: he is known only as a holder key.")

    print("\n== 3. Transfer via the owner (bob -> carol) ==")
    b2 = bob.transfer("carol", state.coin_y)
    print(f"owner alice re-bound the coin to carol's fresh key (seq={b2.seq})")
    print("alice served the transfer but learned neither payer nor payee identity;")
    print(f"her audit trail holds {len(alice.owned[state.coin_y].relinquishments)} relinquishment proof(s)")

    print("\n== 4. Downtime transfer via the broker (carol -> bob) ==")
    alice.depart()
    b3 = carol.transfer_via_broker("bob", state.coin_y)
    print(f"owner offline -> broker re-bound the coin (seq={b3.seq}, signed by broker)")

    print("\n== 5. Renewal ==")
    net.advance(net.renewal_period * 0.8)
    renewed = bob.renew(state.coin_y)
    print(f"coin renewed {'via broker (owner still offline)' if renewed.via_broker else 'via owner'}; "
          f"new expiry at t={renewed.exp_date:.0f}s")

    print("\n== 6. Synchronization ==")
    alice.rejoin()
    print(f"alice rejoined; broker handed her the bindings recorded while she was away "
          f"(her local seq is now {alice.owned[state.coin_y].binding.seq})")

    print("\n== 7. Deposit ==")
    credited = bob.deposit(state.coin_y)  # anonymous bearer payout
    bearer = [name for name in net.broker.accounts if name.startswith("bearer-")]
    print(f"bob deposited the coin for {credited} into pseudonymous account {bearer[0]!r}")
    print("the broker verified holdership + membership but learned no identity.")

    print("\n== 8. Fairness (what the judge COULD do) ==")
    print(f"every holder operation carried a group signature; the judge has performed "
          f"{net.judge.openings_performed} opening(s) — zero, because no fraud occurred.")
    print(f"\ntotal protocol messages exchanged: {net.transport.total_messages}")


if __name__ == "__main__":
    main()
