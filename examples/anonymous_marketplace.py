"""Issuer anonymity, both ways (paper Section 5.2).

The basic protocol leaks the payer's identity during *issue* (the coin names
its owner).  The paper offers three answers; this example runs the two
substantive ones side by side:

* **coin shops** (approach 2): a commercial issuer sells coins; customers
  never own coins, so every customer payment is an anonymous transfer;
* **ownerless coins** (approach 3): coins are ``{h_CU, pk_CU}_skB`` with an
  i3 handle instead of an owner identity; even the *issuer* stays anonymous,
  protected only as far as the judge's opening power.

Run:  python examples/anonymous_marketplace.py
"""

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork
from repro.core.anonymous_owner import AnonymousOwnerPeer
from repro.core.coinshop import CoinShop, buy_coin_from_shop
from repro.indirection.i3 import I3Overlay


def coin_shop_market(net: WhoPayNetwork) -> None:
    print("== approach 2: coin shops ==")
    member = net.judge.register("coin-shop")
    shop = CoinShop(
        net.transport, address="coin-shop", params=net.params, clock=net.clock,
        judge=net.judge, member_key=member, broker_address=net.broker.address,
        broker_key=net.broker.public_key, fee=1,
    )
    net.broker.open_account("coin-shop", shop.identity.public, 100)
    net.peers["coin-shop"] = shop
    shop.restock(4)

    buyer = net.add_peer("buyer", PeerConfig(balance=10))
    bookstore = net.add_peer("bookstore")

    coin_y = buy_coin_from_shop(buyer, shop)
    print(f"buyer bought a coin from the shop (shop revenue so far: {shop.revenue})")
    print(f"buyer owns {len(buyer.spendable_owned())} coins -> can never be forced to issue")
    buyer.transfer("bookstore", coin_y)
    print("buyer paid the bookstore by anonymous transfer; the shop served it")
    print(f"shop handled {shop.counts.transfers_handled} transfer(s) of coins it issued\n")


def ownerless_market(net: WhoPayNetwork, i3: I3Overlay) -> None:
    print("== approach 3: ownerless coins over i3 ==")

    def add_anon(address, balance=0):
        member = net.judge.register(address)
        peer = AnonymousOwnerPeer(
            net.transport, address=address, params=net.params, clock=net.clock,
            judge=net.judge, member_key=member, broker_address=net.broker.address,
            broker_key=net.broker.public_key, i3=i3,
        )
        net.broker.open_account(address, peer.identity.public, balance)
        net.peers[address] = peer
        return peer

    patron = add_anon("patron", balance=10)
    journalist = add_anon("journalist")
    archive = add_anon("archive")

    state = patron.purchase_anonymous(value=3)
    coin = state.coin
    print(f"patron minted an ownerless coin: owner field = {coin.owner_address!r}, "
          f"handle = {coin.handle.hex()[:16]}…")
    patron.issue("journalist", state.coin_y)
    print("patron issued it to the journalist — the coin carries NO owner identity;")
    print("the issue messages were group-signed, so only the judge could unmask a cheat")

    journalist.transfer("archive", state.coin_y)
    print("journalist transferred it onward; the transfer request traveled through an")
    print("i3 trigger, so even the owner's network address stayed hidden")
    credited = archive.deposit(state.coin_y)
    print(f"archive deposited it for {credited} into a bearer account")

    print(f"\njudge openings performed across both markets: {net.judge.openings_performed} "
          "(anonymity held; escrow untouched)")


def main() -> None:
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    i3 = I3Overlay(net.transport, size=3)
    coin_shop_market(net)
    ownerless_market(net, i3)


if __name__ == "__main__":
    main()
