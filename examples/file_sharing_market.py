"""A pay-per-download file-sharing market on WhoPay.

The paper's motivating application (Section 1): "a pay-per-download file
sharing system, where a virtual payment system is used to encourage fair
sharing of resources among peers and discourage free riders" — a setting
where no credit-card-grade broker could exist.

This example builds a small swarm: seeders serve file chunks, leechers pay
one coin per chunk using the paper's Policy-I preference order, peers churn,
and chunk delivery is gated on payment.  At the end it prints the market's
books: who earned, who spent, how little the broker had to do.

Run:  python examples/file_sharing_market.py
"""

from __future__ import annotations

import random

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork
from repro.core.errors import ProtocolError

#: Policy I's preference order (paper Section 6.1), as Peer.pay methods.
POLICY_I_PREFS = ("transfer", "downtime_transfer", "issue", "purchase_issue")

FILE_CHUNKS = 40
SEEDERS = 3
LEECHERS = 5
CHURN_PROBABILITY = 0.15


class SeederService:
    """Chunk server bolted onto a WhoPay peer: no coin, no chunk."""

    def __init__(self, peer, chunks: set[int]) -> None:
        self.peer = peer
        self.chunks = chunks
        self.served = 0
        peer.on("market.get_chunk", self._serve)

    def _serve(self, src: str, chunk: int):
        if chunk not in self.chunks:
            return {"ok": False, "reason": "chunk not available"}
        # Payment was made out-of-band just before this request; the seeder
        # checks its wallet actually grew (receipt = the held coin).
        self.served += 1
        return {"ok": True, "chunk": chunk, "data": f"<chunk-{chunk}-bytes>"}


def main() -> None:
    rng = random.Random(42)
    net = WhoPayNetwork(params=PARAMS_TEST_512)

    seeders = []
    for i in range(SEEDERS):
        peer = net.add_peer(f"seeder-{i}", PeerConfig(balance=5))
        seeders.append(SeederService(peer, chunks=set(range(FILE_CHUNKS))))
    leechers = [net.add_peer(f"leecher-{i}", PeerConfig(balance=20)) for i in range(LEECHERS)]

    downloads: dict[str, set[int]] = {peer.address: set() for peer in leechers}
    failed_payments = 0

    for round_number in range(1, 9):
        # Churn: seeders come and go like real P2P nodes.
        for service in seeders:
            if service.peer.online and rng.random() < CHURN_PROBABILITY:
                service.peer.depart()
            elif not service.peer.online and rng.random() < 0.5:
                service.peer.rejoin()

        for leecher in leechers:
            wanted = [c for c in range(FILE_CHUNKS) if c not in downloads[leecher.address]]
            if not wanted:
                continue
            online = [s for s in seeders if s.peer.online]
            if not online:
                continue
            for chunk in rng.sample(wanted, k=min(3, len(wanted))):
                seeder = rng.choice(online)
                try:
                    method = leecher.pay(seeder.peer.address, POLICY_I_PREFS)
                except ProtocolError:
                    failed_payments += 1
                    continue
                reply = leecher.request(seeder.peer.address, "market.get_chunk", chunk)
                if reply["ok"]:
                    downloads[leecher.address].add(chunk)

        print(f"round {round_number}: " + "  ".join(
            f"{addr.split('-')[1]}:{len(got)}/{FILE_CHUNKS}" for addr, got in downloads.items()
        ))

    print("\n== market books ==")
    for service in seeders:
        wallet = service.peer.balance_held()
        print(f"{service.peer.address}: served {service.served} chunks, "
              f"wallet value {wallet}, coins owned {len(service.peer.owned)}")
    for leecher in leechers:
        print(f"{leecher.address}: {len(downloads[leecher.address])} chunks, "
              f"account {net.broker.balance(leecher.address)}, wallet {leecher.balance_held()}")

    counts = net.broker.counts
    peer_ops = sum(
        p.counts.transfers_sent + p.counts.issues for p in net.peers.values()
    )
    print(f"\nbroker ops: purchases={counts.purchases} downtime_transfers={counts.downtime_transfers} "
          f"downtime_renewals={counts.downtime_renewals} syncs={counts.syncs}")
    print(f"peer-served payments: {peer_ops}; failed payments: {failed_payments}")
    print("the broker touched only purchases and downtime traffic — the market ran on the peers.")


if __name__ == "__main__":
    main()
