"""Wallet persistence: coins survive a process crash.

Coins are bearer key material — lose the process, lose the money — so a
production wallet must persist.  A ``durable=True`` peer journals every
wallet change to a write-ahead log *as it happens* (no explicit export
step to forget), so a crash at any instant loses nothing that was
acknowledged.  This example journals two coins, snapshots between them,
kills the peer, recovers it from disk, and spends a pre-crash coin to
prove nothing was lost.  `docs/DURABILITY.md` has the store mechanics.

Run:  python examples/wallet_persistence.py
"""

import tempfile
from pathlib import Path

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork
from repro.core.persistence import save_peer_snapshot


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        run(Path(root))


def run(store_dir: Path) -> None:
    net = WhoPayNetwork(params=PARAMS_TEST_512, store_dir=store_dir)
    alice = net.add_peer("alice", PeerConfig(balance=10))
    bob = net.add_peer("bob", PeerConfig(durable=True))  # journals to <store_dir>/bob
    carol = net.add_peer("carol")

    state = alice.purchase(value=4)
    alice.issue("bob", state.coin_y)
    print(f"bob holds a coin worth {bob.balance_held()}; wallet summary:")
    for row in bob.wallet_summary():
        print(f"  value={row['value']} owner={row['owner']} seq={row['seq']} "
              f"expires_in={row['expires_in'] / 3600:.0f}h")

    # A snapshot bounds future replay; the journal keeps covering new
    # changes after it — like the second coin below.
    covers = save_peer_snapshot(bob, bob.store)
    second = alice.purchase(value=1)
    alice.issue("bob", second.coin_y)
    print(f"\nsnapshot covers LSN {covers}; a second coin arrived after it")

    # Kill the process and recover a fresh peer from disk.  Holder keys,
    # bindings, identity, and group membership all come back — the
    # post-snapshot coin via journal replay with its signature re-verified.
    result = net.restart_peer("bob")
    bob = net.peers["bob"]
    print(f"bob recovered: snapshot={result.snapshot_loaded}, "
          f"records replayed={result.records_replayed}, "
          f"wallet value={bob.balance_held()}")

    # The recovered wallet actually spends.
    bob.transfer("carol", state.coin_y)
    print(f"post-restart transfer succeeded; carol now holds value {carol.balance_held()}")
    credited = carol.deposit(state.coin_y, payout_to="carol")
    print(f"carol deposited it for {credited} — full value preserved across the crash")


if __name__ == "__main__":
    main()
