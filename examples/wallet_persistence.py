"""Wallet persistence: coins survive a process restart.

Coins are bearer key material — lose the process, lose the money — so a
production wallet must persist.  This example exports a peer's full
monetary state (encrypted at rest), "restarts" the peer, restores, and
spends a pre-restart coin to prove nothing was lost.

Run:  python examples/wallet_persistence.py
"""

from repro import PARAMS_TEST_512, WhoPayNetwork
from repro.core.peer import Peer
from repro.core.persistence import export_peer_state, restore_peer_state


def main() -> None:
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", balance=10)
    bob = net.add_peer("bob")
    carol = net.add_peer("carol")

    state = alice.purchase(value=4)
    alice.issue("bob", state.coin_y)
    print(f"bob holds a coin worth {bob.balance_held()}; wallet summary:")
    for row in bob.wallet_summary():
        print(f"  value={row['value']} owner={row['owner']} seq={row['seq']} "
              f"expires_in={row['expires_in'] / 3600:.0f}h")

    # Export, encrypted at rest.
    key = b"\x07" * 32  # in practice: derived from a passphrase
    blob = export_peer_state(bob, encryption_key=key)
    print(f"\nexported bob's wallet: {len(blob)} bytes (encrypted, starts {blob[:4]!r})")

    # 'Crash' bob and bring up a fresh process at the same address.
    net.transport.unregister("bob")
    fresh_bob = Peer(
        net.transport, address="bob", params=net.params, clock=net.clock,
        judge=net.judge, member_key=bob.member_key, broker_address=net.broker.address,
        broker_key=net.broker.public_key,
    )
    net.peers["bob"] = fresh_bob
    print("bob restarted: empty wallet =", fresh_bob.wallet_summary())

    restored = restore_peer_state(fresh_bob, blob, encryption_key=key)
    print(f"restored {restored} coin(s); wallet value = {fresh_bob.balance_held()}")

    # The restored wallet actually spends — holder keys, bindings, identity,
    # and group membership all came back.
    fresh_bob.transfer("carol", state.coin_y)
    print(f"post-restart transfer succeeded; carol now holds value {carol.balance_held()}")
    credited = carol.deposit(state.coin_y, payout_to="carol")
    print(f"carol deposited it for {credited} — full value preserved across the restart")


if __name__ == "__main__":
    main()
