"""Threshold judges: splitting the de-anonymization power (Section 3.2).

    "this master private key can be divided among N judges using Shamir's
    secret sharing protocol and at least K judges are needed in order to
    recover the key"

One corrupt judge must not be able to strip anonymity unilaterally.  This
example splits the opening key 3-of-5, shows that any 3 judges can unmask a
fraudster while any 2 learn nothing, and runs the whole ceremony against a
real captured transaction signature.

Run:  python examples/threshold_judges.py
"""

import itertools

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork
from repro.core import protocol


def main() -> None:
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", PeerConfig(balance=10))
    bob = net.add_peer("bob")
    carol = net.add_peer("carol")

    # Split the judge's opening key among five independent judges, 3-of-5.
    shares = net.judge.export_opening_shares(n=5, k=3)
    judges = {f"judge-{i + 1}": share for i, share in enumerate(shares)}
    print("opening key split 3-of-5 among:", ", ".join(judges))

    # A payment happens; capture the transfer request off the wire (this is
    # what the broker would hand over with a court order).
    state = alice.purchase()
    alice.issue("bob", state.coin_y)
    captured = {}
    original = net.transport.request

    def tap(src, dst, kind, payload):
        if kind == protocol.TRANSFER_REQUEST:
            captured["envelope"] = payload["envelope"]
        return original(src, dst, kind, payload)

    net.transport.request = tap
    bob.transfer("carol", state.coin_y)
    envelope = protocol.decode_dual(captured["envelope"], net.params)
    print("\na transfer request was captured; its group signature hides the payer")

    # Two judges colluding: nothing.
    pair = [judges["judge-1"], judges["judge-4"]]
    print(f"judges 1+4 alone recover: {net.judge.threshold_open(pair, envelope.group_signature)!r}")

    # Any three judges: the payer.
    for combo in itertools.combinations(sorted(judges), 3):
        trio = [judges[name] for name in combo]
        identity = net.judge.threshold_open(trio, envelope.group_signature)
        print(f"{' + '.join(combo)} recover: {identity!r}")
        assert identity == "bob"

    print("\nevery 3-judge quorum opens the signature; no 2-judge subset can.")


if __name__ == "__main__":
    main()
