"""Fraud story: double spending caught in real time, culprit unmasked.

Demonstrates the Section 5.1 extension end to end on the real stack:

1. every binding update is published to the access-controlled Chord DHT;
2. holders subscribe and monitor their coins;
3. a malicious owner re-binds a coin behind the holder's back — the victim
   is alarmed the instant the forged binding hits the public list;
4. separately, a malicious *holder* spends then deposits a stale coin; the
   broker detects the collision at deposit time and the judge + audit trail
   convict exactly the right party (fairness: one opening, no collateral
   de-anonymization).

Run:  python examples/double_spend_detection.py
"""

import copy

from repro import PARAMS_TEST_512, PeerConfig, WhoPayNetwork
from repro.core.audit import adjudicate_double_deposit
from repro.core.coin import CoinBinding
from repro.core.errors import DoubleSpendDetected


def real_time_owner_fraud(net: WhoPayNetwork) -> None:
    print("== scenario 1: cheating OWNER, caught in real time ==")
    mallory = net.add_peer("mallory-owner", PeerConfig(balance=10))
    victim = net.add_peer("victim")
    accomplice = net.add_peer("accomplice")

    state = mallory.purchase(value=5)
    mallory.issue("victim", state.coin_y)
    print("mallory issued a 5-unit coin to victim; victim's holder key is on the public list")

    # Mallory forges a new binding giving "her" coin to an accomplice.
    forged = CoinBinding.build(
        state.coin_keypair,
        coin_y=state.coin_y,
        holder_y=accomplice.identity.public.y,
        seq=mallory.owned[state.coin_y].binding.seq + 1,
        exp_date=net.clock.now() + 86_400,
    )
    net.detection.publish_owner(mallory, mallory.owned[state.coin_y], forged)
    print("mallory published a forged re-bind to the DHT…")

    alarm = victim.alarms[0]
    print(f"ALARM at victim: coin {alarm.coin_y:#x}"[:50] + "… re-bound away "
          f"(seq {alarm.observed_seq}) — detected BEFORE any deposit\n")


def deposit_time_holder_fraud(net: WhoPayNetwork) -> None:
    print("== scenario 2: cheating HOLDER, convicted from the audit trail ==")
    owner = net.add_peer("owner", PeerConfig(balance=10))
    cheat = net.add_peer("cheat")
    merchant = net.add_peer("merchant")

    state = owner.purchase(value=2)
    owner.issue("cheat", state.coin_y)
    stale = copy.deepcopy(cheat.wallet[state.coin_y])
    cheat.transfer("merchant", state.coin_y)
    print("cheat paid merchant with the coin…")
    cheat.wallet[state.coin_y] = stale
    cheat.deposit(state.coin_y)
    print("…then deposited the SAME coin using the stale proof (accepted — stale sig verifies)")

    try:
        merchant.deposit(state.coin_y)
    except DoubleSpendDetected as event:
        print("merchant's deposit collided: DoubleSpendDetected at the broker")
        verdict = adjudicate_double_deposit(
            event,
            owner.owned[state.coin_y].relinquishments,
            net.params,
            net.judge,
        )
        print(f"adjudication: role={verdict.role!r} culprit={verdict.culprit!r}")
        print(f"reason: {verdict.reason}")
        print(f"judge openings performed: {net.judge.openings_performed} (exactly the culprit's signature)")

        # Justice, final act: the convicted member is expelled from the
        # group; every future holder operation is impossible for them.
        net.judge.expel(verdict.culprit)
        print(f"\n{verdict.culprit!r} expelled from the group "
              f"(roster now {net.judge.member_count()} members); "
              "they can no longer spend, renew, or deposit any coin")


def main() -> None:
    net = WhoPayNetwork(params=PARAMS_TEST_512, enable_detection=True, dht_size=6)
    real_time_owner_fraud(net)
    deposit_time_holder_fraud(net)


if __name__ == "__main__":
    main()
