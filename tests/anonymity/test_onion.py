"""Onion-routing tests: delivery, layer peeling, who-sees-what."""

import pytest

from repro.anonymity.onion import OnionOverlay, anonymize_node
from repro.crypto.params import PARAMS_TEST_512
from repro.net.node import Node
from repro.net.transport import NetworkError, Transport
from repro.core.network import PeerConfig

P = PARAMS_TEST_512


@pytest.fixture()
def rig():
    transport = Transport()
    overlay = OnionOverlay(transport, P, size=3)
    server = Node(transport, "server")
    seen_sources = []

    def handle(src, payload):
        seen_sources.append(src)
        return {"echo": payload, "by": "server"}

    server.on("app.echo", handle)
    client = Node(transport, "client")
    return transport, overlay, client, server, seen_sources


class TestDelivery:
    def test_request_through_circuit(self, rig):
        _t, overlay, client, _server, _seen = rig
        circuit = overlay.build_circuit()
        response = overlay.send("client", circuit, "server", "app.echo", {"n": 7})
        assert response == {"echo": {"n": 7}, "by": "server"}

    def test_single_hop_circuit(self, rig):
        _t, overlay, _client, _server, _seen = rig
        circuit = overlay.build_circuit([overlay.relay_addresses()[0]])
        assert overlay.send("client", circuit, "server", "app.echo", 1)["echo"] == 1

    def test_every_relay_participates(self, rig):
        _t, overlay, _client, _server, _seen = rig
        circuit = overlay.build_circuit()
        overlay.send("client", circuit, "server", "app.echo", 0)
        assert [relay.relayed for relay in overlay.relays] == [1, 1, 1]

    def test_unknown_relay_rejected(self, rig):
        _t, overlay, _client, _server, _seen = rig
        with pytest.raises(ValueError):
            overlay.build_circuit(["not-a-relay"])

    def test_empty_circuit_rejected(self, rig):
        _t, overlay, _client, _server, _seen = rig
        with pytest.raises(ValueError):
            overlay.build_circuit([])


class TestAnonymity:
    def test_destination_sees_exit_relay_only(self, rig):
        _t, overlay, _client, _server, seen = rig
        circuit = overlay.build_circuit()
        overlay.send("client", circuit, "server", "app.echo", None)
        assert seen == [circuit.relays[-1]]  # exit relay, never the client

    def test_no_relay_sees_both_ends(self, rig):
        # Entry relay receives from the client but forwards to a relay;
        # the exit receives from a relay.  Inspect actual traffic.
        transport, overlay, _client, _server, _seen = rig
        record = []
        original = transport.request

        def tap(src, dst, kind, payload):
            record.append((src, dst))
            return original(src, dst, kind, payload)

        transport.request = tap
        circuit = overlay.build_circuit()
        overlay.send("client", circuit, "server", "app.echo", None)
        for relay in circuit.relays:
            sources = {src for src, dst in record if dst == relay}
            destinations = {dst for src, dst in record if src == relay}
            touches_client = "client" in sources or "client" in destinations
            touches_server = "server" in sources or "server" in destinations
            assert not (touches_client and touches_server), relay

    def test_circuits_use_fresh_ephemerals(self, rig):
        _t, overlay, _client, _server, _seen = rig
        a = overlay.build_circuit()
        b = overlay.build_circuit()
        assert a.ephemeral_ys != b.ephemeral_ys
        assert a.layer_keys != b.layer_keys

    def test_relay_cannot_decrypt_inner_layers(self, rig):
        # Peeling with the wrong hop's key fails authentication: layer
        # contents are opaque beyond each relay's own layer.
        from repro.anonymity.cipher import CipherError, open_box

        _t, overlay, _client, _server, _seen = rig
        circuit = overlay.build_circuit()
        from repro.messages.codec import encode
        from repro.anonymity.cipher import seal_box

        inner = seal_box(circuit.layer_keys[1], b"middle layer")
        with pytest.raises(CipherError):
            open_box(circuit.layer_keys[0], inner)


class TestWhoPayIntegration:
    def test_anonymized_peer_hides_address_from_broker_and_payee(self):
        from repro.core.network import WhoPayNetwork

        net = WhoPayNetwork(params=P)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        overlay = OnionOverlay(net.transport, P, size=3)

        observed = []
        original = net.transport.request

        def tap(src, dst, kind, payload):
            if dst in ("broker", "bob") and kind.startswith("whopay."):
                observed.append((src, dst, kind))
            return original(src, dst, kind, payload)

        net.transport.request = tap
        circuit = anonymize_node(alice, overlay)
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        # Every WhoPay request that reached the broker or the payee came
        # from the exit relay, never from alice's own address.
        assert observed, "tap saw no traffic"
        for src, _dst, _kind in observed:
            assert src == circuit.relays[-1]
            assert src != "alice"
        # And the protocol still worked end to end.
        assert state.coin_y in bob.wallet

    def test_anonymized_transfer_roundtrip(self):
        from repro.core.network import WhoPayNetwork

        net = WhoPayNetwork(params=P)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        overlay = OnionOverlay(net.transport, P, size=2)
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        anonymize_node(bob, overlay)
        bob.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet
