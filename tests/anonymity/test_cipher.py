"""Cipher-layer tests (DH + authenticated stream cipher)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anonymity.cipher import CipherError, derive_shared_key, open_box, seal_box
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import PARAMS_TEST_512

P = PARAMS_TEST_512


class TestKeyAgreement:
    def test_shared_key_agrees(self):
        a, b = KeyPair.generate(P), KeyPair.generate(P)
        assert derive_shared_key(a, b.public) == derive_shared_key(b, a.public)

    def test_distinct_pairs_distinct_keys(self):
        a, b, c = (KeyPair.generate(P) for _ in range(3))
        assert derive_shared_key(a, b.public) != derive_shared_key(a, c.public)

    def test_rejects_bad_public(self):
        a = KeyPair.generate(P)
        with pytest.raises(ValueError):
            derive_shared_key(a, PublicKey(params=P, y=P.p - 1))

    def test_key_length(self):
        a, b = KeyPair.generate(P), KeyPair.generate(P)
        assert len(derive_shared_key(a, b.public)) == 32


class TestBox:
    KEY = b"k" * 32
    OTHER = b"x" * 32

    def test_roundtrip(self):
        box = seal_box(self.KEY, b"hello onion")
        assert open_box(self.KEY, box) == b"hello onion"

    def test_empty_plaintext(self):
        assert open_box(self.KEY, seal_box(self.KEY, b"")) == b""

    def test_wrong_key_rejected(self):
        box = seal_box(self.KEY, b"secret")
        with pytest.raises(CipherError):
            open_box(self.OTHER, box)

    def test_tampering_rejected(self):
        box = bytearray(seal_box(self.KEY, b"secret"))
        box[20] ^= 0x01
        with pytest.raises(CipherError):
            open_box(self.KEY, bytes(box))

    def test_truncated_rejected(self):
        with pytest.raises(CipherError):
            open_box(self.KEY, b"short")

    def test_nonces_randomize_ciphertexts(self):
        assert seal_box(self.KEY, b"m") != seal_box(self.KEY, b"m")

    @given(st.binary(max_size=5000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, plaintext):
        assert open_box(self.KEY, seal_box(self.KEY, plaintext)) == plaintext
