"""Seed-replication runner tests (simulation noise quantification)."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.runner import run_one, run_replicated

CONFIG = SimConfig(
    n_peers=40, duration=1 * DAY, renewal_period=0.4 * DAY,
    mean_online=2 * HOUR, mean_offline=2 * HOUR,
)


class TestRunReplicated:
    def test_mean_and_spread_reported(self):
        merged = run_replicated(CONFIG, seeds=(1, 2, 3))
        assert merged["replications"] == 3
        assert "broker_cpu" in merged and "broker_cpu_spread" in merged
        assert merged["broker_cpu_spread"] >= 0.0

    def test_mean_is_actual_mean(self):
        from dataclasses import replace

        seeds = (5, 6)
        singles = [run_one(replace(CONFIG, seed=seed))["payments_made"] for seed in seeds]
        merged = run_replicated(CONFIG, seeds=seeds)
        assert merged["payments_made"] == pytest.approx(sum(singles) / 2)

    def test_single_seed_has_zero_spread(self):
        merged = run_replicated(CONFIG, seeds=(9,))
        assert merged["broker_cpu_spread"] == 0.0

    def test_spread_is_small_at_this_scale(self):
        # Sanity that the default bench scale is statistically meaningful:
        # key headline metrics vary by well under a third across seeds.
        # (The bound is realization-dependent: the fast engine's batched
        # draws give these four seeds a ~24% broker_cpu_share spread where
        # the reference realization happened to sit under 20%.)
        merged = run_replicated(CONFIG, seeds=(1, 2, 3, 4))
        assert merged["broker_cpu_share_spread"] < 0.3
        assert merged["payments_made_spread"] < 0.3

    def test_non_numeric_columns_passed_through(self):
        merged = run_replicated(CONFIG, seeds=(1, 2))
        assert merged["policy"] == "I"
        assert merged["sync"] == "proactive"

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_replicated(CONFIG, seeds=())
