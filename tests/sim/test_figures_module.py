"""Figure-regeneration module tests."""

import csv

import pytest

from repro.sim.figures import generate_all

pytestmark = pytest.mark.slow  # runs 8 small sweeps (~30 s); still under CI budget


@pytest.fixture(scope="module")
def figures(tmp_path_factory):
    out = tmp_path_factory.mktemp("figs")
    return generate_all(small=True, out_dir=out), out


class TestGenerateAll:
    def test_all_figures_present(self, figures):
        data, _out = figures
        assert set(data) == {f"fig{i}" for i in range(2, 12)}

    def test_series_lengths_consistent(self, figures):
        data, _out = figures
        for figure_id, figure in data.items():
            n = len(figure["x"])
            for label, values in figure["series"].items():
                assert len(values) == n, (figure_id, label)

    def test_setup_b_uses_size_axis(self, figures):
        data, _out = figures
        assert data["fig10"]["x_label"] == "n_peers"
        assert data["fig2"]["x_label"] == "mu_hours"

    def test_csv_files_written(self, figures):
        data, out = figures
        for figure_id in data:
            path = out / f"{figure_id}.csv"
            assert path.exists(), figure_id
            with open(path) as handle:
                rows = list(csv.reader(handle))
            assert len(rows) == len(data[figure_id]["x"]) + 1  # header + points

    def test_report_written(self, figures):
        data, out = figures
        text = (out / "figures.txt").read_text()
        for figure in data.values():
            assert figure["title"] in text

    def test_figure_values_match_csv(self, figures):
        data, out = figures
        with open(out / "fig2.csv") as handle:
            rows = list(csv.reader(handle))
        header, first = rows[0], rows[1]
        column = header.index("purchases")
        assert float(first[column]) == float(data["fig2"]["series"]["purchases"][0])
