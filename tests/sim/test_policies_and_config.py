"""Policy-definition and configuration-preset tests (Table 1)."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim import policies as pol
from repro.sim.config import (
    FULL_MU_SWEEP_HOURS,
    FULL_SIZE_SWEEP,
    SimConfig,
    setup_a_configs,
    setup_b_configs,
)
from repro.sim.policies import POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III, Policy, policy_by_name


class TestPolicies:
    def test_policy_i_order_matches_paper(self):
        # Section 6.1's literal preference list for policy I.
        assert POLICY_I.preferences == (
            pol.TRANSFER_ONLINE,
            pol.TRANSFER_OFFLINE,
            pol.ISSUE_EXISTING,
            pol.PURCHASE_ISSUE,
        )

    def test_policy_iii_order_matches_paper(self):
        assert POLICY_III.preferences == (
            pol.TRANSFER_ONLINE,
            pol.ISSUE_EXISTING,
            pol.PURCHASE_ISSUE,
            pol.DEPOSIT_PURCHASE_ISSUE,
        )

    def test_all_policies_start_with_transfer_online(self):
        for policy in (POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III):
            assert policy.preferences[0] == pol.TRANSFER_ONLINE

    def test_lookup_by_name(self):
        assert policy_by_name("I") is POLICY_I
        assert policy_by_name("II.a") is POLICY_II_A
        with pytest.raises(ValueError):
            policy_by_name("IV")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            Policy(name="bad", preferences=("barter",), description="")


class TestTable1Presets:
    def test_setup_a_defaults_match_table1(self):
        configs = setup_a_configs()
        assert len(configs) == len(FULL_MU_SWEEP_HOURS)
        for config, mu in zip(configs, FULL_MU_SWEEP_HOURS):
            assert config.n_peers == 1000
            assert config.duration == 10 * DAY
            assert config.renewal_period == 3 * DAY
            assert config.mean_online == mu * HOUR
            assert config.mean_offline == 2 * HOUR  # median downtime
            assert config.payment_interval == 5 * 60

    def test_setup_a_downtime_families(self):
        # Table 1: ν ∈ {1, 2, 4} hours.
        for nu in (1.0, 2.0, 4.0):
            configs = setup_a_configs(mean_offline_hours=nu)
            assert all(c.mean_offline == nu * HOUR for c in configs)

    def test_setup_a_mu_span_matches_table1(self):
        # "µ from 15 mins to 32 hrs".
        assert FULL_MU_SWEEP_HOURS[0] == 0.25
        assert FULL_MU_SWEEP_HOURS[-1] == 32.0

    def test_setup_b_matches_table1(self):
        configs = setup_b_configs()
        assert [c.n_peers for c in configs] == list(FULL_SIZE_SWEEP)
        assert FULL_SIZE_SWEEP[0] == 100 and FULL_SIZE_SWEEP[-1] == 1000
        for config in configs:
            assert config.mean_online == config.mean_offline == 2 * HOUR
            assert config.availability == pytest.approx(0.5)

    def test_small_presets_preserve_ratios(self):
        full = setup_a_configs()[0]
        small = setup_a_configs(small=True)[0]
        assert small.n_peers < full.n_peers
        assert small.duration / small.renewal_period == pytest.approx(
            full.duration / full.renewal_period
        )
        assert small.payment_interval == full.payment_interval

    def test_policy_and_sync_propagate(self):
        configs = setup_a_configs(policy=POLICY_III, sync_mode="lazy")
        assert all(c.policy is POLICY_III and c.sync_mode == "lazy" for c in configs)
