"""Op-level detection overhead tests (SimConfig.detection)."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation

FAST = dict(
    n_peers=40, duration=1 * DAY, renewal_period=0.4 * DAY,
    mean_online=2 * HOUR, mean_offline=2 * HOUR,
)


class TestDetectionModel:
    def test_disabled_by_default(self):
        metrics = Simulation(SimConfig(**FAST, seed=1)).run().metrics
        assert metrics.ops["dht_publish"] == 0
        assert metrics.ops["dht_read"] == 0

    def test_publish_per_binding_update(self):
        metrics = Simulation(SimConfig(**FAST, detection=True, seed=1)).run().metrics
        updates = (
            metrics.ops["issue"]
            + metrics.ops["transfer"]
            + metrics.ops["renewal"]
            + metrics.ops["downtime_transfer"]
            + metrics.ops["downtime_renewal"]
        )
        assert metrics.ops["dht_publish"] == updates

    def test_read_per_payment_acceptance(self):
        metrics = Simulation(SimConfig(**FAST, detection=True, seed=1)).run().metrics
        acceptances = (
            metrics.ops["issue"] + metrics.ops["transfer"] + metrics.ops["downtime_transfer"]
        )
        assert metrics.ops["dht_read"] == acceptances

    def test_detection_does_not_change_the_protocol_mix(self):
        off = Simulation(SimConfig(**FAST, detection=False, seed=3)).run().metrics
        on = Simulation(SimConfig(**FAST, detection=True, seed=3)).run().metrics
        for op in ("purchase", "issue", "transfer", "renewal", "downtime_transfer"):
            assert off.ops[op] == on.ops[op], op

    def test_overhead_is_peer_side_only(self):
        off = Simulation(SimConfig(**FAST, detection=False, seed=5)).run().metrics
        on = Simulation(SimConfig(**FAST, detection=True, seed=5)).run().metrics
        assert on.broker_cpu_load() == off.broker_cpu_load()
        assert on.broker_comm_load() == off.broker_comm_load()
        assert on.peer_comm_load_total() > off.peer_comm_load_total()
        # Detection therefore LOWERS the broker's relative share.
        assert on.broker_cpu_share() <= off.broker_cpu_share()
