"""Cost-model and metrics tests (Tables 2/3 wiring, Figures 6-11 math)."""

import pytest

from repro.sim.costs import BROKER_OPS, MICRO_COST, OP_COSTS, PEER_OPS
from repro.sim.metrics import SimMetrics


class TestTable3Weights:
    def test_paper_relative_costs(self):
        # Table 3, verbatim.
        assert MICRO_COST["keygen"] == 1
        assert MICRO_COST["sig"] == 2
        assert MICRO_COST["ver"] == 2
        assert MICRO_COST["gsig"] == 4
        assert MICRO_COST["gver"] == 4

    def test_transfer_matches_papers_statement(self):
        # "each transfer involves 1 key pair generation, 4 signature
        # generations, 4 signature verifications, 1 group signature
        # generation, and 1 group signature verification" (peers).
        transfer = OP_COSTS["transfer"]
        assert transfer.peer_micro == {"keygen": 1, "sig": 4, "ver": 4, "gsig": 1, "gver": 1}
        assert transfer.broker_micro == {}
        assert transfer.peer_cpu == 1 + 8 + 8 + 4 + 4

    def test_broker_free_operations(self):
        for op in ("issue", "transfer", "renewal", "check", "lazy_sync"):
            assert OP_COSTS[op].broker_cpu == 0
            assert OP_COSTS[op].broker_msgs == 0

    def test_broker_ops_have_broker_cost(self):
        for op in ("purchase", "deposit", "downtime_transfer", "downtime_renewal", "sync"):
            assert OP_COSTS[op].broker_cpu > 0
            assert OP_COSTS[op].broker_msgs > 0

    def test_op_lists_cover_table(self):
        assert set(BROKER_OPS) <= set(OP_COSTS)
        assert set(PEER_OPS) <= set(OP_COSTS)


class TestMetricsMath:
    def make(self):
        metrics = SimMetrics(n_peers=10)
        metrics.count("transfer", 100)
        metrics.count("purchase", 10)
        metrics.count("sync", 5)
        return metrics

    def test_counts(self):
        metrics = self.make()
        assert metrics.ops["transfer"] == 100
        assert metrics.broker_op_counts()["purchase"] == 10
        assert metrics.peer_op_counts_avg()["transfer"] == 10.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            SimMetrics(n_peers=1).count("teleport")

    def test_cpu_loads(self):
        metrics = self.make()
        expected_broker = 10 * OP_COSTS["purchase"].broker_cpu + 5 * OP_COSTS["sync"].broker_cpu
        assert metrics.broker_cpu_load() == expected_broker
        expected_peer = (
            100 * OP_COSTS["transfer"].peer_cpu
            + 10 * OP_COSTS["purchase"].peer_cpu
            + 5 * OP_COSTS["sync"].peer_cpu
        )
        assert metrics.peer_cpu_load_total() == expected_peer

    def test_ratios_and_shares(self):
        metrics = self.make()
        ratio = metrics.cpu_load_ratio()
        share = metrics.broker_cpu_share()
        assert ratio == pytest.approx(
            metrics.broker_cpu_load() / (metrics.peer_cpu_load_total() / 10)
        )
        assert share == pytest.approx(
            metrics.broker_cpu_load()
            / (metrics.broker_cpu_load() + metrics.peer_cpu_load_total())
        )
        assert 0 < share < 1

    def test_comm_loads(self):
        metrics = self.make()
        assert metrics.broker_comm_load() == 10 * 2 + 5 * 4
        assert metrics.peer_comm_load_total() == 100 * 12 + 10 * 2 + 5 * 4

    def test_empty_metrics(self):
        metrics = SimMetrics(n_peers=4)
        assert metrics.broker_cpu_load() == 0
        assert metrics.broker_cpu_share() == 0.0


class TestRetryOverhead:
    def test_expected_attempts_math(self):
        from repro.sim.costs import expected_attempts

        assert expected_attempts(0.0, 6) == 1.0
        # Truncated geometric mean: (1 - p^n) / (1 - p).
        assert expected_attempts(0.5, 2) == pytest.approx(1.5)
        assert expected_attempts(0.1, 6) == pytest.approx((1 - 0.1**6) / 0.9)
        # More retry budget can only add attempts; loss-free adds none.
        assert expected_attempts(0.2, 8) > expected_attempts(0.2, 2)
        with pytest.raises(ValueError):
            expected_attempts(1.0, 3)
        with pytest.raises(ValueError):
            expected_attempts(0.1, 0)

    def test_msg_overhead_scales_comm_not_cpu(self):
        metrics = SimMetrics(n_peers=10, msg_overhead=1.25)
        metrics.count("purchase", 8)
        base_broker = 8 * OP_COSTS["purchase"].broker_msgs
        base_peer = 8 * OP_COSTS["purchase"].peer_msgs
        assert metrics.broker_comm_load() == pytest.approx(1.25 * base_broker)
        assert metrics.peer_comm_load_total() == pytest.approx(1.25 * base_peer)
        # CPU unaffected: handlers run once thanks to idempotent dedupe.
        assert metrics.broker_cpu_load() == 8 * OP_COSTS["purchase"].broker_cpu

    def test_simulation_wires_loss_into_overhead(self):
        from repro.sim.config import SimConfig
        from repro.sim.costs import expected_attempts
        from repro.sim.simulator import Simulation

        config = SimConfig(n_peers=4, message_loss=0.1, rpc_max_attempts=6)
        sim = Simulation(config)
        assert sim.metrics.msg_overhead == pytest.approx(expected_attempts(0.1, 6))
        with pytest.raises(ValueError):
            SimConfig(n_peers=4, message_loss=1.5)
        with pytest.raises(ValueError):
            SimConfig(n_peers=4, rpc_max_attempts=0)
