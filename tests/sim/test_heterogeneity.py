"""Power-law population model tests (Section 6.2 conjecture machinery)."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation

FAST = dict(n_peers=40, duration=1 * DAY, renewal_period=0.4 * DAY)


def build(**overrides):
    return Simulation(SimConfig(**{**FAST, **overrides}))


class TestPopulationModel:
    def test_uniform_is_homogeneous(self):
        sim = build(heterogeneity="uniform")
        assert len(set(sim._mean_offline)) == 1
        assert len(set(sim._interval)) == 1
        assert sim._payee_cum is None

    def test_powerlaw_is_heterogeneous(self):
        sim = build(heterogeneity="powerlaw", seed=5)
        assert len(set(sim._mean_offline)) > 1
        assert len(set(sim._interval)) > 1
        assert sim._payee_cum is not None

    def test_availability_bounds(self):
        sim = build(heterogeneity="powerlaw", superpeer_max_availability=0.95)
        base = sim.config.availability
        for a in sim._availability:
            assert base - 1e-9 <= a <= 0.95 + 1e-9
        assert max(sim._availability) == pytest.approx(0.95)

    def test_aggregate_candidate_rate_preserved(self):
        # Distributing the rate by weight keeps the total at n per interval.
        sim = build(heterogeneity="powerlaw", seed=7)
        total_rate = sum(1.0 / i for i in sim._interval)
        uniform_rate = sim.config.n_peers / sim.config.payment_interval
        assert total_rate == pytest.approx(uniform_rate, rel=1e-9)

    def test_offline_means_realize_availability(self):
        sim = build(heterogeneity="powerlaw", seed=9)
        for mean_on, mean_off, a in zip(sim._mean_online, sim._mean_offline, sim._availability):
            assert mean_on / (mean_on + mean_off) == pytest.approx(a)

    def test_invalid_heterogeneity_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(heterogeneity="bimodal")
        with pytest.raises(ValueError):
            SimConfig(superpeer_max_availability=1.5)


class TestPowerlawBehaviour:
    def test_payee_selection_skewed(self):
        sim = build(heterogeneity="powerlaw", zipf_exponent=1.2, seed=11)
        counts = [0] * sim.config.n_peers
        for _ in range(4000):
            counts[sim._pick_payee(0)] += 1
        top = max(counts)
        median = sorted(counts)[len(counts) // 2]
        assert top > 5 * max(median, 1)  # heavy head

    def test_payee_never_self(self):
        sim = build(heterogeneity="powerlaw", seed=13)
        for payer in (0, 5, 39):
            for _ in range(200):
                assert sim._pick_payee(payer) != payer

    def test_superpeers_cut_broker_share(self):
        shares = {}
        for heterogeneity in ("uniform", "powerlaw"):
            config = SimConfig(
                n_peers=60, duration=2 * DAY, renewal_period=0.6 * DAY,
                mean_online=2 * HOUR, mean_offline=2 * HOUR,
                heterogeneity=heterogeneity, seed=17,
            )
            shares[heterogeneity] = Simulation(config).run().metrics.broker_cpu_share()
        assert shares["powerlaw"] < shares["uniform"]

    def test_deterministic_under_seed(self):
        a = build(heterogeneity="powerlaw", seed=19).run().metrics.ops
        b = build(heterogeneity="powerlaw", seed=19).run().metrics.ops
        assert a == b
