"""Parallel sweep runner: determinism and replication semantics.

The contract (DESIGN.md §1.1): the process-pool path must produce
*bit-identical* rows to the sequential runner for the same configs/seeds —
parallelism may only change wall-clock, never results.  Rows carry
wall-clock timing stamps (``TIMING_COLUMNS``), which are the one permitted
run-to-run difference; comparisons strip them first.
"""

import math
import os
from dataclasses import replace

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim import runner
from repro.sim.config import SimConfig
from repro.sim.runner import (
    TIMING_COLUMNS,
    _default_chunksize,
    _spread,
    default_workers,
    run_one,
    run_replicated,
    run_sweep_parallel,
    shutdown_pool,
    strip_timing,
)

TINY = SimConfig(
    n_peers=15,
    duration=0.4 * DAY,
    renewal_period=0.15 * DAY,
    mean_online=2 * HOUR,
    mean_offline=2 * HOUR,
)


@pytest.fixture(autouse=True, scope="module")
def _teardown_pool():
    yield
    shutdown_pool()


class TestParallelDeterminism:
    def test_bit_identical_to_sequential(self):
        configs = [replace(TINY, seed=s) for s in (7, 8, 9)]
        sequential = [strip_timing(run_one(c)) for c in configs]
        parallel = [strip_timing(r) for r in run_sweep_parallel(configs, max_workers=2)]
        assert parallel == sequential

    def test_order_preserved(self):
        configs = [replace(TINY, seed=s, n_peers=10 + s) for s in (1, 2, 3)]
        rows = run_sweep_parallel(configs, max_workers=2)
        assert [row["n_peers"] for row in rows] == [11, 12, 13]

    def test_empty_and_single(self):
        assert run_sweep_parallel([]) == []
        rows = run_sweep_parallel([replace(TINY, seed=4)], max_workers=1)
        assert [strip_timing(r) for r in rows] == [
            strip_timing(run_one(replace(TINY, seed=4)))
        ]

    def test_pool_reuse(self):
        configs = [replace(TINY, seed=s) for s in (5, 6)]
        first = run_sweep_parallel(configs, max_workers=2)
        again = run_sweep_parallel(configs, max_workers=2)
        assert [strip_timing(r) for r in first] == [strip_timing(r) for r in again]
        assert runner._executor is not None


class TestWorkerAndChunkKnobs:
    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("WHOPAY_WORKERS", raising=False)
        assert default_workers() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("value", ["auto", "AUTO", "", "  "])
    def test_auto_and_empty_mean_cpu_count(self, monkeypatch, value):
        monkeypatch.setenv("WHOPAY_WORKERS", value)
        assert default_workers() == (os.cpu_count() or 1)

    def test_explicit_integer_and_clamp(self, monkeypatch):
        monkeypatch.setenv("WHOPAY_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("WHOPAY_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("WHOPAY_WORKERS", "-2")
        assert default_workers() == 1

    @pytest.mark.parametrize("value", ["lots", "3.5", "auto8"])
    def test_malformed_warns_and_falls_back(self, monkeypatch, value):
        monkeypatch.setenv("WHOPAY_WORKERS", value)
        with pytest.warns(RuntimeWarning, match="malformed WHOPAY_WORKERS"):
            assert default_workers() == (os.cpu_count() or 1)

    def test_chunksize_default_and_override(self, monkeypatch):
        monkeypatch.delenv("WHOPAY_CHUNK", raising=False)
        assert _default_chunksize(32, 4) == 2
        assert _default_chunksize(3, 8) == 1  # never zero
        monkeypatch.setenv("WHOPAY_CHUNK", "5")
        assert _default_chunksize(32, 4) == 5
        monkeypatch.setenv("WHOPAY_CHUNK", "bogus")
        with pytest.warns(RuntimeWarning, match="malformed WHOPAY_CHUNK"):
            assert _default_chunksize(32, 4) == 2

    def test_explicit_chunksize_matches_default_rows(self):
        configs = [replace(TINY, seed=s) for s in (31, 32, 33, 34)]
        chunked = run_sweep_parallel(configs, max_workers=2, chunksize=2)
        assert [strip_timing(r) for r in chunked] == [
            strip_timing(run_one(c)) for c in configs
        ]


class TestEngineSelection:
    def test_rows_carry_engine_and_events(self):
        row = run_one(replace(TINY, seed=41))
        assert row["engine"] == "fast"
        assert row["events"] > 0

    def test_env_default_engine(self, monkeypatch):
        monkeypatch.setenv("WHOPAY_SIM_ENGINE", "compat")
        assert run_one(replace(TINY, seed=41))["engine"] == "compat"

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("WHOPAY_SIM_ENGINE", "fast")
        row = run_one(replace(TINY, seed=41), engine="reference")
        assert row["engine"] == "reference"

    def test_compat_rows_identical_to_reference(self):
        config = replace(TINY, seed=42)
        ref = strip_timing(run_one(config, engine="reference"))
        compat = strip_timing(run_one(config, engine="compat"))
        assert {k: v for k, v in ref.items() if k != "engine"} == {
            k: v for k, v in compat.items() if k != "engine"
        }

    def test_parallel_pins_engine_in_parent(self, monkeypatch):
        # The engine resolves before configs ship to workers, so rows agree
        # with the sequential run even though workers re-read the env.
        monkeypatch.setenv("WHOPAY_SIM_ENGINE", "compat")
        configs = [replace(TINY, seed=s) for s in (51, 52)]
        rows = run_sweep_parallel(configs, max_workers=2)
        assert [row["engine"] for row in rows] == ["compat", "compat"]


class TestProfileHooks:
    def test_profile_writes_dump(self, monkeypatch, tmp_path):
        monkeypatch.setenv("WHOPAY_PROFILE", str(tmp_path))
        config = replace(TINY, seed=61)
        row = run_one(config, engine="fast")
        assert row["wall_s"] > 0
        dumps = list(tmp_path.glob("sim_fast_n15_s61.prof"))
        assert len(dumps) == 1 and dumps[0].stat().st_size > 0

    def test_every_row_carries_timing_stamps(self, monkeypatch):
        monkeypatch.delenv("WHOPAY_PROFILE", raising=False)
        row = run_one(replace(TINY, seed=61))
        assert row["wall_s"] > 0
        assert row["events_per_sec"] > 0
        rss = row["peak_rss_kb"]
        assert rss is None or rss > 0
        stripped = strip_timing(row)
        assert not any(col in stripped for col in TIMING_COLUMNS)
        assert stripped["engine"] == "fast"


class TestReplicatedSpread:
    def test_parallel_matches_sequential(self):
        seeds = (11, 12, 13)
        drop = set(TIMING_COLUMNS) | {f"{c}_spread" for c in TIMING_COLUMNS}
        par = run_replicated(TINY, seeds, parallel=True)
        seq = run_replicated(TINY, seeds)
        assert {k: v for k, v in par.items() if k not in drop} == {
            k: v for k, v in seq.items() if k not in drop
        }

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_replicated(TINY, ())

    def test_spread_cases(self):
        assert _spread([3.0, 3.0, 3.0], 3.0) == 0.0
        assert _spread([0.0, 0.0], 0.0) == 0.0  # equal values, zero mean
        assert _spread([2.0, 4.0], 3.0) == pytest.approx(2.0 / 3.0)
        assert _spread([-1.0, 1.0], 0.0) is None  # zero mean, no scale
        assert _spread([1.0, math.nan], 1.0) is None
        assert _spread([1.0, math.inf], 1.0) is None

    def test_replicated_rows_carry_spreads(self):
        merged = run_replicated(TINY, (21, 22))
        assert merged["replications"] == 2
        assert "broker_cpu_spread" in merged
        spread = merged["broker_cpu_spread"]
        assert spread is None or spread >= 0.0
        # Non-numeric columns pass through unchanged, without spread keys.
        assert merged["policy"] == "I"
        assert "policy_spread" not in merged
