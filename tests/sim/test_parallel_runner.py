"""Parallel sweep runner: determinism and replication semantics.

The contract (DESIGN.md §1.1): the process-pool path must produce
*bit-identical* rows to the sequential runner for the same configs/seeds —
parallelism may only change wall-clock, never results.
"""

import math
from dataclasses import replace

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim import runner
from repro.sim.config import SimConfig
from repro.sim.runner import (
    _spread,
    run_one,
    run_replicated,
    run_sweep_parallel,
    shutdown_pool,
)

TINY = SimConfig(
    n_peers=15,
    duration=0.4 * DAY,
    renewal_period=0.15 * DAY,
    mean_online=2 * HOUR,
    mean_offline=2 * HOUR,
)


@pytest.fixture(autouse=True, scope="module")
def _teardown_pool():
    yield
    shutdown_pool()


class TestParallelDeterminism:
    def test_bit_identical_to_sequential(self):
        configs = [replace(TINY, seed=s) for s in (7, 8, 9)]
        sequential = [run_one(c) for c in configs]
        parallel = run_sweep_parallel(configs, max_workers=2)
        assert parallel == sequential

    def test_order_preserved(self):
        configs = [replace(TINY, seed=s, n_peers=10 + s) for s in (1, 2, 3)]
        rows = run_sweep_parallel(configs, max_workers=2)
        assert [row["n_peers"] for row in rows] == [11, 12, 13]

    def test_empty_and_single(self):
        assert run_sweep_parallel([]) == []
        rows = run_sweep_parallel([replace(TINY, seed=4)], max_workers=1)
        assert rows == [run_one(replace(TINY, seed=4))]

    def test_pool_reuse(self):
        configs = [replace(TINY, seed=s) for s in (5, 6)]
        first = run_sweep_parallel(configs, max_workers=2)
        again = run_sweep_parallel(configs, max_workers=2)
        assert first == again
        assert runner._executor is not None


class TestReplicatedSpread:
    def test_parallel_matches_sequential(self):
        seeds = (11, 12, 13)
        assert run_replicated(TINY, seeds, parallel=True) == run_replicated(TINY, seeds)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_replicated(TINY, ())

    def test_spread_cases(self):
        assert _spread([3.0, 3.0, 3.0], 3.0) == 0.0
        assert _spread([0.0, 0.0], 0.0) == 0.0  # equal values, zero mean
        assert _spread([2.0, 4.0], 3.0) == pytest.approx(2.0 / 3.0)
        assert _spread([-1.0, 1.0], 0.0) is None  # zero mean, no scale
        assert _spread([1.0, math.nan], 1.0) is None
        assert _spread([1.0, math.inf], 1.0) is None

    def test_replicated_rows_carry_spreads(self):
        merged = run_replicated(TINY, (21, 22))
        assert merged["replications"] == 2
        assert "broker_cpu_spread" in merged
        spread = merged["broker_cpu_spread"]
        assert spread is None or spread >= 0.0
        # Non-numeric columns pass through unchanged, without spread keys.
        assert merged["policy"] == "I"
        assert "policy_spread" not in merged
