"""Sweep-runner and baseline-view tests."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.baseline_sim import centralized_load, compare_systems, ppay_load, whopay_load
from repro.sim.config import SimConfig
from repro.sim.policies import POLICY_I
from repro.sim.runner import run_one
from repro.sim.simulator import Simulation


@pytest.fixture(scope="module")
def metrics():
    config = SimConfig(
        n_peers=40, duration=2 * DAY, renewal_period=0.6 * DAY,
        mean_online=2 * HOUR, mean_offline=2 * HOUR, seed=99,
    )
    return Simulation(config).run().metrics


class TestRunner:
    def test_run_one_row_shape(self):
        config = SimConfig(n_peers=20, duration=0.5 * DAY, renewal_period=0.2 * DAY)
        row = run_one(config)
        for key in (
            "mu_hours",
            "availability",
            "broker_cpu",
            "cpu_ratio",
            "broker_cpu_share",
            "broker_purchase",
            "peer_avg_transfer",
        ):
            assert key in row, key
        assert row["n_peers"] == 20
        assert row["policy"] == "I"


class TestBaselineViews:
    def test_whopay_view_matches_metrics(self, metrics):
        view = whopay_load(metrics)
        assert view.broker_cpu == metrics.broker_cpu_load()
        assert view.peer_cpu_total == metrics.peer_cpu_load_total()

    def test_ppay_cheaper_for_peers_same_broker_pattern(self, metrics):
        whopay = whopay_load(metrics)
        ppay = ppay_load(metrics)
        # No group signatures => strictly cheaper peer CPU, similar broker
        # involvement pattern (same operation routing).
        assert ppay.peer_cpu_total < whopay.peer_cpu_total
        assert ppay.broker_cpu <= whopay.broker_cpu

    def test_centralized_broker_dominates(self, metrics):
        whopay = whopay_load(metrics)
        central = centralized_load(metrics)
        # The motivating claim: the centralized design loads the broker far
        # heavier for the same workload (the gap widens with availability;
        # at this 50%-availability setup it is a bit under an order of
        # magnitude because downtime traffic keeps WhoPay's broker busy too).
        assert central.broker_cpu > 3 * whopay.broker_cpu
        assert central.broker_cpu_share > 0.2
        assert whopay.broker_cpu_share < 0.1

    def test_shares_in_unit_interval(self, metrics):
        for view in compare_systems(metrics):
            assert 0.0 <= view.broker_cpu_share <= 1.0
            assert 0.0 <= view.broker_comm_share <= 1.0

    def test_compare_systems_order(self, metrics):
        names = [view.system for view in compare_systems(metrics)]
        assert names == ["whopay", "ppay", "centralized"]
