"""Golden regression pins: fixed-seed runs must not drift silently.

The figure benches assert *shapes*; these tests pin exact operation counts
for fixed seeds, so an accidental semantic change to the simulator (event
ordering, policy logic, renewal scheduling) fails loudly instead of
shifting every figure a little.  If a change is *intentional*, update the
constants and say why in the commit.
"""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.policies import POLICY_I, POLICY_III
from repro.sim.simulator import Simulation

BASE = dict(
    n_peers=50,
    duration=2 * DAY,
    renewal_period=0.6 * DAY,
    mean_online=2 * HOUR,
    mean_offline=2 * HOUR,
    seed=1386,
)


def run(**overrides):
    return Simulation(SimConfig(**{**BASE, **overrides})).run().metrics


class TestGoldenCounts:
    def test_policy_one_proactive(self):
        metrics = run(policy=POLICY_I, sync_mode="proactive")
        golden = dict(metrics.ops)
        # Structural pins that any same-semantics run must reproduce.
        assert metrics.payments_made == sum(metrics.payments_by_method.values())
        assert golden["purchase"] == metrics.coins_created
        # Exact pins (update deliberately, with a reason):
        assert metrics.payments_made == 6794, metrics.payments_made
        assert golden["transfer"] == 5694, golden
        assert golden["downtime_transfer"] == 482, golden
        assert golden["sync"] == 598, golden
        assert golden["purchase"] == 618, golden

    def test_policy_three_lazy(self):
        metrics = run(policy=POLICY_III, sync_mode="lazy")
        golden = dict(metrics.ops)
        assert golden.get("downtime_transfer", 0) == 0
        assert metrics.payments_made == 6794, metrics.payments_made
        assert golden["transfer"] == 6042, golden
        assert golden["check"] == 2003, golden
        assert golden["lazy_sync"] == 419, golden
        assert golden.get("sync", 0) == 0

    def test_cross_policy_payment_parity(self):
        # Same seed, same workload: the policies see identical payment
        # opportunities and differ only in how they serve them.
        one = run(policy=POLICY_I).payments_made
        three = run(policy=POLICY_III).payments_made
        assert one == three
