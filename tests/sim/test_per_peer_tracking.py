"""Per-peer load tracking tests."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation

FAST = dict(
    n_peers=30, duration=1 * DAY, renewal_period=0.4 * DAY,
    mean_online=2 * HOUR, mean_offline=2 * HOUR,
)


class TestTracking:
    def test_disabled_by_default(self):
        metrics = Simulation(SimConfig(**FAST)).run().metrics
        assert not metrics.per_peer_served
        assert not metrics.per_peer_payments

    def test_served_totals_match_op_counts(self):
        metrics = Simulation(SimConfig(**FAST, track_per_peer=True, seed=3)).run().metrics
        served_total = sum(metrics.per_peer_served.values())
        # Owner-served work = issues + owner-served transfers + renewals.
        expected = metrics.ops["issue"] + metrics.ops["transfer"] + metrics.ops["renewal"]
        assert served_total == expected

    def test_payment_totals_match(self):
        metrics = Simulation(SimConfig(**FAST, track_per_peer=True, seed=5)).run().metrics
        assert sum(metrics.per_peer_payments.values()) == metrics.payments_made

    def test_distribution_dense_over_peers(self):
        metrics = Simulation(SimConfig(**FAST, track_per_peer=True, seed=7)).run().metrics
        distribution = metrics.served_distribution()
        assert len(distribution) == 30
        assert all(v >= 0 for v in distribution)
        assert sum(distribution) == sum(metrics.per_peer_served.values())

    def test_tracking_does_not_change_results(self):
        a = Simulation(SimConfig(**FAST, track_per_peer=False, seed=11)).run().metrics
        b = Simulation(SimConfig(**FAST, track_per_peer=True, seed=11)).run().metrics
        assert a.ops == b.ops
        assert a.payments_made == b.payments_made

    def test_powerlaw_concentrates_work(self):
        cfg = dict(FAST, n_peers=50, duration=2 * DAY, track_per_peer=True, seed=13)
        uniform = Simulation(SimConfig(**cfg, heterogeneity="uniform")).run().metrics
        powerlaw = Simulation(SimConfig(**cfg, heterogeneity="powerlaw")).run().metrics

        def top_share(metrics):
            dist = sorted(metrics.served_distribution(), reverse=True)
            total = sum(dist) or 1
            return sum(dist[:5]) / total

        assert top_share(powerlaw) > top_share(uniform)
