"""Simulator tests: determinism, invariants, policy semantics, churn."""

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.policies import POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III
from repro.sim.simulator import Simulation

FAST = dict(n_peers=30, duration=1 * DAY, renewal_period=0.4 * DAY)


def run(**overrides):
    merged = {**FAST, **overrides}
    return Simulation(SimConfig(**merged)).run()


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run(seed=7)
        b = run(seed=7)
        assert a.metrics.ops == b.metrics.ops
        assert a.metrics.payments_made == b.metrics.payments_made

    def test_different_seed_different_result(self):
        a = run(seed=1)
        b = run(seed=2)
        assert a.metrics.ops != b.metrics.ops


class TestInvariants:
    def test_coin_conservation(self):
        result = run(policy=POLICY_III, initial_balance=3, seed=11)
        sim = Simulation(result.config)
        result = sim.run()
        metrics = result.metrics
        live = sum(1 for coin in sim.coins if not coin.retired)
        assert metrics.coins_created - metrics.coins_retired == live
        assert metrics.ops["purchase"] == metrics.coins_created
        assert metrics.ops["deposit"] == metrics.coins_retired

    def test_every_live_coin_held_by_exactly_one_peer(self):
        sim = Simulation(SimConfig(**FAST, seed=13))
        sim.run()
        holdings = {}
        for index, peer in enumerate(sim.peers):
            for coin_id in peer.wallet:
                assert coin_id not in holdings, "coin held twice"
                holdings[coin_id] = index
        for coin in sim.coins:
            if not coin.retired:
                assert holdings.get(coin.id) == coin.holder

    def test_unissued_coins_never_transferred(self):
        sim = Simulation(SimConfig(**FAST, seed=17))
        sim.run()
        for peer in sim.peers:
            for coin_id in peer.unissued:
                coin = sim.coins[coin_id]
                assert not coin.issued
                assert coin.holder == coin.owner

    def test_payment_accounting(self):
        metrics = run(seed=19).metrics
        assert metrics.payments_made + metrics.payments_failed <= metrics.payments_attempted
        assert sum(metrics.payments_by_method.values()) == metrics.payments_made

    def test_money_conservation_with_budget(self):
        sim = Simulation(SimConfig(**FAST, initial_balance=5, seed=23))
        sim.run()
        total = sum(p.balance for p in sim.peers) + sum(
            1 for c in sim.coins if not c.retired
        )
        assert total == 5 * len(sim.peers)


class TestPolicySemantics:
    def test_policy_i_uses_downtime_transfers(self):
        metrics = run(policy=POLICY_I, seed=29).metrics
        assert metrics.ops["downtime_transfer"] > 0
        assert metrics.ops["deposit"] == 0

    def test_policy_iii_avoids_downtime_transfers(self):
        metrics = run(policy=POLICY_III, seed=29).metrics
        assert metrics.ops["downtime_transfer"] == 0

    def test_policy_iii_deposits_under_budget(self):
        metrics = run(policy=POLICY_III, initial_balance=2, seed=31).metrics
        assert metrics.ops["deposit"] > 0  # recycling fires once budgets drain

    def test_policy_ii_between_i_and_iii(self):
        broker_cpu = {}
        for policy in (POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III):
            metrics = run(policy=policy, seed=37, n_peers=60, duration=2 * DAY).metrics
            broker_cpu[policy.name] = metrics.broker_cpu_load()
        assert broker_cpu["III"] <= broker_cpu["II.a"] <= broker_cpu["I"]
        assert broker_cpu["III"] <= broker_cpu["II.b"] <= broker_cpu["I"]

    def test_transfers_dominate_peer_load(self):
        # Paper Section 6.2: "under all configurations, transfers dominate
        # peer load".
        metrics = run(seed=41, n_peers=60, duration=2 * DAY).metrics
        peer_ops = metrics.peer_op_counts_avg()
        assert peer_ops["transfer"] == max(peer_ops.values())


class TestSyncModes:
    def test_proactive_counts_one_sync_per_rejoin(self):
        sim = Simulation(SimConfig(**FAST, sync_mode="proactive", seed=43))
        result = sim.run()
        assert result.metrics.ops["sync"] > 0
        assert result.metrics.ops["check"] == 0

    def test_lazy_has_no_syncs_but_checks(self):
        metrics = run(sync_mode="lazy", seed=43).metrics
        assert metrics.ops["sync"] == 0
        assert metrics.ops["check"] > 0
        assert metrics.ops["lazy_sync"] <= metrics.ops["check"]

    def test_lazy_reduces_broker_load(self):
        pro = run(sync_mode="proactive", seed=47).metrics.broker_cpu_load()
        lazy = run(sync_mode="lazy", seed=47).metrics.broker_cpu_load()
        assert lazy < pro


class TestChurnEffects:
    def test_higher_availability_more_payments(self):
        low = run(mean_online=0.5 * HOUR, mean_offline=2 * HOUR, seed=53).metrics
        high = run(mean_online=8 * HOUR, mean_offline=2 * HOUR, seed=53).metrics
        assert high.payments_made > low.payments_made

    def test_full_availability_never_touches_downtime_paths(self):
        # With peers (almost) always online, downtime ops vanish.
        metrics = run(
            mean_online=1000 * HOUR, mean_offline=0.001 * HOUR, seed=59
        ).metrics
        assert metrics.ops["downtime_transfer"] == 0
        assert metrics.ops["downtime_renewal"] == 0

    def test_renewals_happen(self):
        metrics = run(seed=61).metrics
        assert metrics.ops["renewal"] + metrics.ops["downtime_renewal"] > 0

    def test_payer_gating_flag(self):
        gated = run(require_payer_online=True, seed=67).metrics
        ungated = run(require_payer_online=False, seed=67).metrics
        assert ungated.payments_made > gated.payments_made


class TestConfigValidation:
    def test_rejects_bad_sync_mode(self):
        with pytest.raises(ValueError):
            SimConfig(sync_mode="sometimes")

    def test_rejects_tiny_network(self):
        with pytest.raises(ValueError):
            SimConfig(n_peers=1)

    def test_rejects_nonpositive_durations(self):
        with pytest.raises(ValueError):
            SimConfig(duration=0)
        with pytest.raises(ValueError):
            SimConfig(mean_online=-1)

    def test_availability_formula(self):
        config = SimConfig(mean_online=2 * HOUR, mean_offline=6 * HOUR)
        assert config.availability == pytest.approx(0.25)

    def test_describe_mentions_key_params(self):
        text = SimConfig().describe()
        assert "policy=I" in text and "sync=proactive" in text


class TestBrokerRestarts:
    def test_default_run_models_no_restarts(self):
        metrics = run(seed=7).metrics
        assert metrics.broker_restarts == 0
        assert metrics.snapshots_taken == 0
        assert metrics.recovery_replay_cost == 0.0

    def test_restarts_add_replay_cost_without_changing_the_op_mix(self):
        from repro.sim.costs import BROKER_OPS, REPLAY_RECORD_COST

        base = run(seed=7).metrics
        restarted = run(seed=7, broker_restarts=3).metrics
        assert restarted.ops == base.ops  # retries hide the outage from clients
        assert restarted.broker_restarts == 3
        assert restarted.snapshots_taken == 3
        assert restarted.recovery_records_replayed > 0
        assert restarted.recovery_replay_cost == (
            restarted.recovery_records_replayed * REPLAY_RECORD_COST
        )
        assert restarted.broker_cpu_load() == pytest.approx(
            base.broker_cpu_load() + restarted.recovery_replay_cost
        )
        # Compaction snapshots reset the backlog: total replay never exceeds
        # the broker's whole journal.
        total_broker_ops = sum(restarted.ops[op] for op in BROKER_OPS)
        assert restarted.recovery_records_replayed <= total_broker_ops

    def test_restart_modeling_is_deterministic(self):
        a = run(seed=7, broker_restarts=2).metrics
        b = run(seed=7, broker_restarts=2).metrics
        assert a.recovery_records_replayed == b.recovery_records_replayed
        assert a.broker_cpu_load() == b.broker_cpu_load()

    def test_rejects_negative_restarts(self):
        with pytest.raises(ValueError):
            SimConfig(broker_restarts=-1)
