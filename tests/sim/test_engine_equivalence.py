"""The equivalence gate between the three simulation engines.

Three layers of guarantee (see ``docs/SIMULATOR.md``):

* **compat ≡ reference, exactly.**  The calendar-queue engine replays the
  reference event order draw for draw, so every metric must be
  bit-identical for every seed and every configuration knob.
* **fast is deterministic.**  Same seed → same metrics, with numpy and
  without (``use_numpy=False`` forces the pure-Python fallback).
* **fast ≡ reference, statistically.**  The fast engine consumes its
  randomness in a different (batched) order, so per-seed values differ;
  over a pool of seeds the means must agree within sampling error, and a
  single fixed-seed sweep must stay within tolerance of the committed
  fig2–fig11 rows under ``benchmarks/out/``.

The statistical bounds were calibrated against measured noise: per-seed
relative stdev of the payment total is ~5% at the small preset, and the
noisiest committed series (downtime transfers) shows single-seed swings
of ~10–15%, so the per-point tolerance is 0.35 with a per-column mean of
0.18 — loose enough for legitimate statistical-level engine changes,
tight enough to catch a broken thinning gate or a mispriced operation.
"""

from __future__ import annotations

import math
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.engine import (
    ENGINES,
    MAX_BUCKETS,
    MIN_BUCKETS,
    EventSampledSimulation,
    FastSimulation,
    bucket_count,
    build_simulation,
)
from repro.sim.policies import (
    POLICY_I,
    POLICY_I_LAYERED,
    POLICY_II_A,
    POLICY_II_B,
    POLICY_III,
)
from repro.sim.runner import run_availability_sweep, run_scaling_sweep
from repro.sim.simulator import Simulation

OUT = Path(__file__).resolve().parents[2] / "benchmarks" / "out"

#: Small enough for a sub-second reference run, large enough that every
#: operation family (renewals, downtime traffic, syncs) actually fires.
SMALL = dict(
    n_peers=30,
    duration=1 * DAY,
    renewal_period=0.3 * DAY,
    mean_online=2 * HOUR,
    mean_offline=2 * HOUR,
)

#: Every configuration knob the engines special-case somewhere.
VARIANTS = {
    "lazy": dict(sync_mode="lazy"),
    "policy3-lazy": dict(policy=POLICY_III, sync_mode="lazy"),
    "policy2a-budget": dict(policy=POLICY_II_A, initial_balance=5),
    "policy2b-budget": dict(policy=POLICY_II_B, initial_balance=3),
    "layered": dict(policy=POLICY_I_LAYERED, max_layers=4),
    "payee-only-thinning": dict(require_payer_online=False),
    "powerlaw": dict(heterogeneity="powerlaw"),
    "per-peer-tracking": dict(track_per_peer=True),
    "lossy-links": dict(message_loss=0.1),
    "detection": dict(detection=True),
    "broker-restarts": dict(broker_restarts=2),
    # Cross-products of the knobs the figure campaign actually combines —
    # the default-engine flip routes every figure/ablation sweep through
    # the fast engine, so the equivalence gate covers the combinations,
    # not just each knob alone.
    "detection-powerlaw": dict(detection=True, heterogeneity="powerlaw"),
    "detection-lazy": dict(detection=True, sync_mode="lazy"),
    "detection-restarts": dict(detection=True, broker_restarts=2),
    "lazy-restarts-lossy": dict(
        sync_mode="lazy", broker_restarts=2, message_loss=0.1
    ),
    "layered-lazy-detection": dict(
        policy=POLICY_I_LAYERED, max_layers=4, sync_mode="lazy", detection=True
    ),
    "powerlaw-superpeer-lossy": dict(
        heterogeneity="powerlaw",
        superpeer_max_availability=0.9,
        message_loss=0.1,
    ),
    "detection-layered-powerlaw": dict(
        detection=True,
        policy=POLICY_I_LAYERED,
        max_layers=3,
        heterogeneity="powerlaw",
    ),
}


def cfg(seed: int = 1, **overrides) -> SimConfig:
    return SimConfig(**{**SMALL, "seed": seed, **overrides})


def run_metrics(config: SimConfig, engine: str):
    return build_simulation(config, engine).run().metrics


class TestBuildSimulation:
    def test_engine_names(self):
        assert ENGINES == ("reference", "compat", "fast")
        assert type(build_simulation(cfg(), "reference")) is Simulation
        assert type(build_simulation(cfg(), "compat")) is EventSampledSimulation
        assert type(build_simulation(cfg(), "fast")) is FastSimulation

    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("WHOPAY_SIM_ENGINE", raising=False)
        assert type(build_simulation(cfg())) is FastSimulation
        assert type(build_simulation(cfg(), None)) is FastSimulation
        assert type(build_simulation(cfg(), "")) is FastSimulation

    def test_env_override_applies_when_unspecified(self, monkeypatch):
        monkeypatch.setenv("WHOPAY_SIM_ENGINE", "reference")
        assert type(build_simulation(cfg())) is Simulation
        assert type(build_simulation(cfg(), "")) is Simulation

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("WHOPAY_SIM_ENGINE", "compat")
        assert type(build_simulation(cfg(), "fast")) is FastSimulation

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine"):
            build_simulation(cfg(), "turbo")
        # A bogus env value surfaces the same way instead of silently
        # falling back.
        monkeypatch.setenv("WHOPAY_SIM_ENGINE", "warp")
        with pytest.raises(ValueError, match="unknown engine"):
            build_simulation(cfg())


class TestBucketCount:
    """The shared calendar sizing rule (compat queue and fast engine)."""

    def test_targets_per_bucket_density(self):
        assert bucket_count(256_000, per_bucket=256) == 1002

    def test_floor_for_tiny_runs(self):
        assert bucket_count(0) == MIN_BUCKETS
        assert bucket_count(100) == MIN_BUCKETS

    def test_ceiling_for_huge_runs(self):
        assert bucket_count(10**12) == MAX_BUCKETS

    def test_monotone_in_event_count(self):
        counts = [bucket_count(float(n)) for n in (0, 10**3, 10**5, 10**7, 10**9)]
        assert counts == sorted(counts)


class TestCompatBitIdentical:
    """The calendar queue changes the schedule, not one single draw."""

    def test_ten_plus_seeds_identical(self):
        for seed in range(12):
            config = cfg(seed=seed)
            ref = run_metrics(config, "reference")
            compat = run_metrics(config, "compat")
            assert compat == ref, f"seed {seed}"
            assert compat.ops == ref.ops
            assert compat.payments_made == ref.payments_made

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_every_variant_identical(self, variant):
        config = cfg(seed=7, **VARIANTS[variant])
        assert run_metrics(config, "compat") == run_metrics(config, "reference")


class TestFastDeterministic:
    def test_same_seed_same_metrics(self):
        for seed in (0, 1, 1386):
            config = cfg(seed=seed)
            assert run_metrics(config, "fast") == run_metrics(config, "fast")

    def test_seed_actually_matters(self):
        assert run_metrics(cfg(seed=0), "fast") != run_metrics(cfg(seed=1), "fast")

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_variants_deterministic(self, variant):
        config = cfg(seed=3, **VARIANTS[variant])
        assert run_metrics(config, "fast") == run_metrics(config, "fast")

    def test_numpy_and_fallback_identical(self):
        from repro.sim import engine as engine_mod

        if engine_mod._np is None:
            pytest.skip("numpy not installed; only the fallback path exists")
        for seed in (0, 5):
            for overrides in ({}, VARIANTS["powerlaw"], VARIANTS["lazy"]):
                config = cfg(seed=seed, **overrides)
                with_np = FastSimulation(config, use_numpy=True).run().metrics
                without = FastSimulation(config, use_numpy=False).run().metrics
                assert with_np == without, (seed, overrides)


class TestFastStatisticallyEquivalent:
    """Seed-pool means agree within sampling error (not per-seed values).

    Calibration note: at this preset the per-seed stdev of the payment
    total is ~5% of the mean, so 10-seed means carry ~1.5% standard
    error each; a tight *relative* bound on so few seeds would flag pure
    noise.  The bounds below are z-style: mean difference within 4
    combined standard errors (plus an epsilon for near-constant series).
    """

    SEEDS = range(10)

    @staticmethod
    def _mean_se(values):
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        return mean, math.sqrt(var / len(values))

    def _assert_close(self, ref_values, fast_values, label):
        ref_mean, ref_se = self._mean_se(ref_values)
        fast_mean, fast_se = self._mean_se(fast_values)
        bound = 4.0 * math.hypot(ref_se, fast_se) + 0.005 * abs(ref_mean) + 1e-9
        assert abs(fast_mean - ref_mean) <= bound, (
            f"{label}: reference mean {ref_mean:.1f}±{ref_se:.1f} vs "
            f"fast mean {fast_mean:.1f}±{fast_se:.1f} (bound {bound:.1f})"
        )

    def test_payment_totals_and_op_mix(self):
        keys = (
            "transfer",
            "downtime_transfer",
            "purchase",
            "renewal",
            "downtime_renewal",
            "sync",
        )
        ref_runs = [run_metrics(cfg(seed=s), "reference") for s in self.SEEDS]
        fast_runs = [run_metrics(cfg(seed=s), "fast") for s in self.SEEDS]
        self._assert_close(
            [m.payments_attempted for m in ref_runs],
            [m.payments_attempted for m in fast_runs],
            "payments_attempted",
        )
        self._assert_close(
            [m.payments_made for m in ref_runs],
            [m.payments_made for m in fast_runs],
            "payments_made",
        )
        for key in keys:
            self._assert_close(
                [m.ops[key] for m in ref_runs],
                [m.ops[key] for m in fast_runs],
                f"ops[{key}]",
            )

    def test_fast_structural_invariants(self):
        for seed in self.SEEDS:
            m = run_metrics(cfg(seed=seed), "fast")
            assert m.payments_made == sum(m.payments_by_method.values())
            # Thinned candidates count as attempted but neither made nor
            # failed (the reference engine does the same).
            assert m.payments_attempted >= m.payments_made + m.payments_failed
            assert m.ops["purchase"] == m.coins_created == m.ops["issue"]
            assert m.events > 0


def _parse_series_table(path: Path):
    """Parse a committed ``format_series_table`` artifact.

    Line 1 is the title, line 2 the column names, line 3 dashes; every
    further non-empty line is one row of comma-grouped numbers.
    """
    lines = path.read_text().splitlines()
    header = lines[1].split()
    rows = [
        [float(token.replace(",", "")) for token in line.split()]
        for line in lines[3:]
        if line.strip()
    ]
    return header, rows


def _broker_key(column: str) -> str:
    return "broker_" + (column[:-1] if column.endswith("s") else column)


#: artifact file -> (sweep family, row-key source).  A string source is a
#: per-config sweep: the prefix maps each column name to a row key.  A
#: ``dict`` source is a multi-config figure: every column is one
#: (policy, sync) configuration and the value is the shared row key.
GOLDEN_FIGURES = {
    "fig2_broker_load_pro.txt": ("A", ("I", "proactive"), _broker_key),
    "fig3_broker_load_lazy.txt": ("A", ("I", "lazy"), _broker_key),
    "fig4_peer_load_pro.txt": ("A", ("I", "proactive"), "peer_avg_".__add__),
    "fig5_peer_load_lazy.txt": ("A", ("I", "lazy"), "peer_avg_".__add__),
    "fig6_broker_cpu.txt": ("A", None, "broker_cpu"),
    "fig7_broker_comm.txt": ("A", None, "broker_comm"),
    "fig8_cpu_ratio.txt": ("A", None, "cpu_ratio"),
    "fig9_comm_ratio.txt": ("A", None, "comm_ratio"),
    "fig10_cpu_scaling.txt": ("B", None, "broker_cpu_share"),
    "fig11_comm_scaling.txt": ("B", None, "broker_comm_share"),
}

CONFIG_COLUMNS = {
    "I+proa": ("I", "proactive"),
    "I+lazy": ("I", "lazy"),
    "III+proa": ("III", "proactive"),
    "III+lazy": ("III", "lazy"),
}

_POLICIES = {"I": POLICY_I, "III": POLICY_III}

#: Calibrated against the committed rows (see module docstring): today's
#: worst per-point normalized deviation is 0.26 and the worst per-column
#: mean is 0.10.
POINT_TOLERANCE = 0.35
COLUMN_MEAN_TOLERANCE = 0.18


@pytest.fixture(scope="module")
def fast_sweeps():
    """One fixed-seed fast-engine run of all eight committed sweeps."""
    sweeps_a = {
        key: run_availability_sweep(_POLICIES[p], sync, small=True, engine="fast")
        for key, (p, sync) in CONFIG_COLUMNS.items()
    }
    sweeps_b = {
        key: run_scaling_sweep(_POLICIES[p], sync, small=True, engine="fast")
        for key, (p, sync) in CONFIG_COLUMNS.items()
    }
    return {"A": sweeps_a, "B": sweeps_b}


@pytest.mark.skipif(
    os.environ.get("WHOPAY_FULL") == "1",
    reason="committed golden rows are the reduced-scale preset",
)
@pytest.mark.parametrize("artifact", sorted(GOLDEN_FIGURES))
def test_fast_engine_matches_committed_golden_rows(artifact, fast_sweeps):
    sweep_name, config, key_source = GOLDEN_FIGURES[artifact]
    path = OUT / artifact
    assert path.exists(), f"committed golden artifact missing: {path}"
    header, rows = _parse_series_table(path)
    sweeps = fast_sweeps[sweep_name]
    x_key = "mu_hours" if sweep_name == "A" else "n_peers"

    def rows_at_golden_x(sweep_rows):
        # Some artifacts (the ratio figures) commit only a prefix of the
        # sweep, so select fast rows by x value rather than position.
        by_x = {round(float(r[x_key]), 6): r for r in sweep_rows}
        return [by_x[round(row[0], 6)] for row in rows]

    for column_index, column in enumerate(header[1:], start=1):
        golden = [row[column_index] for row in rows]
        if config is not None:
            policy, sync = config
            matched = rows_at_golden_x(sweeps[f"{policy}+{sync[:4]}"])
            fast = [row[key_source(column)] for row in matched]
        else:
            fast = [row[key_source] for row in rows_at_golden_x(sweeps[column])]
        scale = max(abs(g) for g in golden)
        if scale == 0.0:
            # Structurally-zero series (e.g. policy I deposits) must stay
            # exactly zero: a nonzero value means broken policy logic, not
            # statistical drift.
            assert all(f == 0 for f in fast), (artifact, column, fast)
            continue
        assert len(golden) == len(fast), (artifact, column)
        norms = [
            abs(f - g) / max(abs(g), abs(f), 0.05 * scale)
            for g, f in zip(golden, fast)
        ]
        assert max(norms) <= POINT_TOLERANCE, (artifact, column, norms)
        assert sum(norms) / len(norms) <= COLUMN_MEAN_TOLERANCE, (
            artifact,
            column,
            norms,
        )
