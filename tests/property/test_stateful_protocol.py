"""Stateful property testing: random protocol interleavings, global invariants.

A hypothesis rule-based machine drives a real WhoPayNetwork (actual crypto,
actual transport) through random sequences of purchases, issues, transfers,
downtime operations, renewals, deposits, and churn — checking after every
step that the system-wide invariants hold:

* value conservation: account balances + live circulating value is constant;
* no coin is in two wallets;
* every wallet entry's binding names that wallet's holder key;
* the broker's deposited set and the wallets are disjoint.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule

from repro.core.errors import ProtocolError
from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512
from repro.net.transport import NetworkError, NodeOffline

N_PEERS = 4
INITIAL_BALANCE = 6

peer_indexes = st.integers(min_value=0, max_value=N_PEERS - 1)


class WhoPayMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.net = WhoPayNetwork(params=PARAMS_TEST_512)
        self.peers = [
            self.net.add_peer(f"p{i}", PeerConfig(balance=INITIAL_BALANCE)) for i in range(N_PEERS)
        ]
        self.total_wealth = N_PEERS * INITIAL_BALANCE

    # -- actions ---------------------------------------------------------

    @rule(buyer=peer_indexes)
    def purchase(self, buyer):
        peer = self.peers[buyer]
        if self.net.broker.balance(peer.address) < 1:
            return
        peer.purchase(value=1)

    @rule(payer=peer_indexes, payee=peer_indexes)
    def issue(self, payer, payee):
        if payer == payee:
            return
        peer = self.peers[payer]
        if not peer.spendable_owned() or not self.peers[payee].online:
            return
        try:
            peer.issue(self.peers[payee].address)
        except (NodeOffline, ProtocolError):
            pass

    @rule(payer=peer_indexes, payee=peer_indexes)
    def transfer(self, payer, payee):
        if payer == payee:
            return
        peer = self.peers[payer]
        target = self.peers[payee]
        if not target.online:
            return
        for coin_y, held in list(peer.wallet.items()):
            owner = held.coin.owner_address
            if held.is_expired(self.net.clock.now()):
                continue
            try:
                if self.net.transport.is_online(owner):
                    peer.transfer(target.address, coin_y)
                else:
                    peer.transfer_via_broker(target.address, coin_y)
            except (NodeOffline, NetworkError, ProtocolError):
                pass
            return

    @rule(holder=peer_indexes)
    def renew(self, holder):
        peer = self.peers[holder]
        for coin_y, held in list(peer.wallet.items()):
            if held.is_expired(self.net.clock.now()):
                continue
            try:
                peer.renew(coin_y)
            except (NodeOffline, NetworkError, ProtocolError):
                pass
            return

    @rule(holder=peer_indexes)
    def deposit(self, holder):
        peer = self.peers[holder]
        for coin_y, held in list(peer.wallet.items()):
            if held.is_expired(self.net.clock.now()):
                continue
            try:
                peer.deposit(coin_y, payout_to=peer.address)
            except (NodeOffline, NetworkError, ProtocolError):
                pass
            return

    @rule(index=peer_indexes)
    def toggle_churn(self, index):
        peer = self.peers[index]
        if peer.online:
            peer.depart()
        else:
            peer.rejoin()

    @rule(hours=st.floats(min_value=0.1, max_value=6.0))
    def advance_time(self, hours):
        self.net.advance(hours * 3600)

    # -- invariants ------------------------------------------------------------

    @invariant()
    def value_is_conserved(self):
        if not hasattr(self, "net"):
            return
        broker = self.net.broker
        accounts = sum(a.balance for a in broker.accounts.values())
        circulating = sum(
            coin.value
            for coin_y, coin in broker.valid_coins.items()
            if coin_y not in broker.deposited
        )
        assert accounts + circulating == self.total_wealth

    @invariant()
    def no_coin_in_two_wallets(self):
        if not hasattr(self, "net"):
            return
        seen = set()
        for peer in self.peers:
            for coin_y in peer.wallet:
                assert coin_y not in seen, "coin held twice"
                seen.add(coin_y)

    @invariant()
    def bindings_name_their_holders(self):
        if not hasattr(self, "net"):
            return
        for peer in self.peers:
            for held in peer.wallet.values():
                assert held.binding.holder_y == held.holder_keypair.public.y

    @invariant()
    def deposited_coins_left_circulation(self):
        if not hasattr(self, "net"):
            return
        for peer in self.peers:
            for coin_y in peer.wallet:
                assert coin_y not in self.net.broker.deposited


WhoPayMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestWhoPayStateMachine = WhoPayMachine.TestCase
