"""Fuzz-style robustness: malformed inputs must fail cleanly, never crash.

Protocol endpoints face attacker-controlled bytes; every decoder and
verifier must convert garbage into a typed error (or a False verdict),
never an unhandled exception class or a hang.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PeerConfig, protocol
from repro.core.errors import ProtocolError
from repro.crypto.params import PARAMS_TEST_512
from repro.messages.codec import CodecError, decode, encode

P = PARAMS_TEST_512


class TestCodecFuzz:
    @given(st.binary(max_size=300))
    @settings(max_examples=300, deadline=None)
    def test_decode_never_crashes(self, data):
        try:
            value = decode(data)
        except CodecError:
            return
        # If it decoded, it must re-encode to the same bytes (canonicity).
        assert encode(value) == data

    @given(st.binary(min_size=1, max_size=200), st.integers(min_value=0, max_value=199))
    @settings(max_examples=200, deadline=None)
    def test_bit_flips_never_crash(self, data, position):
        blob = encode({"k": data})
        mutated = bytearray(blob)
        mutated[position % len(blob)] ^= 0xFF
        try:
            decode(bytes(mutated))
        except CodecError:
            pass  # the only acceptable failure mode


class TestEnvelopeFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_decode_signed_fails_typed(self, data):
        with pytest.raises((CodecError, KeyError, TypeError, ValueError)):
            message = protocol.decode_signed(data, P)
            # Decoding random bytes into a valid envelope is effectively
            # impossible; if it ever happens, it must at least not verify.
            assert not message.verify()

    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_decode_dual_fails_typed(self, data):
        with pytest.raises((CodecError, KeyError, TypeError, ValueError)):
            protocol.decode_dual(data, P)


class TestBrokerEndpointFuzz:
    @given(st.binary(max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_purchase_endpoint_rejects_garbage(self, data):
        from repro.core.network import WhoPayNetwork

        net = WhoPayNetwork(params=P)
        net.add_peer("alice", PeerConfig(balance=5))
        with pytest.raises(Exception) as exc_info:
            net.transport.request("alice", "broker", protocol.PURCHASE, data)
        # Typed protocol failure, not an arbitrary internal crash.
        assert isinstance(
            exc_info.value, (ProtocolError, CodecError, ValueError, KeyError, TypeError)
        )
        assert not net.broker.valid_coins  # nothing was minted

    @given(st.binary(max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_deposit_endpoint_rejects_garbage(self, data):
        from repro.core.network import WhoPayNetwork

        net = WhoPayNetwork(params=P)
        net.add_peer("alice", PeerConfig(balance=5))
        before = net.broker.balance("alice")
        with pytest.raises(Exception) as exc_info:
            net.transport.request("alice", "broker", protocol.DEPOSIT, data)
        assert isinstance(
            exc_info.value, (ProtocolError, CodecError, ValueError, KeyError, TypeError)
        )
        assert net.broker.balance("alice") == before  # nothing credited
