"""Property-based tests over the DHT and the simulator."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clock import DAY, HOUR
from repro.dht.chord import ChordRing, key_to_id
from repro.net.transport import Transport
from repro.sim.config import SimConfig
from repro.sim.policies import POLICIES
from repro.sim.simulator import Simulation


class TestChordProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(st.binary(min_size=1, max_size=12), min_size=1, max_size=12, unique=True),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_single_owner_and_roundtrip(self, ring_size, keys):
        transport = Transport()
        ring = ChordRing(transport, size=ring_size)
        for key in keys:
            # Consistent routing: every entry node agrees on the owner.
            owners = {node.find_successor(key_to_id(key)) for node in ring.nodes}
            assert len(owners) == 1
            assert ring.put(key, key.hex())["ok"]
        for key in keys:
            assert ring.get(key) == key.hex()

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_ring_forms_a_single_cycle(self, ring_size):
        transport = Transport()
        ring = ChordRing(transport, size=ring_size)
        start = ring.nodes[0].address
        seen = [start]
        current = start
        for _ in range(ring_size):
            current = transport.node(current).successor
            if current == start:
                break
            seen.append(current)
        assert current == start
        assert len(seen) == ring_size  # every node on one cycle


sim_configs = st.builds(
    SimConfig,
    n_peers=st.integers(min_value=5, max_value=40),
    duration=st.floats(min_value=0.2 * DAY, max_value=1.0 * DAY),
    mean_online=st.floats(min_value=0.5 * HOUR, max_value=8 * HOUR),
    mean_offline=st.floats(min_value=0.5 * HOUR, max_value=8 * HOUR),
    renewal_period=st.floats(min_value=0.1 * DAY, max_value=0.5 * DAY),
    policy=st.sampled_from(sorted(POLICIES.values(), key=lambda p: p.name)),
    sync_mode=st.sampled_from(["proactive", "lazy"]),
    initial_balance=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
    heterogeneity=st.sampled_from(["uniform", "powerlaw"]),
    seed=st.integers(min_value=0, max_value=2**31),
)


class TestSimulatorInvariants:
    @given(sim_configs)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_conservation_and_accounting(self, config):
        sim = Simulation(config)
        metrics = sim.run().metrics

        # Coin conservation: created - retired == live coins.
        live = sum(1 for coin in sim.coins if not coin.retired)
        assert metrics.coins_created - metrics.coins_retired == live
        assert metrics.ops["purchase"] == metrics.coins_created
        assert metrics.ops["deposit"] == metrics.coins_retired

        # Each live coin held by exactly one peer, consistently.
        holdings = {}
        for index, peer in enumerate(sim.peers):
            for coin_id in peer.wallet:
                assert coin_id not in holdings
                holdings[coin_id] = index
        for coin in sim.coins:
            if not coin.retired:
                assert holdings.get(coin.id) == coin.holder

        # Payment accounting closes.
        assert sum(metrics.payments_by_method.values()) == metrics.payments_made
        assert metrics.payments_made + metrics.payments_failed <= metrics.payments_attempted

        # Money conservation under a finite budget.
        if config.initial_balance is not None:
            total = sum(p.balance for p in sim.peers) + live * config.coin_value
            assert total == config.initial_balance * config.n_peers

        # Load math is finite and non-negative.
        assert metrics.broker_cpu_load() >= 0
        assert 0 <= metrics.broker_cpu_share() <= 1

        # Lazy/proactive exclusivity.
        if config.sync_mode == "proactive":
            assert metrics.ops["check"] == 0
        else:
            assert metrics.ops["sync"] == 0
            assert metrics.ops["lazy_sync"] <= metrics.ops["check"]

        # Layer cap respected.
        assert metrics.layered_depth_max <= config.max_layers
        for coin in sim.coins:
            assert coin.layers <= config.max_layers
