"""Property-based tests over the crypto substrate (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.dsa import dsa_sign, dsa_verify
from repro.crypto.group_signature import GroupManager, group_sign, group_verify
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512
from repro.crypto.schnorr import schnorr_prove, schnorr_verify
from repro.messages.codec import encode
from repro.messages.envelope import group_seal, seal

P = PARAMS_TEST_512

# Deterministic keys so hypothesis shrinks stay meaningful and fast.
exponents = st.integers(min_value=1, max_value=int(P.q) - 1)


class TestDsaProperties:
    @given(exponents, st.binary(max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_sign_verify_roundtrip(self, x, message):
        keypair = KeyPair.from_secret(P, x)
        assert dsa_verify(keypair.public, message, dsa_sign(keypair, message))

    @given(exponents, st.binary(max_size=60), st.binary(max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_cross_message_rejection(self, x, m1, m2):
        if m1 == m2:
            return
        keypair = KeyPair.from_secret(P, x)
        assert not dsa_verify(keypair.public, m2, dsa_sign(keypair, m1))

    @given(exponents, exponents, st.binary(max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_cross_key_rejection(self, x1, x2, message):
        if x1 == x2:
            return
        a = KeyPair.from_secret(P, x1)
        b = KeyPair.from_secret(P, x2)
        assert not dsa_verify(b.public, message, dsa_sign(a, message))


class TestSchnorrProperties:
    @given(exponents, st.binary(max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_prove_verify_roundtrip(self, x, context):
        keypair = KeyPair.from_secret(P, x)
        assert schnorr_verify(keypair.public, schnorr_prove(keypair, context), context)

    @given(exponents, st.binary(max_size=40), st.binary(max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_context_binding(self, x, c1, c2):
        if c1 == c2:
            return
        keypair = KeyPair.from_secret(P, x)
        assert not schnorr_verify(keypair.public, schnorr_prove(keypair, c1), c2)


class TestGroupSignatureProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=4),
        st.binary(max_size=60),
    )
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_any_member_roundtrip_and_open(self, roster_size, signer_index, message):
        signer_index %= roster_size
        manager = GroupManager(P)
        members = [manager.register(f"member-{i}") for i in range(roster_size)]
        gpk = manager.public_key()
        signature = group_sign(gpk, members[signer_index], message)
        assert group_verify(gpk, message, signature)
        assert manager.open(signature) == f"member-{signer_index}"


class TestEnvelopeProperties:
    payloads = st.recursive(
        st.none() | st.booleans() | st.integers(min_value=-(1 << 64), max_value=1 << 64)
        | st.binary(max_size=24) | st.text(max_size=16),
        lambda children: st.lists(children, max_size=3).map(tuple)
        | st.dictionaries(st.text(max_size=6), children, max_size=3),
        max_leaves=8,
    )

    @given(exponents, payloads)
    @settings(max_examples=40, deadline=None)
    def test_signed_envelope_wire_roundtrip(self, x, payload):
        from repro.core.protocol import decode_signed

        keypair = KeyPair.from_secret(P, x)
        message = seal(keypair, payload)
        rebuilt = decode_signed(message.encode(), P)
        assert rebuilt.verify()
        assert rebuilt.payload_bytes == message.payload_bytes
        assert rebuilt.signer.y == keypair.public.y

    @given(exponents, payloads)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_dual_envelope_wire_roundtrip(self, x, payload):
        from repro.core.protocol import decode_dual, encode_dual

        manager = GroupManager(P)
        member = manager.register("m")
        gpk = manager.public_key()
        keypair = KeyPair.from_secret(P, x)
        dual = group_seal(keypair, member, gpk, payload)
        rebuilt = decode_dual(encode_dual(dual), P)
        assert rebuilt.verify(gpk)
        assert rebuilt.roster_version == 1
        assert manager.open(rebuilt.group_signature) == "m"
