"""Recovery semantics: journal replay, snapshots, exactly-once across a
restart, tamper refusal, encrypted snapshots, and durable peer wallets.

The replay-cache regression matters most: a deposit whose reply is lost to
a broker crash *after* the journal record is durable must succeed on the
client's retry — same idempotency key, deduplicated against the
journal-refilled cache — instead of being rejected as a double spend.
"""

from __future__ import annotations

import hashlib
import struct

import pytest

from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512
from repro.messages.codec import decode, encode
from repro.net.rpc import RetryPolicy
from repro.net.transport import NodeOffline, Transport
from repro.store.crashpoints import CrashPointPlan
from repro.store.journal import DurableStore
from repro.store.recovery import RecoveryError, RecoveryManager

POLICY = RetryPolicy(max_attempts=6, base_delay=0.01, multiplier=2.0, max_delay=0.1)

_LEN = struct.Struct(">I")
_CHECKSUM = 32


def make_net(tmp_path, **kwargs) -> WhoPayNetwork:
    return WhoPayNetwork(
        params=PARAMS_TEST_512,
        store_dir=tmp_path,
        retry_policy=POLICY,
        **kwargs,
    )


def monetary(ledger: dict) -> dict:
    """The ledger minus telemetry: a recovered broker restarts its
    operation counters at zero, but money and coin state must be exact."""
    return {k: v for k, v in ledger.items() if k != "operation_counts"}


def rewrite_journal(path, mutate) -> None:
    """Re-frame every journal record after passing it through ``mutate``."""
    data = path.read_bytes()
    frames = []
    offset = 0
    while offset < len(data):
        (length,) = _LEN.unpack_from(data, offset)
        payload = data[offset + _LEN.size : offset + _LEN.size + length]
        record = mutate(decode(payload))
        body = encode(record)
        frames.append(_LEN.pack(len(body)) + body + hashlib.sha256(body).digest())
        offset += _LEN.size + length + _CHECKSUM
    path.write_bytes(b"".join(frames))


class TestBrokerRecovery:
    def test_restart_reproduces_the_ledger_from_the_journal(self, tmp_path):
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.deposit(state.coin_y, payout_to="bob")
        ledger = monetary(net.broker.export_ledger())

        result = net.restart_broker()
        assert result.records_replayed > 0
        assert not result.snapshot_loaded
        assert result.audit is not None and result.audit.ok
        assert monetary(net.broker.export_ledger()) == ledger
        assert net.broker_restarts == 1

    def test_snapshot_bounds_the_replay(self, tmp_path):
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        for _ in range(3):
            alice.purchase()
        net.snapshot_broker()
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        ledger = monetary(net.broker.export_ledger())

        result = net.restart_broker()
        assert result.snapshot_loaded
        assert 0 < result.records_replayed <= 2
        assert monetary(net.broker.export_ledger()) == ledger

    def test_recovered_broker_serves_new_traffic(self, tmp_path):
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        net.restart_broker()
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        assert bob.deposit(state.coin_y, payout_to="bob") == 1
        assert net.broker.verify_conservation(10)

    def test_empty_store_is_refused(self, tmp_path):
        store = DurableStore(tmp_path / "nothing")
        net = make_net(tmp_path / "real")
        with pytest.raises(RecoveryError, match="no snapshot or init record"):
            RecoveryManager(store).recover_broker(
                Transport(), judge=net.judge, params=net.params, clock=net.clock
            )

    def test_wrong_address_is_refused(self, tmp_path):
        net = make_net(tmp_path)
        net.add_peer("alice", PeerConfig(balance=5))
        with pytest.raises(RecoveryError, match="belongs to"):
            RecoveryManager(net.broker.store).recover_broker(
                Transport(),
                judge=net.judge,
                params=net.params,
                clock=net.clock,
                address="imposter",
            )

    def test_tampered_journal_record_is_refused(self, tmp_path):
        # Inflate a deposit's credited value on disk: the frame checksum is
        # rewritten to match, so only the audit can catch it — and must.
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.deposit(state.coin_y, payout_to="bob")

        def inflate(record):
            for mut in record.get("muts", ()):
                if mut.get("type") == "deposit":
                    mut["credited"] += 5
            return record

        rewrite_journal(net.broker.store.journal_path, inflate)
        with pytest.raises(RecoveryError, match="audit failed"):
            RecoveryManager(net.broker.store).recover_broker(
                Transport(), judge=net.judge, params=net.params, clock=net.clock
            )


class TestEncryptedSnapshots:
    KEY = hashlib.sha256(b"at-rest key").digest()

    def _prepare(self, tmp_path):
        from repro.core.persistence import save_broker_snapshot

        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        alice.purchase()
        save_broker_snapshot(net.broker, net.broker.store, encryption_key=self.KEY)
        return net

    def test_snapshot_bytes_are_sealed(self, tmp_path):
        net = self._prepare(tmp_path)
        state, _records, _torn = net.broker.store.load()
        assert state.startswith(b"enc:")

    def test_recovery_needs_the_key(self, tmp_path):
        net = self._prepare(tmp_path)
        with pytest.raises(RecoveryError, match="encryption key"):
            RecoveryManager(net.broker.store).recover_broker(
                Transport(), judge=net.judge, params=net.params, clock=net.clock
            )

    def test_recovery_with_the_key_restores_the_ledger(self, tmp_path):
        net = self._prepare(tmp_path)
        ledger = monetary(net.broker.export_ledger())
        result = RecoveryManager(net.broker.store).recover_broker(
            Transport(),
            judge=net.judge,
            params=net.params,
            clock=net.clock,
            encryption_key=self.KEY,
        )
        assert result.snapshot_loaded
        assert monetary(result.entity.export_ledger()) == ledger


class TestReplayCacheAcrossRestart:
    def test_supervised_crash_after_commit_dedupes_the_retry(self, tmp_path):
        # The regression this PR fixes: reply lost after the deposit became
        # durable.  The retry (same idempotency key) must get the original
        # reply back, not DoubleSpendDetected.
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)

        net.supervise_broker()
        plan = CrashPointPlan(fire_at=1, seed=3)  # next append's post_sync
        net.arm_crash_points(plan)
        assert bob.deposit(state.coin_y, payout_to="bob") == 1

        assert plan.fired is not None
        assert plan.fired.site == "journal.append.post_sync"
        assert net.broker_restarts == 1
        assert net.transport.crashes_simulated == 1
        assert net.broker.replays_served > 0  # the retry was served from cache
        assert net.broker.accounts["bob"].balance == 1  # credited exactly once
        assert state.coin_y in net.broker.deposited
        assert net.broker.verify_conservation(10)

    def test_unsupervised_crash_before_commit_rolls_back(self, tmp_path):
        # Dying before the record is durable loses the deposit entirely;
        # after a manual restart the operation can simply be re-run.
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)

        net.arm_crash_points(CrashPointPlan(fire_at=0, seed=5))  # pre_sync
        # The crash kills the broker node; with no supervisor, the retry
        # surfaces churn (NodeOffline) to the caller.
        with pytest.raises(NodeOffline):
            bob.deposit(state.coin_y, payout_to="bob")

        result = net.restart_broker()
        assert result.audit is not None and result.audit.ok
        assert state.coin_y not in net.broker.deposited  # rolled back
        assert bob.deposit(state.coin_y, payout_to="bob") == 1
        assert net.broker.accounts["bob"].balance == 1
        assert net.broker.verify_conservation(10)


class TestPeerRecovery:
    def test_holder_wallet_survives_a_restart(self, tmp_path):
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob", PeerConfig(durable=True))
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        assert state.coin_y in net.peers["bob"].wallet

        result = net.restart_peer("bob")
        assert result.records_replayed > 0
        bob = net.peers["bob"]
        assert state.coin_y in bob.wallet
        assert bob.deposit(state.coin_y, payout_to="bob") == 1

    def test_owner_state_survives_and_serves_transfers(self, tmp_path):
        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10, durable=True))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)

        net.restart_peer("alice")
        alice = net.peers["alice"]
        assert state.coin_y in alice.owned
        # The recovered owner serves an online transfer of its coin.
        bob.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet

    def test_peer_snapshot_bounds_the_replay(self, tmp_path):
        from repro.core.persistence import save_peer_snapshot

        net = make_net(tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=10, durable=True))
        alice.purchase()
        save_peer_snapshot(net.peers["alice"], net.peers["alice"].store)
        result = net.restart_peer("alice")
        assert result.snapshot_loaded
        assert result.records_replayed == 0
        assert len(net.peers["alice"].owned) + len(net.peers["alice"].wallet) >= 1

    def test_non_durable_peer_cannot_restart(self, tmp_path):
        net = make_net(tmp_path)
        net.add_peer("alice", PeerConfig(balance=5))
        with pytest.raises(ValueError, match="not durable"):
            net.restart_peer("alice")
