"""DurableStore mechanics: framing, snapshots, compaction, torn-write fuzz.

The torn-write fuzz is the heart of this file: a journal is cut at *every*
byte offset inside its final frame and must always load the exact prefix
of complete records, report the tear, and accept new appends after
:meth:`truncate_torn_tail`.  Bit rot (a complete frame whose checksum
mismatches) must never be confused with a tear — it is typed
:class:`JournalCorrupt` and refuses to load.
"""

from __future__ import annotations

import hashlib
import struct

import pytest

from repro.store.journal import DurableStore, JournalCorrupt

_LEN = struct.Struct(">I")
_CHECKSUM = 32


def logical(records):
    """Journal records minus the store-assigned LSN column.

    The canonical codec round-trips lists as tuples; normalize back so
    records compare equal to what was appended.
    """
    return [
        {k: (list(v) if isinstance(v, tuple) else v) for k, v in r.items() if k != "lsn"}
        for r in records
    ]


def sample_record(i: int) -> dict:
    return {"kind": "op", "idem": f"key-{i}", "muts": [{"type": "noop", "i": i}]}


def frame_spans(path):
    """(start, end, payload) for every frame in a journal file."""
    data = path.read_bytes()
    spans = []
    offset = 0
    while offset < len(data):
        (length,) = _LEN.unpack_from(data, offset)
        end = offset + _LEN.size + length + _CHECKSUM
        spans.append((offset, end, data[offset + _LEN.size : offset + _LEN.size + length]))
        offset = end
    return spans


class TestRoundTrip:
    def test_fresh_then_not(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        assert store.fresh
        store.append(sample_record(0))
        assert not store.fresh

    def test_records_come_back_in_order_with_monotonic_lsns(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        lsns = [store.append(sample_record(i)) for i in range(5)]
        assert lsns == [1, 2, 3, 4, 5]
        state, records, torn = store.load()
        assert state is None
        assert not torn
        assert [r["lsn"] for r in records] == lsns
        assert logical(records) == [sample_record(i) for i in range(5)]

    def test_reopen_continues_the_lsn_sequence(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        for i in range(3):
            store.append(sample_record(i))
        reopened = DurableStore(tmp_path / "s")
        assert not reopened.fresh
        assert reopened.append(sample_record(3)) == 4
        _state, records, _torn = reopened.load()
        assert [r["lsn"] for r in records] == [1, 2, 3, 4]


class TestSnapshotAndCompaction:
    def test_snapshot_compacts_and_covers(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        for i in range(3):
            store.append(sample_record(i))
        covers = store.snapshot(b"state-1")
        assert covers == 3
        state, records, torn = store.load()
        assert (state, records, torn) == (b"state-1", [], False)
        assert store.journal_path.read_bytes() == b""

    def test_appends_after_snapshot_replay_on_top(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        for i in range(3):
            store.append(sample_record(i))
        store.snapshot(b"state-1")
        store.append(sample_record(3))
        store.append(sample_record(4))
        state, records, _torn = store.load()
        assert state == b"state-1"
        assert [r["lsn"] for r in records] == [4, 5]
        reopened = DurableStore(tmp_path / "s")
        assert reopened.next_lsn == 6

    def test_second_snapshot_replaces_the_first(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        store.append(sample_record(0))
        store.snapshot(b"state-1")
        store.append(sample_record(1))
        store.snapshot(b"state-2")
        state, records, _torn = store.load()
        assert state == b"state-2"
        assert records == []

    def test_empty_snapshot_of_a_fresh_store(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        assert store.snapshot(b"empty") == 0
        assert not store.fresh
        state, records, _torn = store.load()
        assert (state, records) == (b"empty", [])


class TestTornWriteFuzz:
    N_RECORDS = 4

    def _build(self, root):
        store = DurableStore(root)
        for i in range(self.N_RECORDS):
            store.append(sample_record(i))
        return store

    def test_every_truncation_of_the_final_record_loads_the_prefix(self, tmp_path):
        master = self._build(tmp_path / "master")
        data = master.journal_path.read_bytes()
        last_start = frame_spans(master.journal_path)[-1][0]
        for cut in range(last_start, len(data)):
            root = tmp_path / f"cut{cut}"
            root.mkdir()
            (root / DurableStore.JOURNAL_NAME).write_bytes(data[:cut])
            store = DurableStore(root)
            _state, records, torn = store.load()
            assert len(records) == self.N_RECORDS - 1, f"cut at byte {cut}"
            assert torn == (cut > last_start), f"cut at byte {cut}"
            # Repair, then the journal must accept appends again.
            assert store.truncate_torn_tail() == cut - last_start
            assert store.append(sample_record(99)) == self.N_RECORDS
            _state, records, torn = store.load()
            assert not torn
            assert logical(records)[-1] == sample_record(99)

    def test_flipping_any_checksum_byte_is_corruption_not_a_tear(self, tmp_path):
        master = self._build(tmp_path / "master")
        data = master.journal_path.read_bytes()
        start, end, _payload = frame_spans(master.journal_path)[-1]
        for pos in range(end - _CHECKSUM, end):
            mutated = bytearray(data)
            mutated[pos] ^= 0xFF
            root = tmp_path / f"flip{pos}"
            root.mkdir()
            (root / DurableStore.JOURNAL_NAME).write_bytes(bytes(mutated))
            with pytest.raises(JournalCorrupt):
                DurableStore(root)

    def test_flipping_a_payload_byte_is_corruption_too(self, tmp_path):
        master = self._build(tmp_path / "master")
        data = bytearray(master.journal_path.read_bytes())
        start, _end, payload = frame_spans(master.journal_path)[0]
        data[start + _LEN.size + len(payload) // 2] ^= 0x01
        root = tmp_path / "rot"
        root.mkdir()
        (root / DurableStore.JOURNAL_NAME).write_bytes(bytes(data))
        with pytest.raises(JournalCorrupt):
            DurableStore(root)

    def test_garbage_length_prefix_reads_as_a_tear(self, tmp_path):
        # A fragment of a lost frame can masquerade as an absurd length;
        # the reader must stop there instead of chasing gigabytes.
        master = self._build(tmp_path / "master")
        data = master.journal_path.read_bytes()
        root = tmp_path / "garbage"
        root.mkdir()
        (root / DurableStore.JOURNAL_NAME).write_bytes(data + b"\xff\xff\xff\xff\x00")
        store = DurableStore(root)
        _state, records, torn = store.load()
        assert len(records) == self.N_RECORDS
        assert torn
        assert store.truncate_torn_tail() == 5

    def test_truncate_is_a_noop_on_a_clean_journal(self, tmp_path):
        store = self._build(tmp_path / "s")
        assert store.truncate_torn_tail() == 0
        _state, records, _torn = store.load()
        assert len(records) == self.N_RECORDS


class TestSnapshotIntegrity:
    def test_bad_magic_is_corrupt(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        store.snapshot(b"state")
        blob = store.snapshot_path.read_bytes()
        store.snapshot_path.write_bytes(b"XX" + blob[2:])
        with pytest.raises(JournalCorrupt):
            DurableStore(tmp_path / "s")

    def test_flipped_snapshot_byte_is_corrupt(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        store.snapshot(b"state")
        blob = bytearray(store.snapshot_path.read_bytes())
        blob[-1] ^= 0x01
        store.snapshot_path.write_bytes(bytes(blob))
        with pytest.raises(JournalCorrupt):
            DurableStore(tmp_path / "s")

    def test_truncated_snapshot_is_corrupt(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        store.snapshot(b"state")
        blob = store.snapshot_path.read_bytes()
        store.snapshot_path.write_bytes(blob[: len(blob) - 3])
        with pytest.raises(JournalCorrupt):
            DurableStore(tmp_path / "s")
