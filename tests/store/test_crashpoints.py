"""Crash-point plans: enumeration, one-shot firing, and the invariant that
*every* enumerated death leaves the store recoverable to a consistent state.
"""

from __future__ import annotations

import pytest

from repro.store.crashpoints import CrashPointPlan, SimulatedCrash
from repro.store.journal import DurableStore


def sample_record(i: int) -> dict:
    return {"kind": "op", "idem": f"key-{i}", "muts": [{"type": "noop", "i": i}]}


def workload(store: DurableStore) -> None:
    """Three appends, a snapshot, two more appends — 15 fsync boundaries."""
    for i in range(3):
        store.append(sample_record(i))
    store.snapshot(b"S")
    for i in range(3, 5):
        store.append(sample_record(i))


class TestPlanMechanics:
    def test_counting_mode_enumerates_every_boundary(self, tmp_path):
        plan = CrashPointPlan(fire_at=None)
        workload(DurableStore(tmp_path / "s", crash_points=plan))
        assert plan.fired is None
        assert plan.crossings == len(plan.sites) == 15
        assert plan.sites[:2] == ["journal.append.pre_sync", "journal.append.post_sync"]
        assert plan.sites[6:11] == [
            "snapshot.pre_sync",
            "snapshot.post_sync",
            "snapshot.post_rename",
            "journal.compact.pre_sync",
            "journal.compact.post_sync",
        ]

    def test_armed_plan_fires_exactly_once(self):
        plan = CrashPointPlan(fire_at=1)
        plan.crossing("a")
        with pytest.raises(SimulatedCrash) as excinfo:
            plan.crossing("b")
        assert excinfo.value.site == "b"
        assert excinfo.value.index == 1
        plan.crossing("c")  # the restarted process crosses freely
        assert plan.fired is excinfo.value

    def test_negative_fire_at_is_rejected(self):
        with pytest.raises(ValueError):
            CrashPointPlan(fire_at=-1)

    def test_torn_length_is_seeded_and_bounded(self):
        a = CrashPointPlan(seed=42)
        b = CrashPointPlan(seed=42)
        torn_a = [a.torn_length(100) for _ in range(20)]
        torn_b = [b.torn_length(100) for _ in range(20)]
        assert torn_a == torn_b
        assert all(0 <= t < 100 for t in torn_a)
        assert a.torn_length(0) == 0


class TestEveryDeathIsRecoverable:
    def _recover(self, root):
        store = DurableStore(root)
        store.truncate_torn_tail()
        state, records, torn = store.load()
        assert not torn
        return store, state, records

    def test_sweep_every_crash_point_of_the_workload(self, tmp_path):
        census = CrashPointPlan(fire_at=None)
        workload(DurableStore(tmp_path / "census", crash_points=census))
        for index in range(census.crossings):
            root = tmp_path / f"fire{index}"
            plan = CrashPointPlan(fire_at=index, seed=index)
            store = DurableStore(root, crash_points=plan)
            with pytest.raises(SimulatedCrash) as excinfo:
                workload(store)
            assert excinfo.value.site == census.sites[index]
            _store, state, records = self._recover(root)
            # A consistent prefix survived: the snapshot is all-or-nothing,
            # LSNs are gapless, and logical content matches the workload.
            assert state in (None, b"S")
            lsns = [r["lsn"] for r in records]
            first = 1 if state is None else 4
            assert lsns == list(range(first, first + len(records)))
            for record in records:
                assert record["muts"][0]["i"] == record["lsn"] - 1

    def test_pre_sync_append_death_loses_the_record(self, tmp_path):
        root = tmp_path / "s"
        store = DurableStore(root, crash_points=CrashPointPlan(fire_at=0, seed=9))
        with pytest.raises(SimulatedCrash):
            store.append(sample_record(0))
        recovered, state, records = self._recover(root)
        assert (state, records) == (None, [])
        assert recovered.append(sample_record(0)) == 1  # LSN reused safely

    def test_post_sync_append_death_keeps_the_record(self, tmp_path):
        root = tmp_path / "s"
        store = DurableStore(root, crash_points=CrashPointPlan(fire_at=1))
        with pytest.raises(SimulatedCrash):
            store.append(sample_record(0))
        _recovered, _state, records = self._recover(root)
        assert [r["lsn"] for r in records] == [1]

    def test_post_rename_snapshot_death_skips_covered_records(self, tmp_path):
        # Snapshot installed but the journal not yet compacted: the covered
        # records are still on disk and must be skipped, not replayed twice.
        root = tmp_path / "s"
        store = DurableStore(root)
        store.append(sample_record(0))
        store.crash_points = CrashPointPlan(fire_at=2)  # snapshot.post_rename
        with pytest.raises(SimulatedCrash):
            store.snapshot(b"S")
        assert store.journal_path.read_bytes() != b""
        _recovered, state, records = self._recover(root)
        assert (state, records) == (b"S", [])

    def test_pre_sync_snapshot_death_keeps_the_old_state(self, tmp_path):
        root = tmp_path / "s"
        store = DurableStore(root)
        store.append(sample_record(0))
        store.snapshot(b"old")
        store.append(sample_record(1))
        store.crash_points = CrashPointPlan(fire_at=0)  # snapshot.pre_sync
        with pytest.raises(SimulatedCrash):
            store.snapshot(b"new")
        _recovered, state, records = self._recover(root)
        assert state == b"old"
        assert [r["lsn"] for r in records] == [2]
