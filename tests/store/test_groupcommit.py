"""Group commit: one fsync per batch, with per-record crash semantics intact.

Extends the PR-4 crash-point sweep to the group-commit boundaries
(``journal.group.pre_sync`` / ``journal.group.post_sync``): a crash
between staging and the covering fsync must lose the whole batch
atomically — and must never have released a reply for an unfsynced
mutation — while a crash after the fsync keeps the batch and serves
retries from the recovered replay cache (exactly-once).
"""

from __future__ import annotations

import pytest

from repro.crypto.params import PARAMS_TEST_512
from repro.pipeline import LoadGenerator, ThroughputEngine
from repro.store.crashpoints import CrashPointPlan, SimulatedCrash
from repro.store.groupcommit import GroupCommitter
from repro.store.journal import DurableStore


def sample_record(i: int) -> dict:
    return {"kind": "op", "idem": f"key-{i}", "muts": [{"type": "noop", "i": i}]}


class TestAppendMany:
    def test_lsns_are_consecutive_and_load_expands_the_group(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        store.append(sample_record(0))
        assert store.append_many([sample_record(1), sample_record(2)]) == [2, 3]
        store.append(sample_record(3))
        _state, records, torn = store.load()
        assert not torn
        assert [r["lsn"] for r in records] == [1, 2, 3, 4]
        assert [r["muts"][0]["i"] for r in records] == [0, 1, 2, 3]

    def test_batch_of_one_degenerates_to_plain_append(self, tmp_path):
        plan = CrashPointPlan(fire_at=None)
        store = DurableStore(tmp_path / "s", crash_points=plan)
        assert store.append_many([sample_record(0)]) == [1]
        assert plan.sites == ["journal.append.pre_sync", "journal.append.post_sync"]

    def test_empty_batch_is_a_noop(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        assert store.append_many([]) == []
        assert store.fresh

    def test_group_frame_has_its_own_crash_sites(self, tmp_path):
        plan = CrashPointPlan(fire_at=None)
        store = DurableStore(tmp_path / "s", crash_points=plan)
        store.append_many([sample_record(0), sample_record(1), sample_record(2)])
        assert plan.sites == ["journal.group.pre_sync", "journal.group.post_sync"]

    def test_a_record_holding_a_group_key_is_not_a_group_frame(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        record = {"kind": "op", "idem": None, "group": ["decoy"], "muts": []}
        store.append(dict(record))
        _state, records, _torn = store.load()
        assert len(records) == 1 and records[0]["group"] == ("decoy",)

    def test_snapshot_compacts_a_fully_covered_group(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        store.append_many([sample_record(0), sample_record(1)])
        store.snapshot(b"S")
        _state, records, _torn = store.load()
        assert records == []
        reopened = DurableStore(tmp_path / "s")
        assert reopened.next_lsn == 3  # LSNs reserved by the group survive

    def test_compact_reframes_a_partially_covered_group(self, tmp_path):
        # Defensive path: no live interleaving produces a group straddling
        # a snapshot (appends are atomic units), but compaction must not
        # silently drop or duplicate members if one ever does.
        store = DurableStore(tmp_path / "s")
        store.append_many([sample_record(0), sample_record(1), sample_record(2)])
        store._compact(covers=2)
        _state, records, _torn = store.load()
        assert [r["lsn"] for r in records] == [3]
        assert records[0]["muts"][0]["i"] == 2


class TestGroupCommitterMechanics:
    def test_flush_runs_callbacks_in_staging_order_with_lsns(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        committer = GroupCommitter(store, max_batch=10)
        released: list[tuple[int, int]] = []
        for i in range(3):
            committer.stage(sample_record(i), on_durable=lambda lsn, i=i: released.append((i, lsn)))
        assert committer.pending == 3 and released == []
        assert committer.flush() == [1, 2, 3]
        assert released == [(0, 1), (1, 2), (2, 3)]
        assert committer.flushes == 1 and committer.pending == 0

    def test_max_batch_triggers_automatic_flush(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        committer = GroupCommitter(store, max_batch=2)
        released: list[int] = []
        committer.stage(sample_record(0), on_durable=released.append)
        assert released == []
        committer.stage(sample_record(1), on_durable=released.append)
        assert released == [1, 2]  # staging the 2nd record flushed the batch
        assert committer.pending == 0

    def test_due_uses_the_injected_timer(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        now = [0.0]
        committer = GroupCommitter(store, max_batch=100, max_delay=0.5, timer=lambda: now[0])
        assert not committer.due()  # nothing staged
        committer.stage(sample_record(0))
        assert not committer.due()
        now[0] = 0.6
        assert committer.due()
        committer.flush()
        assert not committer.due()

    def test_max_delay_without_timer_is_rejected(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        with pytest.raises(ValueError):
            GroupCommitter(store, max_delay=0.5)

    def test_crashed_flush_never_runs_callbacks_or_double_appends(self, tmp_path):
        root = tmp_path / "s"
        store = DurableStore(root, crash_points=CrashPointPlan(fire_at=0, seed=7))
        committer = GroupCommitter(store, max_batch=10)
        released: list[int] = []
        committer.stage(sample_record(0), on_durable=released.append)
        committer.stage(sample_record(1), on_durable=released.append)
        with pytest.raises(SimulatedCrash) as excinfo:
            committer.flush()
        assert excinfo.value.site == "journal.group.pre_sync"
        # No reply was released for the unfsynced batch, and the batch is
        # gone — a later flush cannot resurrect (double-append) it.
        assert released == [] and committer.pending == 0
        assert committer.flush() == []
        recovered = DurableStore(root)
        recovered.truncate_torn_tail()
        _state, records, torn = recovered.load()
        assert (records, torn) == ([], False)


class TestGroupCrashSweep:
    """Every group-commit boundary death leaves an all-or-nothing batch."""

    def _recover(self, root):
        store = DurableStore(root)
        store.truncate_torn_tail()
        state, records, torn = store.load()
        assert not torn
        return records

    def test_pre_sync_death_loses_the_whole_batch_atomically(self, tmp_path):
        for seed in range(5):  # several torn-prefix lengths of the group frame
            root = tmp_path / f"s{seed}"
            store = DurableStore(root, crash_points=CrashPointPlan(fire_at=0, seed=seed))
            with pytest.raises(SimulatedCrash):
                store.append_many([sample_record(i) for i in range(4)])
            records = self._recover(root)
            assert records == []  # never a surviving prefix of the batch

    def test_post_sync_death_keeps_the_whole_batch(self, tmp_path):
        root = tmp_path / "s"
        store = DurableStore(root, crash_points=CrashPointPlan(fire_at=1))
        with pytest.raises(SimulatedCrash) as excinfo:
            store.append_many([sample_record(i) for i in range(4)])
        assert excinfo.value.site == "journal.group.post_sync"
        assert [r["lsn"] for r in self._recover(root)] == [1, 2, 3, 4]

    def test_lsns_are_reused_safely_after_a_lost_batch(self, tmp_path):
        root = tmp_path / "s"
        store = DurableStore(root, crash_points=CrashPointPlan(fire_at=0, seed=3))
        with pytest.raises(SimulatedCrash):
            store.append_many([sample_record(0), sample_record(1)])
        recovered = DurableStore(root)
        recovered.truncate_torn_tail()
        assert recovered.append_many([sample_record(7), sample_record(8)]) == [1, 2]


class TestBrokerExactlyOnceUnderGroupCommit:
    """End-to-end: engine + broker + committer across a mid-batch crash."""

    def _generator(self, tmp_path):
        return LoadGenerator(
            peers=3, coins_per_peer=1, params=PARAMS_TEST_512,
            store_dir=tmp_path / "net", seed=13,
        )

    def _wire(self, generator, ops):
        return [(r.kind, r.src, r.data, r.idem) for r in generator.make_round(ops)]

    def test_crash_before_fsync_rolls_back_and_retry_reexecutes(self, tmp_path):
        generator = self._generator(tmp_path)
        network = generator.network
        committer = GroupCommitter(network.broker.store, max_batch=64)
        engine = ThroughputEngine(network.broker, committer=committer, verify_batch=64)
        wire = self._wire(generator, 5)
        ledger_before = network.broker.export_ledger()

        network.arm_crash_points(CrashPointPlan(fire_at=0, seed=3))
        with pytest.raises(SimulatedCrash) as excinfo:
            engine.run(wire)
        assert excinfo.value.site == "journal.group.pre_sync"

        result = network.restart_broker()
        assert result.audit is not None and result.audit.ok
        broker = network.broker
        # The whole round is gone: no binding, mint, or credit survived.
        monetary = lambda ledger: {k: v for k, v in ledger.items() if k != "operation_counts"}
        assert monetary(broker.export_ledger()) == monetary(ledger_before)
        assert broker.downtime_bindings == {}

        # The clients never saw a reply, so they retry the same envelopes.
        retry_engine = ThroughputEngine(
            broker, committer=GroupCommitter(broker.store, max_batch=64), verify_batch=64
        )
        records, stats = retry_engine.run(wire)
        assert stats.accepted == stats.processed == 5
        assert all(r.ok and r.released for r in records)
        generator.absorb(records)  # bindings decode against the new broker state

    def test_crash_after_fsync_serves_retries_from_the_replay_cache(self, tmp_path):
        generator = self._generator(tmp_path)
        network = generator.network
        committer = GroupCommitter(network.broker.store, max_batch=64)
        engine = ThroughputEngine(network.broker, committer=committer, verify_batch=64)
        wire = self._wire(generator, 5)

        network.arm_crash_points(CrashPointPlan(fire_at=1))
        with pytest.raises(SimulatedCrash) as excinfo:
            engine.run(wire)
        assert excinfo.value.site == "journal.group.post_sync"

        result = network.restart_broker()
        assert result.audit is not None and result.audit.ok
        broker = network.broker
        ledger_after_crash = broker.export_ledger()

        # The batch became durable before the crash: retrying the identical
        # requests must not re-execute anything (exactly-once).
        retry_engine = ThroughputEngine(
            broker, committer=GroupCommitter(broker.store, max_batch=64), verify_batch=64
        )
        records, stats = retry_engine.run(wire)
        assert stats.accepted == stats.processed == 5
        assert all(r.ok and r.released for r in records)
        assert broker.replays_served >= 5
        assert broker.export_ledger() == ledger_after_crash
        generator.absorb(records)
