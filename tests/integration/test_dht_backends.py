"""Detection runs identically over either DHT backend (Chord / Kademlia)."""

import pytest

from repro.core.coin import CoinBinding
from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture(params=["chord", "kademlia"])
def net(request):
    return WhoPayNetwork(
        params=PARAMS_TEST_512,
        enable_detection=True,
        dht_size=5,
        dht_backend=request.param,
    )


class TestBackendParity:
    def test_full_lifecycle_with_detection(self, net):
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase(value=2)
        alice.issue("bob", state.coin_y)
        assert net.detection.fetch_binding("t", state.coin_y) is not None
        bob.transfer("carol", state.coin_y)
        alice.depart()
        carol.transfer_via_broker("bob", state.coin_y)
        alice.rejoin()
        assert bob.deposit(state.coin_y) == 2
        assert net.detection.publishes >= 3

    def test_real_time_alarm_on_both(self, net):
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        dave = net.add_peer("dave")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        evil = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=dave.identity.public.y,
            seq=alice.owned[state.coin_y].binding.seq + 1,
            exp_date=net.clock.now() + 1000,
        )
        net.detection.publish_owner(alice, alice.owned[state.coin_y], evil)
        assert len(bob.alarms) == 1

    def test_rollback_rejected_on_both(self, net):
        from repro.dht.binding_store import WriteRejected

        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.renew(state.coin_y)
        stale = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=1,
            seq=1,
            exp_date=net.clock.now() + 1000,
        )
        with pytest.raises(WriteRejected):
            net.detection.publish_owner(alice, alice.owned[state.coin_y], stale)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        WhoPayNetwork(params=PARAMS_TEST_512, enable_detection=True, dht_backend="pastry")
