"""Message-loss injection: lost exchanges must leave no partial state."""

import pytest

from repro.core.errors import ProtocolError
from repro.net.transport import MessageDropped, NetworkError


class TestLossMechanics:
    def test_loss_rate_validation(self, network):
        with pytest.raises(ValueError):
            network.transport.set_loss(1.0)
        with pytest.raises(ValueError):
            network.transport.set_loss(-0.1)

    def test_full_reliability_by_default(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        assert net.transport.messages_dropped == 0

    def test_deterministic_drops(self):
        from repro.net.node import Node
        from repro.net.transport import Transport

        outcomes = []
        for _ in range(2):
            transport = Transport()
            a = Node(transport, "a")
            b = Node(transport, "b")
            b.on("ping", lambda src, p: p)
            transport.set_loss(0.5, seed=42)
            run = []
            for i in range(20):
                try:
                    a.request("b", "ping", i)
                    run.append(True)
                except MessageDropped:
                    run.append(False)
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]
        assert False in outcomes[0] and True in outcomes[0]


class TestProtocolUnderLoss:
    def test_lost_purchase_leaves_no_state(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        net.transport.set_loss(0.999, seed=7)  # drop (almost) everything
        with pytest.raises((MessageDropped, NetworkError)):
            alice.purchase()
        net.transport.set_loss(0.0)
        assert net.broker.balance("alice") == 25  # nothing debited
        assert not alice.owned
        assert not net.broker.valid_coins

    def test_lost_transfer_keeps_holder_state(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        net.transport.set_loss(0.999, seed=9)
        with pytest.raises((MessageDropped, NetworkError, ProtocolError)):
            bob.transfer("carol", state.coin_y)
        net.transport.set_loss(0.0)
        # Bob still holds; the retry succeeds cleanly.
        assert state.coin_y in bob.wallet
        bob.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet

    def test_retries_eventually_succeed_under_moderate_loss(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        states = [alice.purchase() for _ in range(8)]
        net.transport.set_loss(0.4, seed=11)
        delivered = 0
        for state in states:
            for _ in range(40):
                try:
                    alice.issue("bob", state.coin_y)
                    delivered += 1
                    break
                except (MessageDropped, NetworkError, ProtocolError):
                    continue
        net.transport.set_loss(0.0)
        assert delivered == len(states)  # retries always get through
        assert len(bob.wallet) == len(states)
        assert net.transport.messages_dropped > 0  # and loss really occurred

    def test_owner_rollback_when_completion_lost(self, funded_trio):
        # The transfer handler's completion to the payee is dropped: the
        # owner must roll the binding back so the payer can retry.
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        # Drop only the completion leg: sabotage via a carol-side exception
        # is already tested; here we use probabilistic loss until we observe
        # a failed attempt followed by a successful retry.
        failures = successes = 0
        net.transport.set_loss(0.3, seed=13)
        holder, payee = bob, carol
        for _ in range(40):
            coin_y = state.coin_y
            try:
                holder.transfer(payee.address, coin_y)
                successes += 1
                holder, payee = payee, holder
            except (MessageDropped, NetworkError, ProtocolError):
                failures += 1
        net.transport.set_loss(0.0)
        assert successes > 0 and failures > 0
        # Wherever the coin ended up, exactly one wallet holds it and the
        # owner's binding matches that holder.
        holders = [p for p in (bob, carol) if state.coin_y in p.wallet]
        assert len(holders) == 1
        owner_binding = alice.owned[state.coin_y].binding
        assert owner_binding.holder_y == holders[0].wallet[state.coin_y].binding.holder_y
