"""A deterministic many-peer swarm scenario over the real protocol stack.

Twenty peers, hundreds of seeded-random payments with churn, renewals, and
deposits — verifying the global invariants at the end.  This is the
full-crypto counterpart of the operation-level simulator: slower, smaller,
but every signature is real.
"""

import random

import pytest

from repro.core.errors import ProtocolError
from repro.net.transport import NetworkError, NodeOffline
from repro.core.network import PeerConfig

N_PEERS = 20
ROUNDS = 12
PAYMENTS_PER_ROUND = 15
POLICY = ("transfer", "downtime_transfer", "issue", "purchase_issue")


@pytest.fixture(scope="module")
def swarm():
    from repro.core.network import WhoPayNetwork
    from repro.crypto.params import PARAMS_TEST_512

    rng = random.Random(1386)  # the tech-report number
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    peers = [net.add_peer(f"peer-{i:02d}", PeerConfig(balance=8)) for i in range(N_PEERS)]
    total_wealth = 8 * N_PEERS
    payments_made = 0
    payments_failed = 0

    for round_number in range(ROUNDS):
        # Churn ~20% of peers each round.
        for peer in peers:
            if rng.random() < 0.2:
                if peer.online:
                    peer.depart()
                else:
                    peer.rejoin()
        online = [p for p in peers if p.online]
        if len(online) < 2:
            online[0].rejoin() if online else peers[0].rejoin()
            online = [p for p in peers if p.online]
        for _ in range(PAYMENTS_PER_ROUND):
            payer, payee = rng.sample(online, 2)
            try:
                payer.pay(payee.address, POLICY)
                payments_made += 1
            except (ProtocolError, NodeOffline, NetworkError):
                payments_failed += 1
        # Periodic renewals and the occasional deposit.
        net.advance(net.renewal_period * 0.2)
        for peer in online:
            peer.renew_due_coins()
        if round_number % 4 == 3:
            depositor = rng.choice(online)
            # Deposit a live coin if any; expired ones are dead value (the
            # holder slept through the renewal window — the paper's rule).
            live = [
                coin_y
                for coin_y, held in depositor.wallet.items()
                if not held.is_expired(net.clock.now())
            ]
            if live:
                depositor.deposit(live[0], payout_to=depositor.address)

    for peer in peers:
        if not peer.online:
            peer.rejoin()
    return net, peers, total_wealth, payments_made, payments_failed


class TestSwarmOutcome:
    def test_most_payments_succeeded(self, swarm):
        _net, _peers, _wealth, made, failed = swarm
        assert made > 0.8 * (made + failed), (made, failed)

    def test_value_conservation(self, swarm):
        net, _peers, wealth, _made, _failed = swarm
        assert net.broker.verify_conservation(wealth)

    def test_no_coin_in_two_wallets(self, swarm):
        _net, peers, _wealth, _made, _failed = swarm
        seen = set()
        for peer in peers:
            for coin_y in peer.wallet:
                assert coin_y not in seen
                seen.add(coin_y)

    def test_no_fraud_occurred(self, swarm):
        net, _peers, _wealth, _made, _failed = swarm
        assert net.broker.fraud_events == []

    def test_every_wallet_entry_is_consistent(self, swarm):
        net, peers, _wealth, _made, _failed = swarm
        for peer in peers:
            for held in peer.wallet.values():
                assert held.binding.holder_y == held.holder_keypair.public.y
                assert held.coin.verify(net.broker.public_key)
                assert held.binding.verify(
                    held.coin.coin_public_key(net.params), net.broker.public_key
                )

    def test_owner_states_match_circulation(self, swarm):
        # Every held coin's owner-side state exists and its binding sequence
        # is at least the holder's (owners may have moved ahead via broker
        # sync after downtime operations the holder hasn't refreshed past).
        net, peers, _wealth, _made, _failed = swarm
        owners = {addr: p for addr, p in net.peers.items()}
        for peer in peers:
            for held in peer.wallet.values():
                owner = owners[held.coin.owner_address]
                state = owner.owned[held.coin_y]
                assert state.issued
                assert state.binding.seq >= held.binding.seq or state.dirty

    def test_broker_load_was_minority(self, swarm):
        net, peers, _wealth, made, _failed = swarm
        broker_ops = net.broker.counts.total()
        peer_payments = sum(
            p.counts.transfers_sent + p.counts.issues for p in peers
        )
        # Most payment activity never touched the broker.
        assert peer_payments > broker_ops
