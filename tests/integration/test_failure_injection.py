"""Failure-injection tests: crashes mid-protocol must not corrupt state."""

import pytest

from repro.core.errors import ProtocolError
from repro.net.transport import NodeOffline
from repro.core.network import PeerConfig


class TestBrokerOutage:
    def test_downtime_transfer_fails_cleanly_and_retries(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        net.broker.go_offline()
        with pytest.raises(NodeOffline):
            bob.transfer_via_broker("carol", state.coin_y)
        # No state corruption: bob still holds the coin, carol got nothing.
        assert state.coin_y in bob.wallet
        assert state.coin_y not in carol.wallet
        net.broker.go_online()
        bob.transfer_via_broker("carol", state.coin_y)
        assert state.coin_y in carol.wallet

    def test_purchase_during_outage(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        net.broker.go_offline()
        with pytest.raises(NodeOffline):
            alice.purchase()
        assert not alice.owned
        assert net.broker.balance("alice") == 25  # nothing debited

    def test_deposit_during_outage_keeps_coin(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        net.broker.go_offline()
        with pytest.raises(NodeOffline):
            bob.deposit(state.coin_y)
        assert state.coin_y in bob.wallet
        net.broker.go_online()
        assert bob.deposit(state.coin_y) == 1


class TestPayeeFailure:
    def test_issue_to_offline_payee_fails_cleanly(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        bob.depart()
        with pytest.raises(NodeOffline):
            alice.issue("bob", state.coin_y)
        # The coin is still unissued and issuable.
        assert not alice.owned[state.coin_y].issued
        bob.rejoin()
        alice.issue("bob", state.coin_y)
        assert state.coin_y in bob.wallet

    def test_failed_issue_with_detection_then_retry(self, detection_network):
        # Regression: a failed issue leaves its binding on the public list;
        # the retry must pick a *higher* sequence or the DHT rejects it.
        net = detection_network
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase()
        bob.depart()
        for _ in range(3):  # several failed attempts stack the floor higher
            with pytest.raises(NodeOffline):
                alice.issue("bob", state.coin_y)
        alice.issue("carol", state.coin_y)  # retry to someone else: must work
        assert state.coin_y in carol.wallet
        published = net.detection.fetch_binding("t", state.coin_y)
        assert published.holder_y == carol.wallet[state.coin_y].holder_keypair.public.y

    def test_transfer_rolls_back_when_payee_rejects(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        # Sabotage carol so she rejects the completion.
        original = carol._handlers["whopay.transfer_complete"]
        carol._handlers["whopay.transfer_complete"] = lambda src, p: {"ok": False, "reason": "no thanks"}
        with pytest.raises(ProtocolError):
            bob.transfer("carol", state.coin_y)
        # Owner rolled back: bob's binding is still the live one.
        carol._handlers["whopay.transfer_complete"] = original
        bob.renew(state.coin_y)  # works only if bob is still the bound holder
        assert state.coin_y in bob.wallet


class TestDhtChurnDuringDetection:
    def test_detection_survives_dht_node_departure(self, detection_network):
        net = detection_network
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        ring = net.detection.store.ring
        # The node owning this coin's binding leaves gracefully.
        owner_node = ring.owner_of(net.detection.store._coin_key_bytes(state.coin_y))
        owner_node.leave()
        ring.stabilize_all(rounds=6)
        ring.rebuild_fingers()
        # The binding survived the handoff and updates keep flowing.
        assert net.detection.fetch_binding("t", state.coin_y) is not None
        bob.transfer("carol", state.coin_y)
        assert net.detection.fetch_binding("t", state.coin_y).holder_y == (
            carol.wallet[state.coin_y].holder_keypair.public.y
        )


class TestI3Failure:
    def test_anonymous_transfer_falls_back_to_broker(self):
        from repro.core.anonymous_owner import AnonymousOwnerPeer
        from repro.core.network import WhoPayNetwork
        from repro.crypto.params import PARAMS_TEST_512
        from repro.indirection.i3 import I3Overlay

        net = WhoPayNetwork(params=PARAMS_TEST_512)
        i3 = I3Overlay(net.transport, size=1)

        def add(address, balance=0):
            member = net.judge.register(address)
            peer = AnonymousOwnerPeer(
                net.transport, address=address, params=net.params, clock=net.clock,
                judge=net.judge, member_key=member, broker_address=net.broker.address,
                broker_key=net.broker.public_key, i3=i3,
            )
            net.broker.open_account(address, peer.identity.public, balance)
            net.peers[address] = peer
            return peer

        alice = add("alice", balance=10)
        bob = add("bob")
        carol = add("carol")
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        # Kill the (only) i3 server: the handle is unreachable even though
        # the owner is online.
        i3.servers[0].go_offline()
        method = bob.pay("carol", ("transfer", "downtime_transfer"))
        assert method == "downtime_transfer"
        assert state.coin_y in carol.wallet
