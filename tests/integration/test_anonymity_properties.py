"""Anonymity property tests (paper Section 4.3).

These tests inspect actual protocol *transcripts* — every payload that
crossed the transport — and assert what each party could and could not
learn, encoding the paper's anonymity analysis:

* transfer: payer and payee anonymous to each other, to the owner, and to
  the broker (application-level: no identity key appears);
* issue: the payer (owner) is exposed, the payee is not (semi-anonymous);
* deposit: the broker does not learn who deposits;
* fairness: the judge, given a transcript signature, recovers the identity.
"""

import pytest

from repro.core import protocol


class TranscriptTap:
    """Records every request payload delivered through a transport."""

    def __init__(self, transport):
        self.records = []
        original = transport.request

        def tapped(src, dst, kind, payload):
            self.records.append((src, dst, kind, payload))
            return original(src, dst, kind, payload)

        transport.request = tapped

    def payloads(self, kind=None):
        return [
            payload
            for _src, _dst, k, payload in self.records
            if kind is None or k == kind
        ]


def identity_bytes(peer) -> bytes:
    from repro.crypto.primitives import int_to_bytes

    return int_to_bytes(peer.identity.public.y)


def flatten(payload) -> bytes:
    from repro.messages.codec import encode

    try:
        return encode(payload)
    except Exception:
        if isinstance(payload, dict):
            return b"|".join(flatten(v) for v in payload.values())
        if hasattr(payload, "encode"):
            return payload.encode()
        return repr(payload).encode()


class TestTransferAnonymity:
    def test_transfer_transcript_contains_no_holder_identities(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        tap = TranscriptTap(net.transport)
        bob.transfer("carol", state.coin_y)
        wire = b"".join(flatten(p) for p in tap.payloads())
        # Neither bob's nor carol's identity key ever crosses the wire
        # during the transfer (addresses are routing artifacts; the paper
        # assumes onion routing at the network layer).
        assert identity_bytes(bob) not in wire
        assert identity_bytes(carol) not in wire
        # The owner's identity does appear (the coin embeds it) — that is
        # the documented leak the Section 5.2 extensions remove.
        assert identity_bytes(alice) in wire

    def test_owner_cannot_map_holders_to_identities(self, funded_trio):
        # The owner's full state after serving transfers contains holder
        # *coin keys* only, which are single-use pseudonyms.
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.transfer("carol", state.coin_y)
        stored = alice.owned[state.coin_y]
        holder_keys = {stored.binding.holder_y}
        identities = {bob.identity.public.y, carol.identity.public.y}
        assert not (holder_keys & identities)


class TestDepositAnonymity:
    def test_broker_does_not_learn_depositor(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        tap = TranscriptTap(net.transport)
        bob.deposit(state.coin_y)
        wire = b"".join(flatten(p) for p in tap.payloads(protocol.DEPOSIT))
        assert identity_bytes(bob) not in wire

    def test_downtime_transfer_hides_payer_from_broker(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        tap = TranscriptTap(net.transport)
        bob.transfer_via_broker("carol", state.coin_y)
        wire = b"".join(flatten(p) for p in tap.payloads(protocol.DOWNTIME_TRANSFER))
        assert identity_bytes(bob) not in wire
        assert identity_bytes(carol) not in wire


class TestIssueSemiAnonymity:
    def test_issue_exposes_owner_but_not_payee(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        tap = TranscriptTap(net.transport)
        alice.issue("bob", state.coin_y)
        wire = b"".join(flatten(p) for p in tap.payloads())
        assert identity_bytes(alice) in wire  # paper: issue is semi-anonymous
        assert identity_bytes(bob) not in wire


class TestFairness:
    def test_judge_recovers_transfer_payer(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        tap = TranscriptTap(net.transport)
        bob.transfer("carol", state.coin_y)
        requests = tap.payloads(protocol.TRANSFER_REQUEST)
        assert requests
        envelope = protocol.decode_dual(requests[0]["envelope"], net.params)
        # Anyone can verify membership…
        gpk = net.judge.group_public_key_at(envelope.roster_version)
        assert envelope.verify(gpk)
        # …but only the judge can identify the payer.
        assert net.judge.open(envelope.group_signature) == "bob"

    def test_judge_recovers_depositor(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        tap = TranscriptTap(net.transport)
        bob.deposit(state.coin_y)
        envelope = protocol.decode_dual(tap.payloads(protocol.DEPOSIT)[0], net.params)
        assert net.judge.open(envelope.group_signature) == "bob"

    def test_opening_is_per_transaction(self, funded_trio):
        # Opening one transaction's signature reveals nothing about another:
        # each envelope carries an independent ciphertext.
        net, alice, bob, carol = funded_trio
        s1, s2 = alice.purchase(), alice.purchase()
        alice.issue("bob", s1.coin_y)
        alice.issue("carol", s2.coin_y)
        tap = TranscriptTap(net.transport)
        bob.transfer("carol", s1.coin_y)
        carol.transfer("bob", s2.coin_y)
        envelopes = [
            protocol.decode_dual(r["envelope"], net.params)
            for r in tap.payloads(protocol.TRANSFER_REQUEST)
        ]
        ciphertexts = {(e.group_signature.ciphertext.c1, e.group_signature.ciphertext.c2) for e in envelopes}
        assert len(ciphertexts) == 2  # independent escrows per transaction
