"""End-to-end lifecycle and churn integration tests."""

import pytest

from repro.core.errors import DoubleSpendDetected
from repro.core.network import PeerConfig


class TestCoinLifecycle:
    def test_purchase_issue_transfers_renewals_deposit(self, network):
        net = network
        peers = [net.add_peer(f"p{i}", PeerConfig(balance=10)) for i in range(6)]
        state = peers[0].purchase(value=3)
        peers[0].issue("p1", state.coin_y)
        # The coin circulates through every peer via owner-served transfers.
        for i in range(1, 5):
            peers[i].transfer(f"p{i + 1}", state.coin_y)
        assert state.coin_y in peers[5].wallet
        net.advance(net.renewal_period * 0.8)
        peers[5].renew_due_coins()
        credited = peers[5].deposit(state.coin_y, payout_to="p5")
        assert credited == 3
        assert net.broker.balance("p5") == 13
        # Owner audit trail keeps every served holder request:
        # 4 transfers + 1 renewal.
        assert len(peers[0].owned[state.coin_y].relinquishments) == 5

    def test_many_coins_many_peers(self, network):
        net = network
        peers = [net.add_peer(f"p{i}", PeerConfig(balance=20)) for i in range(4)]
        coins = [peers[i % 2].purchase() for i in range(8)]
        for i, state in enumerate(coins):
            owner = peers[i % 2]
            owner.issue(f"p{(i % 2) + 2}", state.coin_y)
        total_held = sum(len(p.wallet) for p in peers)
        assert total_held == 8
        # Everyone deposits whatever they hold.
        for peer in peers:
            for coin_y in list(peer.wallet):
                peer.deposit(coin_y)
        assert sum(len(p.wallet) for p in peers) == 0
        assert len(net.broker.deposited) == 8

    def test_value_conservation(self, network):
        # Money in = money out: accounts + circulating coin value is constant.
        net = network
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob", PeerConfig(balance=0))

        def total_wealth():
            accounts = sum(a.balance for a in net.broker.accounts.values())
            circulating = sum(
                coin.value
                for coin_y, coin in net.broker.valid_coins.items()
                if coin_y not in net.broker.deposited
            )
            return accounts + circulating

        start = total_wealth()
        state = alice.purchase(value=4)
        assert total_wealth() == start
        alice.issue("bob", state.coin_y)
        assert total_wealth() == start
        bob.deposit(state.coin_y, payout_to="bob")
        assert total_wealth() == start
        assert net.broker.balance("bob") == 4


class TestChurnScenarios:
    def test_owner_offline_full_cycle(self, network):
        net = network
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        carol.transfer_via_broker("bob", state.coin_y)
        bob.renew(state.coin_y)
        alice.rejoin()
        # After sync, the owner serves transfers again seamlessly.
        bob.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet

    def test_holder_offline_renewal_after_rejoin(self, network):
        net = network
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.depart()
        net.advance(net.renewal_period * 0.85)
        bob.rejoin()
        assert bob.renew_due_coins() == 1
        assert not bob.wallet[state.coin_y].is_expired(net.clock.now())

    def test_interleaved_online_offline_payments(self, network):
        net = network
        peers = [net.add_peer(f"p{i}", PeerConfig(balance=10)) for i in range(5)]
        state = peers[0].purchase()
        peers[0].issue("p1", state.coin_y)
        for i in range(1, 4):
            if i % 2 == 1:
                peers[0].depart()
                peers[i].transfer_via_broker(f"p{i + 1}", state.coin_y)
            else:
                peers[0].rejoin()
                peers[i].transfer(f"p{i + 1}", state.coin_y)
        peers[0].rejoin()
        assert state.coin_y in peers[4].wallet

    def test_double_spend_story_with_adjudication(self, network):
        """The full detect-and-punish narrative in one test."""
        import copy

        from repro.core.audit import adjudicate_double_deposit

        net = network
        alice = net.add_peer("alice", PeerConfig(balance=10))
        mallory = net.add_peer("mallory")
        victim = net.add_peer("victim")
        state = alice.purchase(value=5)
        alice.issue("mallory", state.coin_y)
        stale = copy.deepcopy(mallory.wallet[state.coin_y])
        mallory.transfer("victim", state.coin_y)  # pays the victim…
        mallory.wallet[state.coin_y] = stale
        mallory.deposit(state.coin_y)  # …then cashes the same coin
        with pytest.raises(DoubleSpendDetected):
            victim.deposit(state.coin_y)
        verdict = adjudicate_double_deposit(
            net.broker.fraud_events[-1],
            alice.owned[state.coin_y].relinquishments,
            net.params,
            net.judge,
        )
        assert verdict.role == "holder"
        assert verdict.culprit == "mallory"


class TestDetectionIntegration:
    def test_full_cycle_with_dht(self, detection_network):
        net = detection_network
        peers = [net.add_peer(f"p{i}", PeerConfig(balance=10)) for i in range(4)]
        state = peers[0].purchase()
        peers[0].issue("p1", state.coin_y)
        peers[1].transfer("p2", state.coin_y)
        peers[0].depart()
        peers[2].transfer_via_broker("p3", state.coin_y)
        peers[0].rejoin()
        peers[3].deposit(state.coin_y)
        assert net.detection.publishes >= 3
        assert all(not p.alarms for p in peers)  # honest run: no alarms
