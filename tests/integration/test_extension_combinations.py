"""Integration tests combining the paper's extensions with each other."""

import pytest

from repro.core.anonymous_owner import AnonymousOwnerPeer
from repro.core.coinshop import CoinShop, buy_coin_from_shop
from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512
from repro.indirection.i3 import I3Overlay

P = PARAMS_TEST_512


class TestCoinShopWithDetection:
    def test_shop_sales_publish_bindings(self):
        net = WhoPayNetwork(params=P, enable_detection=True, dht_size=4)
        member = net.judge.register("shop")
        shop = CoinShop(
            net.transport, address="shop", params=net.params, clock=net.clock,
            judge=net.judge, member_key=member, broker_address=net.broker.address,
            broker_key=net.broker.public_key,
        )
        shop.detection = net.detection
        net.broker.open_account("shop", shop.identity.public, 100)
        net.peers["shop"] = shop
        customer = net.add_peer("customer")
        merchant = net.add_peer("merchant")
        coin_y = buy_coin_from_shop(customer, shop)
        assert net.detection.fetch_binding("t", coin_y) is not None
        customer.transfer("merchant", coin_y)
        published = net.detection.fetch_binding("t", coin_y)
        assert published.holder_y == merchant.wallet[coin_y].holder_keypair.public.y


class TestOwnerlessWithDetection:
    @pytest.fixture()
    def rig(self):
        net = WhoPayNetwork(params=P, enable_detection=True, dht_size=4)
        i3 = I3Overlay(net.transport, size=2)

        def add(address, balance=0):
            member = net.judge.register(address)
            peer = AnonymousOwnerPeer(
                net.transport, address=address, params=net.params, clock=net.clock,
                judge=net.judge, member_key=member, broker_address=net.broker.address,
                broker_key=net.broker.public_key, i3=i3,
            )
            peer.detection = net.detection
            net.broker.open_account(address, peer.identity.public, balance)
            net.peers[address] = peer
            return peer

        return net, add("alice", 10), add("bob"), add("carol")

    def test_ownerless_coin_publishes_and_monitors(self, rig):
        net, alice, bob, carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        # The binding is public even though the coin is ownerless — the DHT
        # access control works on the coin key, not the owner identity.
        assert net.detection.fetch_binding("t", state.coin_y) is not None
        bob.transfer("carol", state.coin_y)
        assert net.detection.fetch_binding("t", state.coin_y).holder_y == (
            carol.wallet[state.coin_y].holder_keypair.public.y
        )

    def test_ownerless_fraud_alarm(self, rig):
        from repro.core.coin import CoinBinding

        net, alice, bob, _carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        evil = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=alice.identity.public.y,
            seq=alice.owned[state.coin_y].binding.seq + 1,
            exp_date=net.clock.now() + 1000,
        )
        net.detection.publish_owner(alice, alice.owned[state.coin_y], evil)
        assert len(bob.alarms) == 1
        # Fairness still reachable: the issue was group-signed, so the judge
        # could unmask the anonymous owner if presented with the evidence.


class TestPaywordOverCoinShop:
    def test_micropayments_settle_with_shop_coins(self):
        from repro.baselines.payword import PaywordCreditWindow

        net = WhoPayNetwork(params=P)
        member = net.judge.register("shop")
        shop = CoinShop(
            net.transport, address="shop", params=net.params, clock=net.clock,
            judge=net.judge, member_key=member, broker_address=net.broker.address,
            broker_key=net.broker.public_key,
        )
        net.broker.open_account("shop", shop.identity.public, 100)
        net.peers["shop"] = shop
        listener = net.add_peer("listener")
        station = net.add_peer("station")
        for _ in range(3):
            buy_coin_from_shop(listener, shop)
        window = PaywordCreditWindow(listener, station, chain_length=30, threshold=10)
        for _ in range(30):
            window.micropay()
        # Settlements were anonymous transfers of shop-issued coins.
        assert window.whopay_payments_made == 3
        assert listener.counts.issues == 0
        assert len(station.wallet) == 3


class TestOnionOverDetection:
    def test_anonymized_peer_with_dht_verification(self):
        from repro.anonymity.onion import OnionOverlay, anonymize_node

        net = WhoPayNetwork(params=P, enable_detection=True, dht_size=4)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        overlay = OnionOverlay(net.transport, P, size=2)
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        anonymize_node(bob, overlay)
        # Bob's DHT verification reads and the transfer itself all travel
        # the circuit; the protocol still completes with detection on.
        bob.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet
        assert not bob.alarms and not carol.alarms
