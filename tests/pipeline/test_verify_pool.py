"""Verification pool: batched verdicts, forgery isolation, worker sharing.

The ISSUE-6 regression target lives here: one forged signature inside a
verification batch must be isolated by the scalar fallback — its verdict
(and only its verdict) goes ``False`` while every honest batch-mate still
passes.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import protocol
from repro.crypto.params import PARAMS_TEST_512
from repro.pipeline import JOB_HOLDER, JOB_PURCHASE, LoadGenerator, VerificationPool
from repro.pipeline.loadgen import WorkloadMix


@pytest.fixture(scope="module")
def workload():
    """One mixed round of real signed requests, plus the pool inputs.

    3 peers x 2 coins with a transfer-only mix: the first 6 requests are
    dual-signed holder transfers, and once every coin is used the
    generator falls back to identity-signed purchases — so the same round
    exercises both job kinds.
    """
    generator = LoadGenerator(
        peers=3,
        coins_per_peer=2,
        params=PARAMS_TEST_512,
        seed=23,
        mix=WorkloadMix(transfer=1.0, renewal=0.0, purchase=0.0),
    )
    requests = generator.make_round(8)
    return generator, requests


def _jobs(requests):
    return [
        (JOB_PURCHASE if r.kind == protocol.PURCHASE else JOB_HOLDER, r.data)
        for r in requests
    ]


def _forge_group_signature(data: bytes, params) -> bytes:
    """A well-formed dual envelope whose group signature is invalid."""
    envelope = protocol.decode_dual(data, params)
    sig = envelope.group_signature
    forged = replace(sig, responses_r=(sig.responses_r[0] ^ 1,) + sig.responses_r[1:])
    return protocol.encode_dual(replace(envelope, group_signature=forged))


def _forge_dsa_signature(data: bytes, params) -> bytes:
    """A well-formed purchase envelope whose DSA signature is invalid."""
    signed = protocol.decode_signed(data, params)
    return replace(signed, signature=replace(signed.signature, s=signed.signature.s ^ 1)).encode()


class TestInlinePool:
    def _pool(self, generator, **kwargs):
        return VerificationPool(
            generator.params, generator.broker.public_key, [generator._gpk], **kwargs
        )

    def test_honest_round_all_pass(self, workload):
        generator, requests = workload
        jobs = _jobs(requests)
        assert {job for job, _ in jobs} == {JOB_HOLDER, JOB_PURCHASE}
        with self._pool(generator) as pool:
            assert pool.verify(jobs) == [True] * len(jobs)
            assert pool.jobs_verified == len(jobs)

    def test_forged_group_signature_is_isolated(self, workload):
        # The regression: the forged member trips the randomized group
        # batch, the scalar fallback pins the failure to that one index,
        # and every honest request in the same batch keeps its verdict.
        generator, requests = workload
        jobs = _jobs(requests)
        victim = 0
        assert jobs[victim][0] == JOB_HOLDER
        jobs[victim] = (JOB_HOLDER, _forge_group_signature(jobs[victim][1], generator.params))
        with self._pool(generator) as pool:
            verdicts = pool.verify(jobs)
        assert verdicts[victim] is False
        assert all(verdicts[i] for i in range(len(jobs)) if i != victim)

    def test_forged_dsa_signature_is_isolated(self, workload):
        # Same isolation through the DSA batch layer (purchase requests
        # carry only the identity signature, no group layer).
        generator, requests = workload
        jobs = _jobs(requests)
        victim = next(i for i, (job, _) in enumerate(jobs) if job == JOB_PURCHASE)
        jobs[victim] = (JOB_PURCHASE, _forge_dsa_signature(jobs[victim][1], generator.params))
        with self._pool(generator) as pool:
            verdicts = pool.verify(jobs)
        assert verdicts[victim] is False
        assert all(verdicts[i] for i in range(len(jobs)) if i != victim)

    def test_malformed_bytes_fail_without_contaminating_neighbors(self, workload):
        generator, requests = workload
        jobs = _jobs(requests)
        jobs[1] = (jobs[1][0], b"not an envelope")
        with self._pool(generator) as pool:
            verdicts = pool.verify(jobs)
        assert verdicts[1] is False
        assert all(verdicts[i] for i in range(len(jobs)) if i != 1)

    def test_unknown_roster_version_is_rejected(self, workload):
        generator, requests = workload
        jobs = _jobs(requests)
        envelope = protocol.decode_dual(jobs[0][1], generator.params)
        stale = replace(envelope, roster_version=envelope.roster_version + 7)
        jobs[0] = (JOB_HOLDER, protocol.encode_dual(stale))
        with self._pool(generator) as pool:
            assert pool.verify(jobs)[0] is False

    def test_empty_input_and_bad_config(self, workload):
        generator, _requests = workload
        with self._pool(generator) as pool:
            assert pool.verify([]) == []
        with pytest.raises(ValueError):
            self._pool(generator, workers=-1)
        with pytest.raises(ValueError):
            self._pool(generator, chunk_size=0)


class TestForkedPool:
    def test_worker_process_agrees_with_inline(self, workload):
        generator, requests = workload
        jobs = _jobs(requests)
        jobs[0] = (JOB_HOLDER, _forge_group_signature(jobs[0][1], generator.params))
        with VerificationPool(
            generator.params,
            generator.broker.public_key,
            [generator._gpk],
            workers=1,
            chunk_size=3,  # forces multiple chunks through the same worker
        ) as pool:
            # The parent's warm fixed-base tables actually shipped.
            assert pool.cache_blob_bytes > 0
            verdicts = pool.verify(jobs)
        assert verdicts[0] is False
        assert all(verdicts[1:])
