"""Throughput engine semantics: release gating, precise rejections, stats.

The crash-consistency half of the engine contract is exercised in
``tests/store/test_groupcommit.py``; here we pin down the happy path and
the pool/broker interplay — in particular that a pool rejection is
non-fatal (the broker re-verifies and names the precise failure) and that
honest requests sharing a batch with a forgery are unaffected.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import protocol
from repro.crypto.params import PARAMS_TEST_512
from repro.pipeline import LoadGenerator, ThroughputEngine, VerificationPool
from repro.pipeline.loadgen import WorkloadMix
from repro.store.groupcommit import GroupCommitter


@pytest.fixture()
def generator(tmp_path):
    return LoadGenerator(
        peers=3,
        coins_per_peer=1,
        params=PARAMS_TEST_512,
        store_dir=tmp_path / "net",
        seed=29,
        mix=WorkloadMix(transfer=1.0, renewal=0.0, purchase=0.0),
    )


def _wire(requests):
    return [(r.kind, r.src, r.data, r.idem) for r in requests]


def _forge_group_signature(data: bytes, params) -> bytes:
    envelope = protocol.decode_dual(data, params)
    sig = envelope.group_signature
    forged = replace(sig, responses_r=(sig.responses_r[0] ^ 1,) + sig.responses_r[1:])
    return protocol.encode_dual(replace(envelope, group_signature=forged))


def _engine(generator, max_batch=4, verify_batch=4):
    pool = VerificationPool(
        generator.params, generator.broker.public_key, [generator._gpk], workers=0
    )
    committer = GroupCommitter(generator.broker.store, max_batch=max_batch)
    return ThroughputEngine(
        generator.broker, pool=pool, committer=committer, verify_batch=verify_batch
    )


class TestHappyPath:
    def test_round_trip_with_pool_and_group_commit(self, generator):
        engine = _engine(generator)
        records, stats = engine.run(_wire(generator.make_round(3)))
        assert stats.processed == stats.accepted == 3
        assert stats.rejected == 0
        assert stats.pool_jobs == 3 and stats.preverified == 3
        assert stats.staged == 3
        assert 1 <= stats.fsyncs < stats.staged  # amortized, not skipped
        assert all(r.ok and r.released and r.durable_lsn is not None for r in records)
        assert generator.absorb(records) == 3
        # The absorbed bindings chain: the next round re-transfers the same
        # coins with the broker-signed (via_broker) bindings.
        records, stats = engine.run(_wire(generator.make_round(3)))
        assert stats.accepted == 3
        assert generator.absorb(records) == 3

    def test_baseline_without_pool_or_committer(self, generator):
        engine = ThroughputEngine(generator.broker, verify_batch=4)
        records, stats = engine.run(_wire(generator.make_round(3)))
        assert stats.accepted == 3 and stats.preverified == 0
        assert stats.fsyncs == stats.staged == 3  # one fsync per request
        assert all(r.ok and r.released for r in records)
        assert generator.absorb(records) == 3

    def test_reply_signing_uses_the_nonce_pool(self, generator):
        engine = _engine(generator)
        records, stats = engine.run(_wire(generator.make_round(3)))
        # All-transfer mix: every accepted reply is a broker-signed binding,
        # so the drain pre-filled exactly one nonce triple per reply.
        assert stats.accepted == 3
        assert stats.nonces_pooled == 3
        assert engine.nonce_pool.served == 3
        assert generator.broker.nonce_pool is engine.nonce_pool
        assert generator.absorb(records) == 3

    def test_stats_merge_accumulates(self, generator):
        engine = _engine(generator)
        total = None
        for _ in range(2):
            records, stats = engine.run(_wire(generator.make_round(2)))
            generator.absorb(records)
            if total is None:
                total = stats
            else:
                total.merge(stats)
        assert total is not None and total.processed == total.accepted == 4


class TestForgedRequestInBatch:
    def test_forgery_rejected_precisely_and_batch_mates_accepted(self, generator):
        # Engine-level regression companion to the pool-level isolation
        # test: the forged request misses the preverified mark, the broker
        # re-runs the scalar checks and rejects with the precise error, and
        # the honest requests verified in the same pool batch all land.
        engine = _engine(generator)
        wire = _wire(generator.make_round(3))
        victim = 1
        kind, src, data, idem = wire[victim]
        wire[victim] = (kind, src, _forge_group_signature(data, generator.params), idem)

        records, stats = engine.run(wire)
        assert stats.processed == 3
        assert stats.accepted == 2 and stats.rejected == 1
        assert stats.preverified == 2  # the pool vouched only for the honest pair
        bad = records[victim]
        assert not bad.ok and bad.released and bad.durable_lsn is None
        assert "signatures invalid" in bad.error
        assert all(r.ok and r.released for i, r in enumerate(records) if i != victim)
        assert generator.absorb(records) == 2


class TestValidation:
    def test_verify_batch_must_be_positive(self, generator):
        with pytest.raises(ValueError):
            ThroughputEngine(generator.broker, verify_batch=0)

    def test_group_commit_requires_a_durable_store(self):
        storeless = LoadGenerator(peers=1, coins_per_peer=1, params=PARAMS_TEST_512, seed=5)
        assert storeless.broker.store is None
        with pytest.raises(ValueError):
            ThroughputEngine(
                storeless.broker,
                committer=GroupCommitter.__new__(GroupCommitter),  # placeholder
            )

    def test_absorb_requires_matching_records(self, generator):
        generator.make_round(2)
        with pytest.raises(ValueError):
            generator.absorb([])

    def test_workload_mix_must_have_positive_weight(self):
        with pytest.raises(ValueError):
            WorkloadMix(transfer=0.0, renewal=0.0, purchase=0.0).weights()


class TestLoadGeneratorDeterminism:
    def test_same_seed_same_request_shape(self, tmp_path):
        def shape(root):
            generator = LoadGenerator(
                peers=2, coins_per_peer=1, params=PARAMS_TEST_512,
                store_dir=root, seed=101,
            )
            return [(r.kind, r.idem) for r in generator.make_round(4)]

        assert shape(tmp_path / "a") == shape(tmp_path / "b")
