"""PayWord hash-chain tests (Section 7 micropayment substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashchain import HashChain, verify_chain_link


class TestChainConstruction:
    def test_anchor_is_depth_hashes_from_seed(self):
        chain = HashChain(10, seed=b"\x00" * 32)
        assert verify_chain_link(chain.anchor, 10, chain.link(10))

    def test_deterministic_for_fixed_seed(self):
        a = HashChain(5, seed=b"seed")
        b = HashChain(5, seed=b"seed")
        assert a.anchor == b.anchor

    def test_random_seeds_differ(self):
        assert HashChain(5).anchor != HashChain(5).anchor

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            HashChain(0)

    def test_link_bounds(self):
        chain = HashChain(3)
        with pytest.raises(IndexError):
            chain.link(4)
        with pytest.raises(IndexError):
            chain.link(-1)


class TestSpending:
    def test_incremental_payments(self):
        chain = HashChain(10)
        for expected in range(1, 11):
            index, link = chain.pay()
            assert index == expected
            assert verify_chain_link(chain.anchor, index, link)

    def test_multi_unit_payment(self):
        chain = HashChain(10)
        index, link = chain.pay(4)
        assert index == 4
        assert verify_chain_link(chain.anchor, 4, link)
        assert chain.remaining == 6

    def test_exhaustion(self):
        chain = HashChain(2)
        chain.pay(2)
        with pytest.raises(ValueError):
            chain.pay()

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            HashChain(5).pay(0)


class TestVerification:
    def test_wrong_link_rejected(self):
        chain = HashChain(5)
        _index, link = chain.pay()
        assert not verify_chain_link(chain.anchor, 2, link)

    def test_forged_link_rejected(self):
        chain = HashChain(5)
        assert not verify_chain_link(chain.anchor, 1, b"\x00" * 32)

    def test_negative_index_rejected(self):
        chain = HashChain(5)
        assert not verify_chain_link(chain.anchor, -1, chain.anchor)

    def test_index_zero_verifies_anchor_itself(self):
        chain = HashChain(5)
        assert verify_chain_link(chain.anchor, 0, chain.anchor)

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_every_prefix_verifies(self, index):
        chain = HashChain(20, seed=b"prop-seed")
        assert verify_chain_link(chain.anchor, index, chain.link(index))

    def test_later_link_proves_earlier_spend(self):
        # Revealing w_k lets the payee derive and verify all w_j (j<k):
        # tokens are cumulative, the payee needs only the latest.
        chain = HashChain(10)
        _i, w5 = chain.pay(5)
        import hashlib

        w4 = hashlib.sha256(w5).digest()
        assert verify_chain_link(chain.anchor, 4, w4)
