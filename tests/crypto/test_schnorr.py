"""Schnorr ownership-proof tests (the issue/transfer challenge)."""

import pytest

from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import PARAMS_TEST_512
from repro.crypto.schnorr import SchnorrProof, schnorr_prove, schnorr_verify


@pytest.fixture(scope="module")
def keypair():
    return KeyPair.generate(PARAMS_TEST_512)


class TestProveVerify:
    def test_roundtrip(self, keypair):
        proof = schnorr_prove(keypair, b"context")
        assert schnorr_verify(keypair.public, proof, b"context")

    def test_context_binding(self, keypair):
        # The verifier's nonce lives in the context: replay under a different
        # context must fail (this is what makes ownership proofs fresh).
        proof = schnorr_prove(keypair, b"nonce-1")
        assert not schnorr_verify(keypair.public, proof, b"nonce-2")

    def test_wrong_key_rejected(self, keypair):
        other = KeyPair.generate(PARAMS_TEST_512)
        proof = schnorr_prove(keypair, b"ctx")
        assert not schnorr_verify(other.public, proof, b"ctx")

    def test_proofs_are_randomized(self, keypair):
        a = schnorr_prove(keypair, b"ctx")
        b = schnorr_prove(keypair, b"ctx")
        assert a.commitment != b.commitment  # fresh commitment each time

    def test_empty_context(self, keypair):
        proof = schnorr_prove(keypair, b"")
        assert schnorr_verify(keypair.public, proof, b"")


class TestMalformedProofs:
    def test_tampered_response(self, keypair):
        proof = schnorr_prove(keypair, b"ctx")
        bad = SchnorrProof(commitment=proof.commitment, response=(proof.response + 1) % PARAMS_TEST_512.q)
        assert not schnorr_verify(keypair.public, bad, b"ctx")

    def test_tampered_commitment(self, keypair):
        proof = schnorr_prove(keypair, b"ctx")
        bad = SchnorrProof(commitment=(proof.commitment * 2) % PARAMS_TEST_512.p, response=proof.response)
        assert not schnorr_verify(keypair.public, bad, b"ctx")

    def test_out_of_range_values(self, keypair):
        proof = schnorr_prove(keypair, b"ctx")
        assert not schnorr_verify(
            keypair.public, SchnorrProof(commitment=0, response=proof.response), b"ctx"
        )
        assert not schnorr_verify(
            keypair.public, SchnorrProof(commitment=proof.commitment, response=PARAMS_TEST_512.q), b"ctx"
        )

    def test_bogus_public_key(self, keypair):
        proof = schnorr_prove(keypair, b"ctx")
        bogus = PublicKey(params=PARAMS_TEST_512, y=PARAMS_TEST_512.p - 1)
        assert not schnorr_verify(bogus, proof, b"ctx")

    def test_encode_stable(self, keypair):
        proof = schnorr_prove(keypair, b"ctx")
        assert proof.encode() == proof.encode()
