"""KeyPair / PublicKey tests."""

import pytest

from repro.crypto.keys import KeyPair, PublicKey, fingerprint
from repro.crypto.params import PARAMS_1024_160, PARAMS_TEST_512


class TestKeyPair:
    def test_generate_consistent(self):
        kp = KeyPair.generate(PARAMS_TEST_512)
        assert kp.public.y == pow(PARAMS_TEST_512.g, kp.x, PARAMS_TEST_512.p)

    def test_from_secret_roundtrip(self):
        kp = KeyPair.generate(PARAMS_TEST_512)
        rebuilt = KeyPair.from_secret(PARAMS_TEST_512, kp.x)
        assert rebuilt.public.y == kp.public.y

    def test_from_secret_range_check(self):
        with pytest.raises(ValueError):
            KeyPair.from_secret(PARAMS_TEST_512, 0)
        with pytest.raises(ValueError):
            KeyPair.from_secret(PARAMS_TEST_512, PARAMS_TEST_512.q)


class TestFingerprints:
    def test_stable(self):
        kp = KeyPair.generate(PARAMS_TEST_512)
        assert kp.fingerprint() == kp.public.fingerprint()
        assert fingerprint(kp) == fingerprint(kp.public)

    def test_distinct_keys_distinct_prints(self):
        a = KeyPair.generate(PARAMS_TEST_512)
        b = KeyPair.generate(PARAMS_TEST_512)
        assert a.fingerprint() != b.fingerprint()

    def test_group_is_part_of_identity(self):
        # The same y value in different groups is a different key.
        a = PublicKey(params=PARAMS_TEST_512, y=12345)
        b = PublicKey(params=PARAMS_1024_160, y=12345)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_length(self):
        assert len(KeyPair.generate(PARAMS_TEST_512).fingerprint()) == 20


class TestValidation:
    def test_valid_key_passes(self):
        KeyPair.generate(PARAMS_TEST_512).public.validate()

    def test_invalid_key_fails(self):
        with pytest.raises(ValueError):
            PublicKey(params=PARAMS_TEST_512, y=PARAMS_TEST_512.p - 1).validate()
