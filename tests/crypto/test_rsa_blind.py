"""RSA and Chaum blind-signature tests."""

import pytest

from repro.crypto.blind import BlindingState, blind, sign_blinded, unblind, verify_unblinded
from repro.crypto.rsa import (
    PUBLIC_EXPONENT,
    RsaPublicKey,
    hash_to_modulus,
    rsa_generate,
    rsa_sign,
    rsa_sign_raw,
    rsa_verify,
)


@pytest.fixture(scope="module")
def keypair():
    return rsa_generate(bits=512)


class TestRsa:
    def test_keypair_consistent(self, keypair):
        assert keypair.p * keypair.q == keypair.public.n
        assert keypair.public.e == PUBLIC_EXPONENT
        assert (keypair.d * PUBLIC_EXPONENT) % ((keypair.p - 1) * (keypair.q - 1)) == 1

    def test_modulus_size(self, keypair):
        assert keypair.public.n.bit_length() == 512

    def test_sign_verify(self, keypair):
        signature = rsa_sign(keypair, b"hello")
        assert rsa_verify(keypair.public, b"hello", signature)
        assert not rsa_verify(keypair.public, b"hellp", signature)

    def test_wrong_key_rejected(self, keypair):
        other = rsa_generate(bits=512)
        signature = rsa_sign(keypair, b"m")
        assert not rsa_verify(other.public, b"m", signature)

    def test_out_of_range_signature(self, keypair):
        assert not rsa_verify(keypair.public, b"m", 0)
        assert not rsa_verify(keypair.public, b"m", keypair.public.n)

    def test_fdh_range(self, keypair):
        for message in (b"", b"a", b"x" * 1000):
            h = hash_to_modulus(message, keypair.public.n)
            assert 1 <= h < keypair.public.n

    def test_raw_signing_range_check(self, keypair):
        with pytest.raises(ValueError):
            rsa_sign_raw(keypair, 0)
        with pytest.raises(ValueError):
            rsa_sign_raw(keypair, keypair.public.n)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ValueError):
            rsa_generate(bits=64)


class TestBlindSignatures:
    def test_blind_sign_unblind_verifies(self, keypair):
        blinded, state = blind(keypair.public, b"coin-serial-123")
        blind_signature = sign_blinded(keypair, blinded)
        signature = unblind(keypair.public, state, blind_signature)
        assert verify_unblinded(keypair.public, b"coin-serial-123", signature)
        # The unblinded signature is a perfectly ordinary FDH signature.
        assert rsa_verify(keypair.public, b"coin-serial-123", signature)

    def test_signature_does_not_transfer_to_other_messages(self, keypair):
        blinded, state = blind(keypair.public, b"m1")
        signature = unblind(keypair.public, state, sign_blinded(keypair, blinded))
        assert not verify_unblinded(keypair.public, b"m2", signature)

    def test_unlinkability_blinded_values_independent(self, keypair):
        # Two blindings of the SAME message are unrelated values — the
        # mint's view carries no information about the message.
        blinded_a, _ = blind(keypair.public, b"same-message")
        blinded_b, _ = blind(keypair.public, b"same-message")
        assert blinded_a != blinded_b
        assert blinded_a != hash_to_modulus(b"same-message", keypair.public.n)

    def test_wrong_blinding_state_fails(self, keypair):
        blinded, state = blind(keypair.public, b"m")
        blind_signature = sign_blinded(keypair, blinded)
        bogus_state = BlindingState(message=b"m", r=state.r + 1)
        signature = unblind(keypair.public, bogus_state, blind_signature)
        assert not verify_unblinded(keypair.public, b"m", signature)

    def test_mint_signature_required(self, keypair):
        _blinded, state = blind(keypair.public, b"m")
        forged = unblind(keypair.public, state, 12345)
        assert not verify_unblinded(keypair.public, b"m", forged)
