"""Group signature tests: anonymity, verifiability, openability (Section 3.2)."""

import dataclasses

import pytest

from repro.crypto.group_signature import (
    GroupManager,
    GroupSignature,
    GroupSignatureError,
    group_sign,
    group_verify,
)
from repro.crypto.params import PARAMS_TEST_512
from repro.crypto.shamir import combine_shares


@pytest.fixture(scope="module")
def group():
    manager = GroupManager(PARAMS_TEST_512)
    members = {name: manager.register(name) for name in ("alice", "bob", "carol")}
    return manager, members


class TestSignVerify:
    def test_every_member_can_sign(self, group):
        manager, members = group
        gpk = manager.public_key()
        for name, key in members.items():
            sig = group_sign(gpk, key, b"payment")
            assert group_verify(gpk, b"payment", sig), name

    def test_wrong_message_rejected(self, group):
        manager, members = group
        gpk = manager.public_key()
        sig = group_sign(gpk, members["alice"], b"pay 5")
        assert not group_verify(gpk, b"pay 6", sig)

    def test_nonmember_cannot_sign(self, group):
        manager, members = group
        other = GroupManager(PARAMS_TEST_512)
        outsider = other.register("mallory")
        gpk = manager.public_key()
        with pytest.raises(GroupSignatureError):
            group_sign(gpk, outsider, b"m")

    def test_signature_against_foreign_group_fails(self, group):
        manager, members = group
        other = GroupManager(PARAMS_TEST_512)
        other.register("x")
        sig = group_sign(manager.public_key(), members["bob"], b"m")
        assert not group_verify(other.public_key(), b"m", sig)


class TestAnonymity:
    def test_signatures_unlinkable(self, group):
        # Two signatures by the same member share no ciphertext or challenge
        # components — a verifier cannot link them.
        manager, members = group
        gpk = manager.public_key()
        a = group_sign(gpk, members["bob"], b"m")
        b = group_sign(gpk, members["bob"], b"m")
        assert a.ciphertext.c1 != b.ciphertext.c1
        assert a.challenges != b.challenges

    def test_verification_identical_across_signers(self, group):
        # Verification gives a verifier no signer-dependent output: it is a
        # boolean, and signatures from different members have identical shape.
        manager, members = group
        gpk = manager.public_key()
        sigs = [group_sign(gpk, key, b"m") for key in members.values()]
        for sig in sigs:
            assert group_verify(gpk, b"m", sig)
            assert len(sig.challenges) == manager.member_count()


class TestOpening:
    def test_judge_opens_correct_identity(self, group):
        manager, members = group
        gpk = manager.public_key()
        for name, key in members.items():
            sig = group_sign(gpk, key, b"fraudulent tx")
            assert manager.open(sig) == name

    def test_threshold_shares_reconstruct(self, group):
        manager, _members = group
        shares = manager.export_opening_shares(n=5, k=3)
        secret = combine_shares(shares[:3], PARAMS_TEST_512.q)
        assert secret == manager.opening_keypair.secret

    def test_too_few_shares_fail(self, group):
        manager, _members = group
        shares = manager.export_opening_shares(n=5, k=3)
        wrong = combine_shares(shares[:2], PARAMS_TEST_512.q)
        assert wrong != manager.opening_keypair.secret


class TestRosterVersioning:
    def test_old_snapshot_still_verifies_old_signers(self):
        manager = GroupManager(PARAMS_TEST_512)
        alice = manager.register("alice")
        gpk_v1 = manager.public_key()
        sig = group_sign(gpk_v1, alice, b"m")
        manager.register("bob")  # roster grows
        # Verifying against the version the signer used still works.
        assert group_verify(manager.public_key_at(1), b"m", sig)
        # The new snapshot has a different roster hash, so it must not.
        assert not group_verify(manager.public_key(), b"m", sig)

    def test_public_key_at_bounds(self):
        manager = GroupManager(PARAMS_TEST_512)
        manager.register("a")
        with pytest.raises(GroupSignatureError):
            manager.public_key_at(5)
        assert manager.public_key_at(0).roster == ()

    def test_versions_carried_in_snapshots(self):
        manager = GroupManager(PARAMS_TEST_512)
        manager.register("a")
        manager.register("b")
        assert manager.public_key().version == 2
        assert manager.public_key_at(1).version == 1


class TestExpulsion:
    def test_expel_shrinks_roster_and_bumps_version(self):
        manager = GroupManager(PARAMS_TEST_512)
        alice = manager.register("alice")
        bob = manager.register("bob")
        version = manager.expel("alice")
        assert version == 3  # two registrations + one expulsion
        gpk = manager.public_key()
        assert gpk.roster == (bob.h,)
        assert manager.member_count() == 1
        assert manager.is_expelled("alice")

    def test_expelled_cannot_sign_new_snapshot(self):
        manager = GroupManager(PARAMS_TEST_512)
        alice = manager.register("alice")
        manager.register("bob")
        manager.expel("alice")
        with pytest.raises(GroupSignatureError):
            group_sign(manager.public_key(), alice, b"m")

    def test_old_signatures_still_open(self):
        manager = GroupManager(PARAMS_TEST_512)
        alice = manager.register("alice")
        sig = group_sign(manager.public_key(), alice, b"evidence")
        manager.expel("alice")
        assert manager.open(sig) == "alice"

    def test_expel_inactive_member_fails(self):
        manager = GroupManager(PARAMS_TEST_512)
        manager.register("alice")
        with pytest.raises(GroupSignatureError):
            manager.expel("ghost")
        manager.expel("alice")
        with pytest.raises(GroupSignatureError):
            manager.expel("alice")

    def test_register_after_expel(self):
        manager = GroupManager(PARAMS_TEST_512)
        manager.register("alice")
        manager.expel("alice")
        carol = manager.register("carol")
        gpk = manager.public_key()
        sig = group_sign(gpk, carol, b"m")
        assert group_verify(gpk, b"m", sig)
        assert manager.open(sig) == "carol"


class TestTampering:
    def test_tampered_challenge_rejected(self, group):
        manager, members = group
        gpk = manager.public_key()
        sig = group_sign(gpk, members["carol"], b"m")
        challenges = list(sig.challenges)
        challenges[0] = (challenges[0] + 1) % PARAMS_TEST_512.q
        bad = dataclasses.replace(sig, challenges=tuple(challenges))
        assert not group_verify(gpk, b"m", bad)

    def test_tampered_response_rejected(self, group):
        manager, members = group
        gpk = manager.public_key()
        sig = group_sign(gpk, members["carol"], b"m")
        responses = list(sig.responses_x)
        responses[-1] = (responses[-1] + 1) % PARAMS_TEST_512.q
        bad = dataclasses.replace(sig, responses_x=tuple(responses))
        assert not group_verify(gpk, b"m", bad)

    def test_truncated_transcript_rejected(self, group):
        manager, members = group
        gpk = manager.public_key()
        sig = group_sign(gpk, members["alice"], b"m")
        bad = dataclasses.replace(sig, challenges=sig.challenges[:-1])
        assert not group_verify(gpk, b"m", bad)

    def test_swapped_ciphertext_rejected(self, group):
        # Re-encrypting a different member's key under the same proof must
        # fail — otherwise a signer could frame someone else.
        manager, members = group
        gpk = manager.public_key()
        sig_alice = group_sign(gpk, members["alice"], b"m")
        sig_bob = group_sign(gpk, members["bob"], b"m")
        franken = dataclasses.replace(sig_alice, ciphertext=sig_bob.ciphertext)
        assert not group_verify(gpk, b"m", franken)
