"""Adversarial and agreement tests for randomized batch verification.

The batch verifier must be *exactly* as strict as per-signature verification
on honest inputs, and must reject any batch containing a forgery — including
forgeries hidden behind manipulated ``commit`` hints.
"""

import secrets
from dataclasses import replace

import pytest

from repro.crypto.dsa import (
    DsaSignature,
    dsa_batch_verify,
    dsa_generate,
    dsa_sign,
    dsa_verify,
)
from repro.crypto.group_signature import (
    GroupManager,
    group_batch_verify,
    group_sign,
    group_verify,
)
from repro.crypto.params import PARAMS_1024_160, PARAMS_2048_256, PARAMS_TEST_512
from repro.crypto.schnorr import schnorr_batch_verify, schnorr_prove, schnorr_verify

ALL_PARAMS = [
    pytest.param(PARAMS_TEST_512, id="512_160"),
    pytest.param(PARAMS_1024_160, id="1024_160"),
    pytest.param(PARAMS_2048_256, id="2048_256"),
]


def _batch(params, n, signers=3):
    keys = [dsa_generate(params) for _ in range(signers)]
    items = []
    for i in range(n):
        kp = keys[i % signers]
        msg = b"message-%d" % i
        items.append((kp.public, msg, dsa_sign(kp, msg)))
    return items


class TestDsaBatchAgreement:
    @pytest.mark.parametrize("params", ALL_PARAMS)
    def test_agrees_with_individual_verify(self, params):
        items = _batch(params, 6)
        assert all(dsa_verify(pk, m, sig) for pk, m, sig in items)
        assert dsa_batch_verify(items)

    def test_empty_and_single(self):
        assert dsa_batch_verify([])
        items = _batch(PARAMS_TEST_512, 1)
        assert dsa_batch_verify(items)

    def test_randomized_agreement(self):
        # Random mixes of valid and tampered items: batch must equal the AND
        # of individual verification, every time.
        params = PARAMS_TEST_512
        for trial in range(10):
            items = _batch(params, 5)
            if trial % 2:
                victim = secrets.randbelow(len(items))
                pk, m, sig = items[victim]
                items[victim] = (pk, m + b"!", sig)
            expected = all(dsa_verify(pk, m, sig) for pk, m, sig in items)
            assert dsa_batch_verify(items) == expected

    def test_signatures_without_commit_still_verify(self):
        # Envelopes from peers predating the hint: fall back individually.
        items = [
            (pk, m, replace(sig, commit=None)) for pk, m, sig in _batch(PARAMS_TEST_512, 4)
        ]
        assert dsa_batch_verify(items)

    def test_mixed_param_batches(self):
        items = _batch(PARAMS_TEST_512, 2) + _batch(PARAMS_1024_160, 2)
        assert dsa_batch_verify(items)

    def test_precomputed_digests(self):
        from repro.crypto.dsa import dsa_digest

        items = _batch(PARAMS_TEST_512, 4)
        digests = [dsa_digest(pk.params, m) for pk, m, _ in items]
        assert dsa_batch_verify(items, digests=digests)
        with pytest.raises(ValueError):
            dsa_batch_verify(items, digests=digests[:-1])


class TestDsaBatchAdversarial:
    @pytest.mark.parametrize("params", ALL_PARAMS)
    def test_one_forged_member_rejects(self, params):
        items = _batch(params, 5)
        forged = DsaSignature(
            r=secrets.randbelow(params.q - 1) + 1,
            s=secrets.randbelow(params.q - 1) + 1,
        )
        bad = items + [(items[0][0], b"forged message", forged)]
        assert not dsa_batch_verify(bad)

    def test_bit_flipped_signature_rejects(self):
        items = _batch(PARAMS_TEST_512, 5)
        pk, m, sig = items[2]
        items[2] = (pk, m, replace(sig, s=sig.s ^ 1))
        assert not dsa_batch_verify(items)

    def test_bit_flipped_message_rejects(self):
        items = _batch(PARAMS_TEST_512, 5)
        pk, m, sig = items[3]
        items[3] = (pk, bytes([m[0] ^ 1]) + m[1:], sig)
        assert not dsa_batch_verify(items)

    def test_corrupted_commit_cannot_forge(self):
        # The hint is untrusted: replacing it on a *valid* signature must not
        # reject (falls back individually), and attaching a consistent-looking
        # hint to an *invalid* signature must not accept.
        params = PARAMS_TEST_512
        items = _batch(params, 3)
        pk, m, sig = items[0]
        items[0] = (pk, m, replace(sig, commit=sig.commit * 2 % params.p))
        assert dsa_batch_verify(items)  # valid sigs survive a mangled hint

        forged_r = secrets.randbelow(params.q - 1) + 1
        # Hint consistent with r (commit % q == r) but not a real commitment.
        fake_commit = forged_r
        bad = _batch(params, 3) + [
            (pk, b"oops", DsaSignature(r=forged_r, s=1, commit=fake_commit))
        ]
        assert not dsa_batch_verify(bad)

    def test_small_order_commit_component_rejected(self):
        # Cofactor clearing: hide a p-1-order component in the hint of an
        # otherwise-forged signature; the combination must still reject.
        params = PARAMS_TEST_512
        items = _batch(params, 3)
        pk, m, sig = items[0]
        minus_one = params.p - 1  # order-2 element mod p
        tweaked = replace(sig, commit=sig.commit * minus_one % params.p)
        # commit % q changed, so this item just falls back to individual
        # verification and the (valid) signature passes.
        items[0] = (pk, m, tweaked)
        assert dsa_batch_verify(items)
        # But a forged s with any commit never passes.
        items[0] = (pk, m, replace(tweaked, s=sig.s ^ 1))
        assert not dsa_batch_verify(items)

    def test_swapped_signatures_reject(self):
        items = _batch(PARAMS_TEST_512, 4, signers=4)
        a, b = items[0], items[1]
        items[0] = (a[0], a[1], b[2])
        items[1] = (b[0], b[1], a[2])
        assert not dsa_batch_verify(items)

    def test_out_of_range_values_reject(self):
        params = PARAMS_TEST_512
        items = _batch(params, 2)
        pk, m, sig = items[0]
        for bad in (
            DsaSignature(r=0, s=sig.s),
            DsaSignature(r=sig.r, s=0),
            DsaSignature(r=params.q, s=sig.s),
            DsaSignature(r=sig.r, s=params.q + 5),
        ):
            assert not dsa_batch_verify([(pk, m, bad)] + items[1:])


class TestSchnorrBatch:
    @pytest.mark.parametrize("params", ALL_PARAMS)
    def test_agrees_with_individual(self, params):
        kp = dsa_generate(params)
        items = [
            (kp.public, schnorr_prove(kp, ctx), ctx)
            for ctx in (b"ctx-%d" % i for i in range(4))
        ]
        assert all(schnorr_verify(pk, proof, ctx) for pk, proof, ctx in items)
        assert schnorr_batch_verify(items)

    def test_forged_member_rejects(self):
        kp = dsa_generate(PARAMS_TEST_512)
        items = [
            (kp.public, schnorr_prove(kp, ctx), ctx)
            for ctx in (b"ctx-%d" % i for i in range(4))
        ]
        pk, proof, ctx = items[1]
        items[1] = (pk, proof, ctx + b"!")
        assert not schnorr_batch_verify(items)
        assert schnorr_batch_verify([])


@pytest.fixture(scope="module")
def group():
    manager = GroupManager(PARAMS_TEST_512)
    members = {name: manager.register(name) for name in ("alice", "bob", "carol")}
    return manager, members


def _group_batch(group, n):
    manager, members = group
    gpk = manager.public_key()
    keys = list(members.values())
    items = []
    for i in range(n):
        msg = b"group-msg-%d" % i
        items.append((msg, group_sign(gpk, keys[i % len(keys)], msg)))
    return gpk, items


class TestGroupBatchAgreement:
    def test_agrees_with_individual_verify(self, group):
        gpk, items = _group_batch(group, 5)
        assert all(group_verify(gpk, msg, sig) for msg, sig in items)
        assert group_batch_verify(gpk, items)

    def test_empty_and_single(self, group):
        gpk, items = _group_batch(group, 1)
        assert group_batch_verify(gpk, [])
        assert group_batch_verify(gpk, items)

    def test_stripped_hints_still_verify(self, group):
        # Transports may drop the commitments accelerator; the batch path
        # must fall back to exact verification, never reject.
        gpk, items = _group_batch(group, 3)
        stripped = [(msg, replace(sig, commitments=None)) for msg, sig in items]
        assert group_batch_verify(gpk, stripped)

    def test_corrupted_hint_on_valid_signature_still_verifies(self, group):
        # A mangled hint is untrusted metadata: the signature itself is
        # valid, so the pair must be routed to exact verification and pass.
        gpk, items = _group_batch(group, 3)
        msg, sig = items[1]
        t1, t2, t3 = sig.commitments[0]
        bad = sig.commitments[:1][:0] + (((t1 * 2) % gpk.params.p, t2, t3),) + sig.commitments[1:]
        items[1] = (msg, replace(sig, commitments=bad))
        assert group_batch_verify(gpk, items)


class TestGroupBatchAdversarial:
    def test_one_forged_member_rejects(self, group):
        gpk, items = _group_batch(group, 4)
        msg, sig = items[2]
        forged = replace(
            sig, responses_r=(sig.responses_r[0] ^ 1,) + sig.responses_r[1:]
        )
        items[2] = (msg, forged)
        assert not group_verify(gpk, msg, forged)
        assert not group_batch_verify(gpk, items)

    def test_wrong_message_rejects(self, group):
        gpk, items = _group_batch(group, 3)
        msg, sig = items[0]
        items[0] = (msg + b"!", sig)
        assert not group_batch_verify(gpk, items)

    def test_forged_member_without_hint_rejects(self, group):
        # Stripping the hint must not smuggle a forgery past the batch: the
        # exact-fallback path verifies it individually.
        gpk, items = _group_batch(group, 3)
        msg, sig = items[1]
        forged = replace(
            sig,
            responses_x=(sig.responses_x[0] ^ 1,) + sig.responses_x[1:],
            commitments=None,
        )
        items[1] = (msg, forged)
        assert not group_batch_verify(gpk, items)
