"""Validation of the embedded Schnorr-group parameter sets."""

import pytest

from repro.crypto.params import (
    PARAMS_1024_160,
    PARAMS_2048_256,
    PARAMS_TEST_512,
    DlogParams,
    default_params,
    generate_params,
)


class TestEmbeddedParams:
    def test_test_group_valid(self):
        PARAMS_TEST_512.validate()

    def test_1024_group_valid(self):
        PARAMS_1024_160.validate()

    def test_2048_group_valid(self):
        PARAMS_2048_256.validate()

    def test_sizes_match_names(self):
        assert PARAMS_TEST_512.p_bits == 512 and PARAMS_TEST_512.q_bits == 160
        assert PARAMS_1024_160.p_bits == 1024 and PARAMS_1024_160.q_bits == 160
        assert PARAMS_2048_256.p_bits == 2048 and PARAMS_2048_256.q_bits == 256

    def test_default_is_paper_size(self):
        # The paper benchmarks DSA 1024-bit (Table 2); that is the default.
        assert default_params() is PARAMS_1024_160

    def test_generator_has_order_q(self):
        for params in (PARAMS_TEST_512, PARAMS_1024_160):
            assert pow(params.g, params.q, params.p) == 1
            assert params.g != 1


class TestDlogParamsApi:
    def test_is_element_accepts_generator_powers(self):
        params = PARAMS_TEST_512
        x = params.random_exponent()
        assert params.is_element(pow(params.g, x, params.p))

    def test_is_element_rejects_outside_range(self):
        params = PARAMS_TEST_512
        assert not params.is_element(0)
        assert not params.is_element(params.p)

    def test_is_element_rejects_wrong_order(self):
        params = PARAMS_TEST_512
        # -1 mod p has order 2, not q (q is odd).
        assert not params.is_element(params.p - 1)

    def test_random_exponent_in_range(self):
        params = PARAMS_TEST_512
        for _ in range(50):
            assert 1 <= params.random_exponent() < params.q

    def test_encode_distinguishes_groups(self):
        assert PARAMS_TEST_512.encode() != PARAMS_1024_160.encode()

    def test_validate_rejects_bad_group(self):
        bad = DlogParams(p=15, q=7, g=2, name="bogus")
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_wrong_order_generator(self):
        good = PARAMS_TEST_512
        bad = DlogParams(p=good.p, q=good.q, g=good.p - 1, name="bad-gen")
        with pytest.raises(ValueError):
            bad.validate()


class TestGeneration:
    def test_generate_small_params(self):
        params = generate_params(p_bits=256, q_bits=96, name="tiny")
        params.validate()
        assert params.p_bits == 256
        assert params.q_bits == 96

    def test_generate_rejects_inverted_sizes(self):
        with pytest.raises(ValueError):
            generate_params(p_bits=128, q_bits=256)
