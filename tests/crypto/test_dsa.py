"""DSA signature tests (the paper's Table 2 operations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dsa import DsaSignature, dsa_generate, dsa_sign, dsa_verify
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture(scope="module")
def keypair():
    return dsa_generate(PARAMS_TEST_512)


class TestSignVerify:
    def test_roundtrip(self, keypair):
        sig = dsa_sign(keypair, b"hello world")
        assert dsa_verify(keypair.public, b"hello world", sig)

    def test_wrong_message_rejected(self, keypair):
        sig = dsa_sign(keypair, b"hello world")
        assert not dsa_verify(keypair.public, b"hello worle", sig)

    def test_wrong_key_rejected(self, keypair):
        other = dsa_generate(PARAMS_TEST_512)
        sig = dsa_sign(keypair, b"msg")
        assert not dsa_verify(other.public, b"msg", sig)

    def test_empty_message(self, keypair):
        sig = dsa_sign(keypair, b"")
        assert dsa_verify(keypair.public, b"", sig)

    def test_long_message(self, keypair):
        msg = b"\xab" * 100_000
        sig = dsa_sign(keypair, msg)
        assert dsa_verify(keypair.public, msg, sig)

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, message):
        keypair = KeyPair.from_secret(PARAMS_TEST_512, 123456789)
        sig = dsa_sign(keypair, message)
        assert dsa_verify(keypair.public, message, sig)


class TestDeterministicNonce:
    def test_same_message_same_signature(self, keypair):
        # RFC 6979 style nonces make signing deterministic per (key, msg).
        assert dsa_sign(keypair, b"m") == dsa_sign(keypair, b"m")

    def test_different_messages_different_r(self, keypair):
        a = dsa_sign(keypair, b"m1")
        b = dsa_sign(keypair, b"m2")
        assert a.r != b.r  # distinct nonces (overwhelming probability)


class TestMalformedSignatures:
    def test_zero_components_rejected(self, keypair):
        sig = dsa_sign(keypair, b"m")
        assert not dsa_verify(keypair.public, b"m", DsaSignature(r=0, s=sig.s))
        assert not dsa_verify(keypair.public, b"m", DsaSignature(r=sig.r, s=0))

    def test_out_of_range_components_rejected(self, keypair):
        q = PARAMS_TEST_512.q
        sig = dsa_sign(keypair, b"m")
        assert not dsa_verify(keypair.public, b"m", DsaSignature(r=q, s=sig.s))
        assert not dsa_verify(keypair.public, b"m", DsaSignature(r=sig.r, s=q + 1))

    def test_tampered_signature_rejected(self, keypair):
        sig = dsa_sign(keypair, b"m")
        bad = DsaSignature(r=sig.r, s=(sig.s + 1) % PARAMS_TEST_512.q or 1)
        assert not dsa_verify(keypair.public, b"m", bad)

    def test_bogus_public_key_rejected(self, keypair):
        sig = dsa_sign(keypair, b"m")
        bogus = PublicKey(params=PARAMS_TEST_512, y=PARAMS_TEST_512.p - 1)
        assert not dsa_verify(bogus, b"m", sig)

    def test_signature_encoding_stable(self, keypair):
        sig = dsa_sign(keypair, b"m")
        assert sig.encode() == sig.encode()
        other = dsa_sign(keypair, b"m2")
        assert sig.encode() != other.encode()


class TestKeyGeneration:
    def test_public_matches_secret(self):
        kp = dsa_generate(PARAMS_TEST_512)
        params = kp.params
        assert kp.public.y == pow(params.g, kp.x, params.p)

    def test_distinct_keys(self):
        assert dsa_generate(PARAMS_TEST_512).x != dsa_generate(PARAMS_TEST_512).x

    def test_default_params_used_when_omitted(self):
        kp = dsa_generate()
        assert kp.params.p_bits == 1024  # the paper's benchmark size


class TestCrossParameterSafety:
    def test_signature_from_other_group_rejected(self):
        from repro.crypto.params import PARAMS_1024_160

        small = dsa_generate(PARAMS_TEST_512)
        big = dsa_generate(PARAMS_1024_160)
        sig = dsa_sign(small, b"m")
        # Verifying a 512-group signature under a 1024-group key must fail
        # cleanly, never crash or falsely accept.
        assert not dsa_verify(big.public, b"m", sig)

    def test_same_y_different_group_is_different_key(self):
        from repro.crypto.params import PARAMS_1024_160

        kp = dsa_generate(PARAMS_TEST_512)
        sig = dsa_sign(kp, b"m")
        foreign = PublicKey(params=PARAMS_1024_160, y=kp.public.y)
        assert not dsa_verify(foreign, b"m", sig)
