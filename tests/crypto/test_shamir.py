"""Shamir secret sharing tests (threshold judges, Section 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.params import PARAMS_TEST_512
from repro.crypto.shamir import combine_shares, split_secret

Q = PARAMS_TEST_512.q


class TestSplitCombine:
    def test_exact_threshold_reconstructs(self):
        shares = split_secret(123456, n=5, k=3, modulus=Q)
        assert combine_shares(shares[:3], Q) == 123456

    def test_any_subset_of_threshold_size(self):
        secret = 987654321
        shares = split_secret(secret, n=5, k=3, modulus=Q)
        import itertools

        for subset in itertools.combinations(shares, 3):
            assert combine_shares(list(subset), Q) == secret

    def test_more_than_threshold_also_works(self):
        shares = split_secret(42, n=6, k=2, modulus=Q)
        assert combine_shares(shares, Q) == 42

    def test_below_threshold_gives_wrong_secret(self):
        secret = 777
        shares = split_secret(secret, n=5, k=3, modulus=Q)
        assert combine_shares(shares[:2], Q) != secret

    def test_k_equals_one_is_replication(self):
        shares = split_secret(5, n=3, k=1, modulus=Q)
        for share in shares:
            assert combine_shares([share], Q) == 5

    def test_k_equals_n(self):
        secret = 31337
        shares = split_secret(secret, n=4, k=4, modulus=Q)
        assert combine_shares(shares, Q) == secret
        assert combine_shares(shares[:3], Q) != secret

    @given(st.integers(min_value=0, max_value=int(Q) - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, secret):
        shares = split_secret(secret, n=4, k=2, modulus=Q)
        assert combine_shares(shares[1:3], Q) == secret


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            split_secret(1, n=3, k=4, modulus=Q)
        with pytest.raises(ValueError):
            split_secret(1, n=3, k=0, modulus=Q)

    def test_rejects_secret_out_of_field(self):
        with pytest.raises(ValueError):
            split_secret(int(Q), n=3, k=2, modulus=Q)
        with pytest.raises(ValueError):
            split_secret(-1, n=3, k=2, modulus=Q)

    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError):
            split_secret(1, n=3, k=2, modulus=100)

    def test_combine_rejects_empty(self):
        with pytest.raises(ValueError):
            combine_shares([], Q)

    def test_combine_rejects_duplicate_indices(self):
        shares = split_secret(9, n=3, k=2, modulus=Q)
        with pytest.raises(ValueError):
            combine_shares([shares[0], shares[0]], Q)
