"""Tests for the fixed-base / multi-exponentiation accelerator.

Everything here checks *agreement with native ``pow``* — the accelerator is
a pure performance layer and must be bit-for-bit equivalent on every input.
"""

import secrets

import pytest

from repro.crypto import fastexp
from repro.crypto.params import PARAMS_1024_160, PARAMS_TEST_512

P = PARAMS_TEST_512


@pytest.fixture(autouse=True)
def _fresh_caches():
    fastexp.clear_caches()
    yield
    fastexp.clear_caches()


class TestFixedBaseTable:
    def test_matches_native_pow(self):
        table = fastexp.FixedBaseTable(P.g, P.p, P.q.bit_length())
        for _ in range(20):
            e = secrets.randbelow(P.q)
            assert table.pow(e) == pow(P.g, e, P.p)

    def test_edge_exponents(self):
        table = fastexp.FixedBaseTable(P.g, P.p, P.q.bit_length())
        for e in (0, 1, 2, P.q - 1, P.q):
            assert table.pow(e) == pow(P.g, e, P.p)

    def test_order_reduction(self):
        table = fastexp.FixedBaseTable(P.g, P.p, P.q.bit_length(), order=P.q)
        e = secrets.randbelow(P.q)
        # g has order q, so exponents reduce mod q.
        assert table.pow(e + P.q) == pow(P.g, e, P.p)
        assert table.pow(2 * P.q) == 1

    def test_overflow_falls_back(self):
        # Exponent wider than the table was built for: still correct.
        table = fastexp.FixedBaseTable(P.g, P.p, 16)
        e = secrets.randbelow(P.q)
        assert table.pow(e) == pow(P.g, e, P.p)

    def test_window_sizes_agree(self):
        e = secrets.randbelow(P.q)
        for window in (1, 2, 4, 5, 8):
            table = fastexp.FixedBaseTable(P.g, P.p, P.q.bit_length(), window=window)
            assert table.pow(e) == pow(P.g, e, P.p)


class TestModPow:
    def test_matches_native(self):
        base = pow(P.g, 12345, P.p)
        for _ in range(10):
            e = secrets.randbelow(P.q)
            assert fastexp.mod_pow(base, e, P.p, order=P.q) == pow(base, e, P.p)

    def test_promotion_after_repeated_use(self):
        base = pow(P.g, 999, P.p)
        e = secrets.randbelow(P.q)
        for _ in range(fastexp.PROMOTE_AFTER + 1):
            assert fastexp.mod_pow(base, e, P.p, order=P.q) == pow(base, e, P.p)
        # A table now exists and keeps agreeing with pow.
        assert fastexp.fixed_base(base, P.p) is not None
        e2 = secrets.randbelow(P.q)
        assert fastexp.mod_pow(base, e2, P.p, order=P.q) == pow(base, e2, P.p)


class TestMultiExp:
    def _native(self, pairs, modulus):
        out = 1
        for base, exp in pairs:
            out = (out * pow(base, exp, modulus)) % modulus
        return out

    def test_pairs_match_native(self):
        for count in (1, 2, 3, 5):
            pairs = [
                (pow(P.g, secrets.randbelow(P.q), P.p), secrets.randbelow(P.q))
                for _ in range(count)
            ]
            assert fastexp.multi_exp(pairs, P.p, order=P.q) == self._native(pairs, P.p)

    def test_zero_exponents(self):
        pairs = [(P.g, 0), (pow(P.g, 7, P.p), 0)]
        assert fastexp.multi_exp(pairs, P.p, order=P.q) == 1

    def test_empty(self):
        assert fastexp.multi_exp([], P.p) == 1

    def test_with_cached_table(self):
        fastexp.precompute(P.g, P.p, P.q.bit_length(), order=P.q)
        y = pow(P.g, 4242, P.p)
        pairs = [(P.g, secrets.randbelow(P.q)), (y, secrets.randbelow(P.q))]
        assert fastexp.multi_exp(pairs, P.p, order=P.q) == self._native(pairs, P.p)

    def test_with_ephemeral_tables(self):
        c1 = pow(P.g, 31337, P.p)
        tables = {
            c1: fastexp.FixedBaseTable(
                c1, P.p, P.q.bit_length(), window=fastexp.EPHEMERAL_WINDOW, order=P.q
            )
        }
        pairs = [(P.g, secrets.randbelow(P.q)), (c1, secrets.randbelow(P.q))]
        assert fastexp.multi_exp(pairs, P.p, order=P.q, tables=tables) == self._native(
            pairs, P.p
        )


class TestMembership:
    def test_agrees_with_definition(self):
        member = pow(P.g, 123, P.p)
        assert fastexp.is_member(member, P.q, P.p)
        assert fastexp.is_member(member, P.q, P.p)  # memoized path
        non_member = 2
        while pow(non_member, P.q, P.p) == 1:  # pragma: no cover
            non_member += 1
        assert not fastexp.is_member(non_member, P.q, P.p)

    def test_tabled_nonmember_is_still_rejected(self):
        # Regression guard: a base with an order-reduced cached table must
        # not shortcut the membership test (x**(q mod q) == 1 for anything).
        non_member = 2
        while pow(non_member, P.q, P.p) == 1:  # pragma: no cover
            non_member += 1
        fastexp.precompute(non_member, P.p, P.q.bit_length(), order=P.q)
        assert not fastexp.is_member(non_member, P.q, P.p)


class TestCaches:
    def test_clear_caches(self):
        fastexp.precompute(P.g, P.p, P.q.bit_length(), order=P.q)
        assert fastexp.fixed_base(P.g, P.p) is not None
        fastexp.clear_caches()
        assert fastexp.fixed_base(P.g, P.p) is None

    def test_distinct_moduli_do_not_collide(self):
        fastexp.precompute(P.g, P.p, P.q.bit_length(), order=P.q)
        q2, p2, g2 = PARAMS_1024_160.q, PARAMS_1024_160.p, PARAMS_1024_160.g
        e = secrets.randbelow(q2)
        assert fastexp.mod_pow(g2, e, p2, order=q2) == pow(g2, e, p2)


class TestCacheSharing:
    """export_cache/install_cache: how worker pools inherit parent tables."""

    def test_export_install_round_trip(self):
        fastexp.precompute(P.g, P.p, P.q.bit_length(), order=P.q)
        blob = fastexp.export_cache()
        assert blob
        fastexp.clear_caches()
        assert fastexp.fixed_base(P.g, P.p) is None
        assert fastexp.install_cache(blob) == 1
        table = fastexp.fixed_base(P.g, P.p)
        assert table is not None and table.order == P.q
        e = secrets.randbelow(P.q)
        assert table.pow(e) == pow(P.g, e, P.p)

    def test_install_never_downgrades_a_wider_local_table(self):
        fastexp.precompute(P.g, P.p, 16)
        blob = fastexp.export_cache()  # narrow table in the blob
        fastexp.clear_caches()
        fastexp.precompute(P.g, P.p, P.q.bit_length(), order=P.q)
        wide = fastexp.fixed_base(P.g, P.p)
        assert fastexp.install_cache(blob) == 0
        assert fastexp.fixed_base(P.g, P.p) is wide

    def test_install_upgrades_a_narrower_local_table(self):
        fastexp.precompute(P.g, P.p, P.q.bit_length(), order=P.q)
        blob = fastexp.export_cache()
        fastexp.clear_caches()
        fastexp.precompute(P.g, P.p, 16)
        assert fastexp.install_cache(blob) == 1
        table = fastexp.fixed_base(P.g, P.p)
        assert table is not None and table.max_bits >= P.q.bit_length()

    def test_empty_cache_round_trips(self):
        assert fastexp.install_cache(fastexp.export_cache()) == 0
