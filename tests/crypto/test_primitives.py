"""Unit tests for the number-theoretic helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import primitives


class TestRandomness:
    def test_randbelow_range(self):
        for _ in range(100):
            assert 0 <= primitives.randbelow(7) < 7

    def test_randbelow_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            primitives.randbelow(0)

    def test_rand_range_bounds(self):
        for _ in range(100):
            assert 5 <= primitives.rand_range(5, 9) < 9

    def test_rand_range_rejects_empty(self):
        with pytest.raises(ValueError):
            primitives.rand_range(3, 3)

    def test_rand_bits_exact_width(self):
        for bits in (2, 8, 64, 160):
            assert primitives.rand_bits(bits).bit_length() == bits

    def test_rand_bits_rejects_tiny(self):
        with pytest.raises(ValueError):
            primitives.rand_bits(1)


class TestPrimality:
    KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, (1 << 61) - 1]
    KNOWN_COMPOSITES = [1, 4, 100, 7917, 561, 41041, 825265]  # incl. Carmichaels

    def test_known_primes(self):
        for p in self.KNOWN_PRIMES:
            assert primitives.is_probable_prime(p), p

    def test_known_composites(self):
        for n in self.KNOWN_COMPOSITES:
            assert not primitives.is_probable_prime(n), n

    def test_negative_and_zero(self):
        assert not primitives.is_probable_prime(0)
        assert not primitives.is_probable_prime(-7)

    def test_generate_prime_is_prime_and_sized(self):
        p = primitives.generate_prime(64)
        assert p.bit_length() == 64
        assert primitives.is_probable_prime(p)


class TestModular:
    def test_modinv_basic(self):
        assert (primitives.modinv(3, 7) * 3) % 7 == 1

    def test_modinv_large(self):
        m = (1 << 127) - 1
        a = 123456789
        assert (primitives.modinv(a, m) * a) % m == 1

    def test_modinv_noninvertible_raises(self):
        with pytest.raises(ValueError):
            primitives.modinv(6, 9)


class TestHashToInt:
    def test_deterministic(self):
        a = primitives.hash_to_int(b"x", b"y", modulus=10**9)
        b = primitives.hash_to_int(b"x", b"y", modulus=10**9)
        assert a == b

    def test_part_boundaries_matter(self):
        # (b"ab", b"c") must differ from (b"a", b"bc") — injective framing.
        assert primitives.hash_to_int(b"ab", b"c", modulus=1 << 128) != primitives.hash_to_int(
            b"a", b"bc", modulus=1 << 128
        )

    def test_within_modulus(self):
        for modulus in (2, 97, 1 << 160):
            assert 0 <= primitives.hash_to_int(b"data", modulus=modulus) < modulus

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            primitives.hash_to_int(b"x", modulus=1)


class TestIntBytes:
    @given(st.integers(min_value=0, max_value=1 << 512))
    @settings(max_examples=200)
    def test_roundtrip(self, n):
        assert primitives.bytes_to_int(primitives.int_to_bytes(n)) == n

    def test_zero_is_one_byte(self):
        assert primitives.int_to_bytes(0) == b"\x00"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            primitives.int_to_bytes(-1)


class TestConstantTimeEq:
    def test_equal(self):
        assert primitives.constant_time_eq(b"abc", b"abc")

    def test_unequal(self):
        assert not primitives.constant_time_eq(b"abc", b"abd")
        assert not primitives.constant_time_eq(b"abc", b"abcd")
