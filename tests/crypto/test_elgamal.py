"""ElGamal tests (the group-signature opening mechanism's cipher)."""

import pytest

from repro.crypto.elgamal import ElGamalCiphertext, elgamal_decrypt, elgamal_encrypt, elgamal_generate
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture(scope="module")
def key():
    return elgamal_generate(PARAMS_TEST_512)


def element(exponent: int) -> int:
    p, g = PARAMS_TEST_512.p, PARAMS_TEST_512.g
    return pow(g, exponent, p)


class TestEncryptDecrypt:
    def test_roundtrip(self, key):
        m = element(42)
        assert elgamal_decrypt(key, elgamal_encrypt(key.public, m)) == m

    def test_randomized_ciphertexts(self, key):
        m = element(7)
        a = elgamal_encrypt(key.public, m)
        b = elgamal_encrypt(key.public, m)
        assert (a.c1, a.c2) != (b.c1, b.c2)  # semantic security needs fresh r
        assert elgamal_decrypt(key, a) == elgamal_decrypt(key, b) == m

    def test_explicit_nonce_is_deterministic(self, key):
        m = element(9)
        a = elgamal_encrypt(key.public, m, nonce=12345)
        b = elgamal_encrypt(key.public, m, nonce=12345)
        assert (a.c1, a.c2) == (b.c1, b.c2)

    def test_wrong_key_garbles(self, key):
        other = elgamal_generate(PARAMS_TEST_512)
        m = element(1000)
        ct = elgamal_encrypt(key.public, m)
        assert elgamal_decrypt(other, ct) != m

    def test_rejects_non_subgroup_plaintext(self, key):
        with pytest.raises(ValueError):
            elgamal_encrypt(key.public, PARAMS_TEST_512.p - 1)

    def test_multiplicative_homomorphism(self, key):
        # Not used by WhoPay, but a strong correctness check of the algebra.
        p = PARAMS_TEST_512.p
        m1, m2 = element(3), element(5)
        c1 = elgamal_encrypt(key.public, m1)
        c2 = elgamal_encrypt(key.public, m2)
        product = ElGamalCiphertext(c1=(c1.c1 * c2.c1) % p, c2=(c1.c2 * c2.c2) % p)
        assert elgamal_decrypt(key, product) == (m1 * m2) % p

    def test_ciphertext_encoding_stable(self, key):
        ct = elgamal_encrypt(key.public, element(2), nonce=777)
        assert ct.encode() == ct.encode()
