"""Batch signing and the nonce pool (the reply-signing accelerators).

``dsa_sign_batch`` must be bit-identical to sequential ``dsa_sign`` —
the Montgomery batch inversion only amortizes cost, it never changes the
output.  ``DsaNoncePool`` trades that reproducibility for two-modmul
signing; its signatures still verify and its nonces never collide.
"""

import pytest

from repro.crypto import primitives
from repro.crypto.dsa import (
    DsaNoncePool,
    _batch_modinv,
    dsa_generate,
    dsa_sign,
    dsa_sign_batch,
    dsa_verify,
)
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture(scope="module")
def keypair():
    return dsa_generate(PARAMS_TEST_512)


class TestBatchModinv:
    def test_matches_individual_inverses(self):
        q = PARAMS_TEST_512.q
        values = [3, 7, q - 1, 123456789 % q, 2**64 % q]
        assert _batch_modinv(values, q) == [primitives.modinv(v, q) for v in values]

    def test_single_value(self):
        q = PARAMS_TEST_512.q
        assert _batch_modinv([5], q) == [primitives.modinv(5, q)]

    def test_every_product_is_unwound(self):
        # 200 values: the backwards peel must restore each inverse exactly.
        q = PARAMS_TEST_512.q
        values = [(i * i + 1) % q or 1 for i in range(1, 201)]
        for value, inverse in zip(values, _batch_modinv(values, q)):
            assert (value * inverse) % q == 1


class TestSignBatch:
    def test_bit_identical_to_sequential(self, keypair):
        messages = [f"reply-{i}".encode() for i in range(16)]
        batch = dsa_sign_batch(keypair, messages)
        for message, sig in zip(messages, batch):
            solo = dsa_sign(keypair, message)
            assert (sig.r, sig.s, sig.commit) == (solo.r, solo.s, solo.commit)

    def test_all_verify(self, keypair):
        messages = [bytes([i]) * (i + 1) for i in range(8)]
        for message, sig in zip(messages, dsa_sign_batch(keypair, messages)):
            assert dsa_verify(keypair.public, message, sig)

    def test_empty_batch(self, keypair):
        assert dsa_sign_batch(keypair, []) == []

    def test_precomputed_digests_must_match_messages(self, keypair):
        with pytest.raises(ValueError):
            dsa_sign_batch(keypair, [b"a", b"b"], digests=[1])


class TestNoncePool:
    def test_ensure_counts_and_is_idempotent(self, keypair):
        pool = DsaNoncePool(keypair)
        assert pool.ensure(5) == 5
        assert len(pool) == 5
        assert pool.ensure(3) == 0  # already covered
        assert pool.ensure(8) == 3  # top up the difference
        assert pool.generated == 8
        assert pool.refills == 2

    def test_pooled_signatures_verify(self, keypair):
        pool = DsaNoncePool(keypair)
        pool.ensure(4)
        for i in range(4):
            message = f"pooled-{i}".encode()
            sig = dsa_sign(keypair, message, pool=pool)
            assert dsa_verify(keypair.public, message, sig)
        assert len(pool) == 0
        assert pool.served == 4

    def test_dry_pool_falls_back_to_deterministic_path(self, keypair):
        pool = DsaNoncePool(keypair)  # never filled
        sig = dsa_sign(keypair, b"dry", pool=pool)
        solo = dsa_sign(keypair, b"dry")
        assert (sig.r, sig.s) == (solo.r, solo.s)  # RFC 6979 path taken
        assert dsa_verify(keypair.public, b"dry", sig)

    def test_wrong_key_pool_rejected(self, keypair):
        other = dsa_generate(PARAMS_TEST_512)
        pool = DsaNoncePool(other)
        pool.ensure(1)
        with pytest.raises(ValueError):
            dsa_sign(keypair, b"msg", pool=pool)

    def test_nonces_are_distinct(self, keypair):
        pool = DsaNoncePool(keypair)
        pool.ensure(64)
        nonces = {k for k, _, _ in pool._triples}
        assert len(nonces) == 64

    def test_distinct_pools_never_share_nonces(self, keypair):
        # Fresh random salt per pool: two pools over the same key must not
        # produce overlapping chains (the k-reuse key-leak pitfall).
        a, b = DsaNoncePool(keypair), DsaNoncePool(keypair)
        a.ensure(32)
        b.ensure(32)
        assert not {k for k, _, _ in a._triples} & {k for k, _, _ in b._triples}

    def test_fixed_salt_makes_the_chain_reproducible(self, keypair):
        a = DsaNoncePool(keypair, salt=b"\x01" * 16)
        b = DsaNoncePool(keypair, salt=b"\x01" * 16)
        a.ensure(4)
        b.ensure(4)
        assert a._triples == b._triples

    def test_triples_carry_valid_inverses(self, keypair):
        q = keypair.params.q
        pool = DsaNoncePool(keypair)
        pool.ensure(6)
        for k, commit, k_inv in pool._triples:
            assert (k * k_inv) % q == 1
            assert commit == keypair.params.pow_g(k)
