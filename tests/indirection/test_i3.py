"""i3 indirection overlay tests (Section 5.2, approach 3 substrate)."""

import pytest

from repro.indirection.i3 import I3Overlay, TriggerError
from repro.net.node import Node
from repro.net.transport import NetworkError, Transport


@pytest.fixture()
def overlay():
    transport = Transport()
    i3 = I3Overlay(transport, size=3)
    return transport, i3


def make_receiver(transport, address):
    node = Node(transport, address)
    node.on("ping", lambda src, payload: {"pong": payload, "seen_src": src})
    return node


class TestTriggers:
    def test_mint_handle_deterministic(self):
        h1, t1 = I3Overlay.mint_handle(b"secret")
        h2, t2 = I3Overlay.mint_handle(b"secret")
        assert (h1, t1) == (h2, t2)
        h3, _ = I3Overlay.mint_handle(b"other")
        assert h3 != h1

    def test_insert_and_send(self, overlay):
        transport, i3 = overlay
        make_receiver(transport, "owner")
        handle, token = I3Overlay.mint_handle(b"coin-secret")
        i3.insert_trigger(handle, token, "owner", src="owner")
        response = i3.send("payer", handle, "ping", 7)
        assert response["pong"] == 7

    def test_sender_address_hidden(self, overlay):
        # The receiver sees the i3 server as the message source — the
        # pseudonymity property the owner-anonymous extension relies on.
        transport, i3 = overlay
        make_receiver(transport, "owner")
        handle, token = I3Overlay.mint_handle(b"s")
        i3.insert_trigger(handle, token, "owner", src="owner")
        response = i3.send("payer", handle, "ping", 1)
        assert response["seen_src"].startswith("i3-")
        assert response["seen_src"] != "payer"

    def test_wrong_token_cannot_claim(self, overlay):
        transport, i3 = overlay
        handle, _token = I3Overlay.mint_handle(b"s")
        with pytest.raises(TriggerError):
            i3.insert_trigger(handle, b"wrong-token", "mallory", src="mallory")

    def test_owner_can_reclaim_and_retarget(self, overlay):
        transport, i3 = overlay
        make_receiver(transport, "home-1")
        make_receiver(transport, "home-2")
        handle, token = I3Overlay.mint_handle(b"s")
        i3.insert_trigger(handle, token, "home-1", src="home-1")
        i3.insert_trigger(handle, token, "home-2", src="home-2")  # retarget
        response = i3.send("payer", handle, "ping", 1)
        # Delivered to home-2 now (the trigger moved with its owner).
        assert response["pong"] == 1

    def test_hijack_rejected(self, overlay):
        transport, i3 = overlay
        make_receiver(transport, "owner")
        handle, token = I3Overlay.mint_handle(b"s")
        i3.insert_trigger(handle, token, "owner", src="owner")
        # Someone who knows only the (public) handle cannot steal it: any
        # token they invent fails the preimage check.
        with pytest.raises(TriggerError):
            i3.insert_trigger(handle, b"guess", "mallory", src="mallory")

    def test_remove_trigger(self, overlay):
        transport, i3 = overlay
        make_receiver(transport, "owner")
        handle, token = I3Overlay.mint_handle(b"s")
        i3.insert_trigger(handle, token, "owner", src="owner")
        i3.remove_trigger(handle, token, src="owner")
        with pytest.raises(NetworkError):
            i3.send("payer", handle, "ping", 1)

    def test_remove_requires_token(self, overlay):
        transport, i3 = overlay
        make_receiver(transport, "owner")
        handle, token = I3Overlay.mint_handle(b"s")
        i3.insert_trigger(handle, token, "owner", src="owner")
        with pytest.raises(TriggerError):
            i3.remove_trigger(handle, b"bad", src="mallory")

    def test_send_without_trigger_fails(self, overlay):
        _transport, i3 = overlay
        handle, _token = I3Overlay.mint_handle(b"unregistered")
        with pytest.raises(NetworkError):
            i3.send("payer", handle, "ping", 1)

    def test_offline_receiver_surfaces_as_failure(self, overlay):
        transport, i3 = overlay
        receiver = make_receiver(transport, "owner")
        handle, token = I3Overlay.mint_handle(b"s")
        i3.insert_trigger(handle, token, "owner", src="owner")
        receiver.go_offline()
        with pytest.raises(NetworkError):
            i3.send("payer", handle, "ping", 1)
