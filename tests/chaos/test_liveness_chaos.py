"""Detector-only chaos campaign: shard kills repaired by heartbeat silence.

The federation sweep (``test_federation_chaos.py``) leans on the legacy
crash-hook supervision — the transport restarts a dying shard before its
caller even sees the failure.  This campaign removes that crutch
entirely: shards are killed abruptly mid-storm and the **only** repair
path is the realistic one — heartbeats stop, the phi-accrual detector
marks the shard DEAD, its lease lapses, and :class:`LeaseGatedSupervision`
restarts it from its journal and re-drives orphaned handoffs.  Peers run
behind circuit breakers and queue payments aimed at a dark shard, then
drain the queue after recovery.

The storm runs on pure virtual time with no fault plan and no churn, so
each seed is bit-identical run to run; the sweep asserts completion,
conservation, exactly-once queue drains, per-shard audit health, and that
every kill was detected within the configured phi-threshold window.

``WHOPAY_CHAOS_SEED`` / ``WHOPAY_CRASH_SAMPLES`` widen the sweep in CI.
"""

import os
import random
from collections import Counter
from contextlib import contextmanager

import pytest

from repro.core.errors import ProtocolError, ServiceUnavailable
from repro.crypto import primitives
from repro.core.network import BrokerTopology, PeerConfig, WhoPayNetwork
from repro.core.supervision import LeaseGatedSupervision
from repro.crypto.params import PARAMS_TEST_512
from repro.net.liveness import BreakerConfig, LivenessConfig
from repro.net.rpc import CircuitOpen, RetryPolicy
from repro.net.transport import NetworkError
from repro.store.audit import audit_broker

pytestmark = pytest.mark.chaos

SEED = int(os.environ.get("WHOPAY_CHAOS_SEED", "11"))
CRASH_SAMPLES = int(os.environ.get("WHOPAY_CRASH_SAMPLES", "3"))

CHAOS_POLICY = RetryPolicy(max_attempts=6, base_delay=0.01, multiplier=2.0, max_delay=0.1)
LIVENESS = LivenessConfig(heartbeat_interval=0.5, phi_threshold=4.0, lease_duration=2.0)
BREAKERS = BreakerConfig(failure_threshold=2, reset_timeout=2.0, probe_jitter=0.25)

SHARDS = 3
N_PEERS = 4
BALANCE = 50
SEED_COINS = 2
N_PAYMENTS = 120
PURCHASE_EVERY = 4
TICK = 1.0  # virtual seconds per payment round — the detector's quantum


class _SeededSecrets:
    """Drop-in for the ``secrets`` module backed by a seeded PRNG.

    Coin keys decide which shard a coin homes on, so real OS randomness
    makes the storm's traffic split — and hence its summary — vary between
    runs of the same seed.  Substituting seeded randomness for key
    generation (tests only; signatures still verify) is what makes the
    bit-identity assertion meaningful.
    """

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def randbelow(self, n: int) -> int:
        return self._rng.randrange(n)

    def randbits(self, k: int) -> int:
        return self._rng.getrandbits(k)

    def token_bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    def token_hex(self, n: int) -> str:
        return self._rng.randbytes(n).hex()


@contextmanager
def seeded_keys(seed: int):
    original = primitives.secrets
    primitives.secrets = _SeededSecrets(seed)
    try:
        yield
    finally:
        primitives.secrets = original


def kill_schedule(seed: int, samples: int) -> dict[int, int]:
    """payment index -> shard to kill, spaced so each failover can settle."""
    rng = random.Random(seed)
    candidates = list(range(20, 96, 16))  # spacing > detection + drain time
    picked = sorted(rng.sample(candidates, min(samples, len(candidates))))
    return {index: rng.randrange(SHARDS) for index in picked}


def run_storm(seed: int, store_root, samples: int = CRASH_SAMPLES):
    """Deterministic payment storm with detector-driven kills only."""
    with seeded_keys(seed * 7919 + 1):
        return _run_storm(seed, store_root, samples)


def _run_storm(seed: int, store_root, samples: int):
    net = WhoPayNetwork(
        params=PARAMS_TEST_512,
        retry_policy=CHAOS_POLICY,
        store_dir=store_root,
        topology=BrokerTopology(shards=SHARDS),
        breaker_config=BREAKERS,
    )
    peers = [net.add_peer(f"p{i}", PeerConfig(balance=BALANCE)) for i in range(N_PEERS)]
    for i, peer in enumerate(peers):
        coins = [peer.purchase() for _ in range(SEED_COINS)]
        peer.issue(peers[(i + 1) % N_PEERS].address, coins[0].coin_y)

    policy = net.supervise_broker(LeaseGatedSupervision(LIVENESS))
    assert not net.transport.crash_handlers  # no transport magic anywhere
    kills = kill_schedule(seed, samples)

    methods: Counter = Counter()
    skipped_purchases = 0
    drained = 0
    for k in range(N_PAYMENTS):
        if k in kills:
            net.kill_shard(kills[k])
        payer = peers[k % N_PEERS]
        payee = peers[(k + 1) % N_PEERS]
        if k % PURCHASE_EVERY == 0:
            try:
                fresh = payer.purchase()
                payer.issue(payee.address, fresh.coin_y)
            except (NetworkError, ServiceUnavailable, CircuitOpen):
                skipped_purchases += 1  # the payer's home shard is dark
        try:
            methods[payer.pay(payee.address)] += 1
        except ProtocolError:
            methods["failed"] += 1
        net.advance(TICK)
        drained += net.drain_queued_payments()

    # Let the last failover land and the final queues empty out.
    for _ in range(24):
        if len(policy.events) == len(kills) and not any(
            p.payment_queue for p in peers
        ):
            break
        net.advance(TICK)
        drained += net.drain_queued_payments()

    for peer in peers:
        peer.sync_with_broker()
    for peer in peers:
        for coin_y in list(peer.wallet):
            peer.deposit(coin_y, payout_to=peer.address)
    leftover = net.complete_handoffs()
    return net, peers, policy, kills, {
        "methods": methods,
        "skipped_purchases": skipped_purchases,
        "drained": drained,
        "leftover_handoffs": leftover,
        "detections": [
            (e.address, e.last_seen, e.detected_at, e.redriven_handoffs)
            for e in policy.events
        ],
        "balances": {p.address: net.broker.balance(p.address) for p in peers},
    }


def assert_storm_healthy(net, peers, policy, kills, summary):
    assert sum(summary["methods"].values()) == N_PAYMENTS
    assert summary["methods"]["failed"] == 0  # every payment completed
    # Every queued payment drained exactly once, and nothing is still queued.
    assert summary["drained"] == summary["methods"]["queued"]
    assert not any(p.payment_queue for p in peers)
    # Every kill was detected and repaired within the configured window.
    assert len(policy.events) == len(kills)
    quantum = TICK + LIVENESS.heartbeat_interval
    for latency in policy.detection_latencies():
        assert 0.0 < latency <= LIVENESS.detection_window() + quantum
    assert net.broker_restarts == len(kills)
    # Exactly-once handoffs: nothing pending, nothing double-applied.
    assert not any(shard.pending_handoffs for shard in net.shards)
    assert net.broker.verify_conservation(N_PEERS * BALANCE)
    assert not net.broker.fraud_events
    assert all(not p.wallet for p in peers)
    for shard in net.shards:
        report = audit_broker(shard)
        assert report.ok, (shard.address, report.failures)


class TestDetectorOnlyKillSweep:
    def test_storm_survives_detector_driven_failovers(self, tmp_path):
        net, peers, policy, kills, summary = run_storm(SEED, tmp_path / "storm")
        assert kills  # the schedule actually killed shards
        assert_storm_healthy(net, peers, policy, kills, summary)

    def test_same_seed_runs_are_bit_identical(self, tmp_path):
        first = run_storm(SEED, tmp_path / "a")[4]
        second = run_storm(SEED, tmp_path / "b")[4]
        assert first == second

    def test_seed_sweep(self, tmp_path):
        for offset in range(1, CRASH_SAMPLES):
            seed = SEED + offset
            net, peers, policy, kills, summary = run_storm(
                seed, tmp_path / f"seed{seed}", samples=2
            )
            assert_storm_healthy(net, peers, policy, kills, summary)
