"""Chaos suite: full payment lifecycles under scheduled network faults.

Every test drives real protocol flows through a :class:`FaultPlan` —
request/reply loss, duplicate delivery, latency jitter, and a broker
partition window — and asserts the system-level guarantees the RPC layer
exists to provide:

* every payment in the workload completes (retries + graceful fallback);
* the broker's conservation invariant holds no matter what the network did;
* no coin is stuck once the network heals and peers resynchronize;
* identical fault seeds replay to bit-identical outcomes;
* a retried mutating request executes its handler exactly once.

The seed is taken from ``WHOPAY_CHAOS_SEED`` so CI can sweep a matrix.
"""

import os
from collections import Counter

import pytest

from repro.core.errors import ServiceUnavailable
from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512
from repro.net.rpc import RetryPolicy
from repro.net.transport import FaultPlan

pytestmark = pytest.mark.chaos

SEED = int(os.environ.get("WHOPAY_CHAOS_SEED", "7"))

#: Persistent enough to survive 5%+5% loss, tiny virtual backoffs.
CHAOS_POLICY = RetryPolicy(max_attempts=6, base_delay=0.01, multiplier=2.0, max_delay=0.1)

N_PEERS = 4
BALANCE = 50
SEED_COINS = 6  # purchased per peer up front
SEED_ISSUES = 2  # of those, issued to the next peer

#: The broker is unreachable during [PARTITION_START, PARTITION_END) —
#: payment k runs at virtual time k, so payments 40..79 are inside.
PARTITION_START = 40.0
PARTITION_END = 80.0
PROBE_AT = 50  # payment index at which we prove the broker is really cut off


def run_workload(seed: int, n_payments: int):
    """Seed wallets, run a round-robin payment storm under faults, heal, drain.

    Returns ``(net, peers, plan, methods)`` with every wallet already
    deposited back to named accounts.
    """
    net = WhoPayNetwork(params=PARAMS_TEST_512, retry_policy=CHAOS_POLICY)
    peers = [net.add_peer(f"p{i}", PeerConfig(balance=BALANCE)) for i in range(N_PEERS)]
    for i, peer in enumerate(peers):
        coins = [peer.purchase() for _ in range(SEED_COINS)]
        for state in coins[:SEED_ISSUES]:
            peer.issue(peers[(i + 1) % N_PEERS].address, state.coin_y)

    plan = FaultPlan(
        seed=seed,
        request_loss=0.05,
        response_loss=0.05,
        duplicate_rate=0.05,
        latency_jitter=0.01,
    ).partition("broker", "*", start=PARTITION_START, end=PARTITION_END)
    net.install_faults(plan)

    methods: Counter = Counter()
    for k in range(n_payments):
        payer = peers[k % N_PEERS]
        payee = peers[(k + 1) % N_PEERS]
        if k == PROBE_AT and n_payments > PROBE_AT:
            # Inside the partition window the broker really is unreachable:
            # a direct broker operation exhausts its retries...
            with pytest.raises(ServiceUnavailable):
                payer.purchase()
        # ...but payments still complete via broker-free methods.
        methods[payer.pay(payee.address)] += 1
        net.advance(1.0)

    # Heal, resynchronize, and drain every wallet back to named accounts.
    net.install_faults(None)
    for peer in peers:
        peer.sync_with_broker()
    for peer in peers:
        for coin_y in list(peer.wallet):
            peer.deposit(coin_y, payout_to=peer.address)
    return net, peers, plan, methods


def ledger_fingerprint(net, plan):
    """Everything a replayed run must reproduce bit-identically.

    Byte counters are excluded on purpose: bignum signature sizes vary run
    to run.  Message *counts*, ledger state, and fault-schedule stats are
    pure functions of (seed, request sequence).
    """
    return (
        net.broker.export_ledger(),
        net.transport.total_messages,
        net.transport.messages_dropped,
        plan.stats.as_dict(),
    )


class TestChaosWorkload:
    def test_200_payments_complete_and_conserve(self):
        net, peers, plan, methods = run_workload(SEED, n_payments=200)

        # Every payment completed despite loss, duplicates, and the window.
        assert sum(methods.values()) == 200
        # The fault schedule actually did damage along every dimension.
        assert plan.stats.requests_dropped > 0
        assert plan.stats.replies_dropped > 0
        assert plan.stats.duplicates_delivered > 0
        assert plan.stats.partition_blocks > 0
        assert plan.stats.jitter_accrued > 0.0
        # Retries genuinely recovered calls (not just never-failed luck).
        recovered = sum(
            p.broker_client.stats.recovered + p.peer_client.stats.recovered for p in peers
        )
        assert recovered > 0
        # Dedupe served replays instead of re-running handlers.
        assert net.broker.replays_served + sum(p.replays_served for p in peers) > 0

        # Conservation: value only moved, never appeared or vanished.
        total = N_PEERS * BALANCE
        assert net.broker.verify_conservation(total)
        assert not net.broker.fraud_events

        # No stuck coins: every wallet drained after the heal + sync.
        assert all(not p.wallet for p in peers)

    def test_identical_seeds_replay_bit_identically(self):
        first = run_workload(SEED, n_payments=60)
        second = run_workload(SEED, n_payments=60)
        assert ledger_fingerprint(first[0], first[2]) == ledger_fingerprint(
            second[0], second[2]
        )

    def test_different_seeds_diverge(self):
        first = run_workload(SEED, n_payments=60)
        second = run_workload(SEED + 1, n_payments=60)
        assert (
            first[2].stats.as_dict() != second[2].stats.as_dict()
            or first[0].transport.total_messages != second[0].transport.total_messages
        )


class TestRetriedRequestDedupe:
    """Regression: a retried mutating request must apply exactly once."""

    def _network(self):
        net = WhoPayNetwork(params=PARAMS_TEST_512, retry_policy=CHAOS_POLICY)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        return net, alice, bob

    def test_purchase_reply_lost_debits_once(self):
        net, alice, _bob = self._network()
        plan = FaultPlan(seed=SEED)
        net.install_faults(plan)
        plan.scripted_reply_drops = 1
        state = alice.purchase()
        assert state.coin_y in alice.owned
        assert net.broker.counts.purchases == 1  # handler ran exactly once
        assert net.broker.replays_served == 1  # the retry was answered from cache
        assert net.broker.balance("alice") == 9  # debited exactly once
        assert net.broker.verify_conservation(10)

    def test_deposit_reply_lost_credits_once(self):
        net, alice, bob = self._network()
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        plan = FaultPlan(seed=SEED)
        net.install_faults(plan)
        plan.scripted_reply_drops = 1
        credited = bob.deposit(state.coin_y, payout_to="bob")
        assert credited == 1
        assert net.broker.counts.deposits == 1
        assert net.broker.balance("bob") == 1  # credited exactly once
        assert not net.broker.fraud_events  # no DoubleSpendDetected from the retry
        assert net.broker.verify_conservation(10)

    def test_transfer_leg_reply_lost_rebinds_once(self):
        net, alice, bob = self._network()
        carol = net.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        plan = FaultPlan(seed=SEED)
        net.install_faults(plan)
        plan.scripted_reply_drops = 1
        bob.transfer("carol", state.coin_y)
        # Exactly one holder, and the owner's binding agrees with it.
        assert state.coin_y not in bob.wallet
        assert state.coin_y in carol.wallet
        binding = alice.owned[state.coin_y].binding
        assert binding.holder_y == carol.wallet[state.coin_y].binding.holder_y
        assert net.broker.verify_conservation(10)
