"""Chaos suite: killing a federation shard in the middle of a payment storm.

The single-broker sweep (``test_broker_restart.py``) pins down recovery of
a standalone mint; here the target is the *federation*: a 3-shard broker
behind the ShardRouter, with cross-shard purchases, deposits, and top-ups
riding two-step handoffs.  Shard 0 is armed with crash points and dies at
sampled fsync boundaries mid-storm — including between a journaled
``handoff_begin`` and its commit, and while serving another shard's
prepare.  After every death the supervised restart must leave the
federation with:

* every payment completed (idempotent retries, journal-refilled dedupe);
* exactly-once handoffs — re-driven prepares are replay no-ops, so no
  double-mint and no double-debit;
* no stuck value: after ``complete_handoffs()`` drains any orphan, every
  shard passes the invariant audit and the router conserves total value.

Unlike the single-broker sweep, coin keys are random, so the *split* of
traffic across shards (and hence shard 0's exact boundary census) varies
between runs.  The sweep therefore fires at conservative indices — small
fractions of the census count — that every run is certain to reach, and
asserts system-level outcomes rather than per-site replay identity.

``WHOPAY_CRASH_SAMPLES`` widens the sweep in CI.
"""

import os
from collections import Counter

import pytest

from repro.core.network import BrokerTopology, PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512
from repro.net.rpc import RetryPolicy
from repro.net.transport import FaultPlan, NodeOffline
from repro.store.audit import audit_broker
from repro.store.crashpoints import CrashPointPlan

pytestmark = pytest.mark.chaos

SEED = int(os.environ.get("WHOPAY_CHAOS_SEED", "11"))
CRASH_SAMPLES = int(os.environ.get("WHOPAY_CRASH_SAMPLES", "3"))

CHAOS_POLICY = RetryPolicy(max_attempts=6, base_delay=0.01, multiplier=2.0, max_delay=0.1)

SHARDS = 3
TARGET_SHARD = 0  # the one armed to die
N_PEERS = 4
BALANCE = 50
SEED_COINS = 4
N_PAYMENTS = 120
CHURN_EVERY = 10  # rotate which peer is offline (downtime traffic + syncs)
PURCHASE_EVERY = 4  # fresh mints keep the cross-shard handoff path hot


def run_storm(seed: int, store_root, n_payments: int = N_PAYMENTS, fire_at: int | None = None):
    """Seeded payment storm against a durable 3-shard federation.

    Shard ``TARGET_SHARD`` carries the crash-point plan; all shards are
    supervised.  Returns ``(net, peers, crash_plan, methods)`` with every
    wallet drained back to named accounts and all handoffs completed.
    """
    net = WhoPayNetwork(
        params=PARAMS_TEST_512,
        retry_policy=CHAOS_POLICY,
        store_dir=store_root,
        topology=BrokerTopology(shards=SHARDS),
    )
    peers = [net.add_peer(f"p{i}", PeerConfig(balance=BALANCE)) for i in range(N_PEERS)]
    for i, peer in enumerate(peers):
        coins = [peer.purchase() for _ in range(SEED_COINS)]
        peer.issue(peers[(i + 1) % N_PEERS].address, coins[0].coin_y)

    # Arm after setup so the storm's own fsync boundaries are enumerated.
    crash_plan = CrashPointPlan(fire_at=fire_at, seed=seed)
    net.arm_crash_points(crash_plan, shard=TARGET_SHARD)
    net.supervise_broker()
    fault_plan = FaultPlan(
        seed=seed,
        request_loss=0.05,
        response_loss=0.05,
        duplicate_rate=0.05,
    )
    net.install_faults(fault_plan)

    methods: Counter = Counter()
    offline: int | None = None
    for k in range(n_payments):
        if k % CHURN_EVERY == 0:
            if offline is not None:
                peers[offline].rejoin()
            offline = (k // CHURN_EVERY) % N_PEERS
            peers[offline].depart()
        online = [i for i in range(N_PEERS) if i != offline]
        payer = peers[online[k % len(online)]]
        payee = peers[online[(k + 1) % len(online)]]
        if k % PURCHASE_EVERY == 0:
            # Fresh mint: a random coin key, 2/3 odds of a cross-shard
            # purchase handoff from the payer's account home.
            fresh = payer.purchase()
            payer.issue(payee.address, fresh.coin_y)
        methods[payer.pay(payee.address)] += 1
        net.advance(1.0)
    if offline is not None:
        peers[offline].rejoin()

    net.install_faults(None)
    for peer in peers:
        peer.sync_with_broker()
    # Drain wallets: deposits route to each coin's home shard and hand the
    # credit off to the depositor's account home.
    for peer in peers:
        for coin_y in list(peer.wallet):
            peer.deposit(coin_y, payout_to=peer.address)
    net.complete_handoffs()
    return net, peers, crash_plan, methods


def assert_federation_healthy(net, peers, methods, n_payments):
    assert sum(methods.values()) == n_payments
    assert not any(shard.pending_handoffs for shard in net.shards)
    assert net.broker.verify_conservation(N_PEERS * BALANCE)
    assert not net.broker.fraud_events
    assert all(not p.wallet for p in peers)
    for shard in net.shards:
        report = audit_broker(shard)
        assert report.ok, (shard.address, report.failures)
    # The storm actually exercised the federation: handoffs were served,
    # and more than one shard minted coins.
    assert sum(shard.counts.handoffs for shard in net.shards) > 0
    minters = [s for s in net.shards if s.export_ledger()["coins_minted"] > 0]
    assert len(minters) > 1


class TestShardKillSweep:
    def test_sampled_crash_points_leave_the_federation_consistent(self, tmp_path):
        census_run = run_storm(SEED, tmp_path / "census")
        census = census_run[2]
        assert census.fired is None
        assert census.crossings > 40  # shard 0 alone crosses many boundaries
        assert {"journal.append.pre_sync", "journal.append.post_sync"} <= set(
            census.sites
        )
        assert_federation_healthy(census_run[0], census_run[1], census_run[3], N_PAYMENTS)

        # Conservative indices: the traffic split is randomized, so fire
        # within the first half of the census count — every run gets there.
        ceiling = census.crossings // 2
        indices = sorted({int(ceiling * (i + 0.5) / CRASH_SAMPLES) for i in range(CRASH_SAMPLES)})
        for index in indices:
            net, peers, plan, methods = run_storm(SEED, tmp_path / f"fire{index}", fire_at=index)
            label = f"crash point #{index}"
            assert plan.fired is not None, label
            assert net.broker_restarts >= 1, label
            assert net.last_recovery is not None
            audit = net.last_recovery.audit
            assert audit is not None and audit.ok, label
            assert_federation_healthy(net, peers, methods, N_PAYMENTS)

    def test_crash_between_handoff_begin_and_commit_strands_no_value(self, tmp_path):
        # Fire shard 0 at its very first storm boundary: with a purchase at
        # k=0, that is a handoff_begin or the staged commit right after it.
        # Either way the retry (same handoff id) or the end-of-storm
        # complete_handoffs() must deliver the value exactly once.
        net, peers, plan, methods = run_storm(SEED, tmp_path / "early", fire_at=0)
        assert plan.fired is not None
        assert plan.fired.site.startswith("journal.append")
        assert net.broker_restarts >= 1
        assert_federation_healthy(net, peers, methods, N_PAYMENTS)


class TestUnsupervisedShardKill:
    def test_manual_shard_restart_resumes_the_storm(self, tmp_path):
        net = WhoPayNetwork(
            params=PARAMS_TEST_512,
            retry_policy=CHAOS_POLICY,
            store_dir=tmp_path,
            topology=BrokerTopology(shards=SHARDS),
        )
        peers = [net.add_peer(f"p{i}", PeerConfig(balance=BALANCE)) for i in range(N_PEERS)]
        for peer in peers:
            peer.purchase()
        net.arm_crash_points(CrashPointPlan(fire_at=0, seed=SEED), shard=TARGET_SHARD)
        # Hammer until an operation lands on the armed shard and kills it.
        with pytest.raises(NodeOffline):
            for peer in peers:
                for _ in range(8):
                    peer.purchase()

        result = net.restart_shard(TARGET_SHARD)
        assert result.audit is not None and result.audit.ok
        assert net.complete_handoffs() >= 0
        state = peers[0].purchase()  # the federation serves again
        peers[0].issue(peers[1].address, state.coin_y)
        assert peers[1].deposit(state.coin_y, payout_to=peers[1].address) == 1
        for peer in peers:
            peer.sync_with_broker()
        for peer in peers:
            for coin_y in list(peer.wallet):
                peer.deposit(coin_y, payout_to=peer.address)
        assert net.complete_handoffs() >= 0
        assert net.broker.verify_conservation(N_PEERS * BALANCE)
        for shard in net.shards:
            assert audit_broker(shard).ok
