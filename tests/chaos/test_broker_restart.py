"""Chaos suite: broker death and recovery in the middle of a payment storm.

The crash-point sweep is the PR's acceptance test.  A counting run first
enumerates every fsync boundary the broker's store crosses during a
200-payment storm under 5% request/response loss plus duplicate delivery,
with a snapshot+compaction dropped into the middle of the storm.  The sweep
then re-runs the identical workload with the broker armed to die at sampled
boundaries — every class of death: before a record is durable, after it is
durable but before the reply left, mid-snapshot, mid-compaction — and
asserts the system-level guarantees:

* the supervised restart is invisible to clients: every payment completes
  through idempotent retries, and a retry whose original executed before
  the crash is served from the journal-refilled replay cache;
* the recovered broker passes the invariant audit and conserves value;
* the same (workload seed, crash point) replays bit-identically.

``WHOPAY_CRASH_SAMPLES`` widens the sweep in CI; the tier-1 default keeps
the suite fast.
"""

import os
from collections import Counter

import pytest

from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512
from repro.net.rpc import RetryPolicy
from repro.net.transport import FaultPlan, NodeOffline
from repro.store.audit import audit_broker
from repro.store.crashpoints import CrashPointPlan, SimulatedCrash

pytestmark = pytest.mark.chaos

SEED = int(os.environ.get("WHOPAY_CHAOS_SEED", "7"))
CRASH_SAMPLES = int(os.environ.get("WHOPAY_CRASH_SAMPLES", "6"))

CHAOS_POLICY = RetryPolicy(max_attempts=6, base_delay=0.01, multiplier=2.0, max_delay=0.1)

N_PEERS = 4
BALANCE = 50
SEED_COINS = 6
SEED_ISSUES = 2
N_PAYMENTS = 200
SNAPSHOT_AT = N_PAYMENTS // 2  # mid-storm snapshot + journal compaction
CHURN_EVERY = 10  # rotate which peer is offline (downtime traffic + rejoin syncs)
PURCHASE_EVERY = 5  # fresh mint + issue mixed into the storm


def run_storm(seed: int, store_root, n_payments: int = N_PAYMENTS, fire_at: int | None = None):
    """Seeded payment storm against a durable, supervised, crashable broker.

    Returns ``(net, peers, crash_plan, fault_plan, methods)`` with every
    wallet drained back to named accounts.
    """
    net = WhoPayNetwork(
        params=PARAMS_TEST_512, retry_policy=CHAOS_POLICY, store_dir=store_root
    )
    peers = [net.add_peer(f"p{i}", PeerConfig(balance=BALANCE)) for i in range(N_PEERS)]
    for i, peer in enumerate(peers):
        coins = [peer.purchase() for _ in range(SEED_COINS)]
        for state in coins[:SEED_ISSUES]:
            peer.issue(peers[(i + 1) % N_PEERS].address, state.coin_y)

    # Arm after setup so crash-point indices enumerate the storm's own
    # fsync boundaries, identically for every run with this seed.
    crash_plan = CrashPointPlan(fire_at=fire_at, seed=seed)
    net.arm_crash_points(crash_plan)
    net.supervise_broker()
    fault_plan = FaultPlan(
        seed=seed,
        request_loss=0.05,
        response_loss=0.05,
        duplicate_rate=0.05,
    )
    net.install_faults(fault_plan)

    # Churn keeps the broker in the storm: one peer is offline at any time,
    # so payments with that peer's coins go through downtime transfers, and
    # every rotation triggers a rejoin synchronization.  Periodic fresh
    # purchases keep the mint path hot too.
    methods: Counter = Counter()
    offline: int | None = None
    for k in range(n_payments):
        if k % CHURN_EVERY == 0:
            if offline is not None:
                peers[offline].rejoin()
            offline = (k // CHURN_EVERY) % N_PEERS
            peers[offline].depart()
        online = [i for i in range(N_PEERS) if i != offline]
        payer = peers[online[k % len(online)]]
        payee = peers[online[(k + 1) % len(online)]]
        if k == SNAPSHOT_AT:
            try:
                net.snapshot_broker()
            except SimulatedCrash:
                # Died mid-snapshot: no transport supervisor on this local
                # call path, so the operator restarts the broker by hand.
                net.restart_broker()
        if k % PURCHASE_EVERY == 0:
            fresh = payer.purchase()
            payer.issue(payee.address, fresh.coin_y)
        methods[payer.pay(payee.address)] += 1
        net.advance(1.0)
    if offline is not None:
        peers[offline].rejoin()

    net.install_faults(None)
    for peer in peers:
        peer.sync_with_broker()
    for peer in peers:
        for coin_y in list(peer.wallet):
            peer.deposit(coin_y, payout_to=peer.address)
    return net, peers, crash_plan, fault_plan, methods


def fingerprint(net, fault_plan):
    """Replay-comparable outcome (byte counters excluded: bignum sizes vary)."""
    return (
        net.broker.export_ledger(),
        net.broker_restarts,
        net.transport.total_messages,
        net.transport.messages_dropped,
        net.transport.crashes_simulated,
        fault_plan.stats.as_dict(),
    )


def assert_run_healthy(net, peers, methods, n_payments):
    assert sum(methods.values()) == n_payments
    assert net.broker.verify_conservation(N_PEERS * BALANCE)
    assert not net.broker.fraud_events
    assert all(not p.wallet for p in peers)
    report = audit_broker(net.broker)
    assert report.ok, report.failures


class TestCrashPointSweep:
    def test_every_sampled_crash_point_recovers_invisibly(self, tmp_path):
        census_run = run_storm(SEED, tmp_path / "census")
        census = census_run[2]
        assert census.fired is None
        assert census.crossings > 100  # the storm crosses many boundaries
        # Every distinguishable kind of death is in the enumeration.
        assert {
            "journal.append.pre_sync",
            "journal.append.post_sync",
            "snapshot.pre_sync",
            "snapshot.post_sync",
            "snapshot.post_rename",
            "journal.compact.pre_sync",
            "journal.compact.post_sync",
        } <= set(census.sites)
        assert_run_healthy(census_run[0], census_run[1], census_run[4], N_PAYMENTS)

        total = census.crossings
        indices = sorted({int(total * (i + 0.5) / CRASH_SAMPLES) for i in range(CRASH_SAMPLES)})
        for index in indices:
            net, peers, plan, _faults, methods = run_storm(
                SEED, tmp_path / f"fire{index}", fire_at=index
            )
            label = f"crash point #{index} ({census.sites[index]})"
            assert plan.fired is not None, label
            assert plan.fired.site == census.sites[index], label
            assert net.broker_restarts >= 1, label
            assert net.last_recovery is not None
            audit = net.last_recovery.audit
            assert audit is not None and audit.ok, label
            assert_run_healthy(net, peers, methods, N_PAYMENTS)

    def test_retry_straddling_the_crash_is_served_from_the_journal(self, tmp_path):
        # At an append.post_sync point the handler's effects are durable but
        # the reply dies with the process: the client's retry must be
        # deduplicated by the recovered broker, not re-executed.
        census = run_storm(SEED, tmp_path / "census", n_payments=40)[2]
        index = next(
            i for i, site in enumerate(census.sites) if site == "journal.append.post_sync"
        )
        net, peers, plan, _faults, methods = run_storm(
            SEED, tmp_path / "fire", n_payments=40, fire_at=index
        )
        assert plan.fired is not None and plan.fired.site == "journal.append.post_sync"
        assert net.transport.crashes_simulated == 1
        assert net.broker.replays_served > 0  # dedupe answered the retry
        assert_run_healthy(net, peers, methods, 40)


class TestDeterminism:
    def test_same_seed_and_crash_point_replay_bit_identically(self, tmp_path):
        census = run_storm(SEED, tmp_path / "census", n_payments=60)[2]
        index = census.crossings // 2
        first = run_storm(SEED, tmp_path / "a", n_payments=60, fire_at=index)
        second = run_storm(SEED, tmp_path / "b", n_payments=60, fire_at=index)
        assert first[2].fired is not None
        assert first[2].fired.site == second[2].fired.site
        assert fingerprint(first[0], first[3]) == fingerprint(second[0], second[3])


class TestUnsupervisedCrash:
    def test_manual_restart_resumes_the_storm(self, tmp_path):
        # No supervisor: the crash surfaces as churn, the operator restarts
        # the broker from disk, and the workload picks up where it left off.
        net = WhoPayNetwork(
            params=PARAMS_TEST_512, retry_policy=CHAOS_POLICY, store_dir=tmp_path
        )
        peers = [net.add_peer(f"p{i}", PeerConfig(balance=BALANCE)) for i in range(N_PEERS)]
        for peer in peers:
            peer.purchase()
        net.arm_crash_points(CrashPointPlan(fire_at=0, seed=SEED))
        with pytest.raises(NodeOffline):
            peers[0].purchase()

        result = net.restart_broker()
        assert result.audit is not None and result.audit.ok
        state = peers[0].purchase()  # the same operation now succeeds
        peers[0].issue(peers[1].address, state.coin_y)
        assert peers[1].deposit(state.coin_y, payout_to=peers[1].address) == 1
        assert net.broker.verify_conservation(N_PEERS * BALANCE)
