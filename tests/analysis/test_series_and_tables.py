"""Analysis helper tests."""

import pytest

from repro.analysis.series import crossover_index, is_decreasing, is_increasing, rises_then_falls
from repro.analysis.tables import format_series_table, format_table


class TestSeriesPredicates:
    def test_increasing(self):
        assert is_increasing([1, 2, 3])
        assert is_increasing([1, 1, 2])
        assert not is_increasing([1, 3, 2])

    def test_increasing_with_tolerance(self):
        assert is_increasing([100, 98, 150], tolerance=0.05)
        assert not is_increasing([100, 80, 150], tolerance=0.05)

    def test_decreasing(self):
        assert is_decreasing([3, 2, 1])
        assert not is_decreasing([1, 2])
        assert is_decreasing([100, 102, 50], tolerance=0.05)

    def test_rises_then_falls(self):
        assert rises_then_falls([1, 5, 9, 6, 2])
        assert not rises_then_falls([1, 2, 3])  # peak at the edge
        assert not rises_then_falls([3, 2, 1])
        assert not rises_then_falls([1, 2])  # too short

    def test_rises_then_falls_with_noise(self):
        assert rises_then_falls([10, 30, 29, 50, 20, 5], tolerance=0.1)

    def test_crossover(self):
        assert crossover_index([1, 2, 5], [3, 3, 3]) == 2
        assert crossover_index([1, 1], [2, 2]) is None
        with pytest.raises(ValueError):
            crossover_index([1], [1, 2])


class TestTables:
    def test_format_table_aligns(self):
        rows = [{"a": 1, "b": 22.5}, {"a": 333, "b": 0.001}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], ["x"])

    def test_missing_column_blank(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert text  # renders without KeyError

    def test_format_series_table(self):
        text = format_series_table("µ", [1, 2], {"load": [10, 20], "ratio": [0.5, 0.25]})
        assert "µ" in text and "load" in text and "ratio" in text
        assert "10" in text and "0.2500" in text

    def test_large_numbers_comma_separated(self):
        text = format_table([{"n": 1234567.0}], ["n"])
        assert "1,234,567" in text
