"""Distribution-statistics tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import gini, pearson, percentile, summarize, top_share


class TestGini:
    def test_perfect_equality(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_full_concentration(self):
        # One holder of everything among n approaches (n-1)/n.
        value = gini([0] * 9 + [100])
        assert value == pytest.approx(0.9)

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_scale_invariance(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_bounds_property(self, values):
        g = gini(values)
        assert 0.0 <= g < 1.0


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            pearson([], [])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_bounds_property(self, xs):
        ys = [x * 2 + 1 for x in xs]
        r = pearson(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestTopShare:
    def test_uniform(self):
        assert top_share([1] * 10, 0.1) == pytest.approx(0.1)

    def test_concentrated(self):
        assert top_share([100] + [0] * 9, 0.1) == pytest.approx(1.0)

    def test_minimum_one_entry(self):
        assert top_share([3, 1], 0.1) == pytest.approx(0.75)  # top 1 of 2

    def test_zero_total(self):
        assert top_share([0, 0], 0.5) == 0.0

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            top_share([1], 0.0)
        with pytest.raises(ValueError):
            top_share([1], 1.5)


class TestPercentileAndSummary:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [7, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_value(self):
        assert percentile([42], 73) == 42.0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_summarize_shape(self):
        summary = summarize([1, 2, 3, 4, 100])
        assert summary["min"] == 1 and summary["max"] == 100
        assert summary["p50"] == 3
        assert summary["mean"] == pytest.approx(22.0)
        assert 0 < summary["gini"] < 1
        assert summary["top10_share"] == pytest.approx(100 / 110)
