"""Coin-shop tests (Section 5.2, approach 2)."""

import pytest

from repro.core.coinshop import CoinShop, buy_coin_from_shop
from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture()
def rig():
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    member = net.judge.register("shop")
    shop = CoinShop(
        net.transport,
        address="shop",
        params=net.params,
        clock=net.clock,
        judge=net.judge,
        member_key=member,
        broker_address=net.broker.address,
        broker_key=net.broker.public_key,
        fee=1,
    )
    net.broker.open_account("shop", shop.identity.public, 1000)
    net.peers["shop"] = shop
    customer = net.add_peer("customer", PeerConfig(balance=5))
    merchant = net.add_peer("merchant")
    return net, shop, customer, merchant


class TestStocking:
    def test_restock(self, rig):
        _net, shop, _customer, _merchant = rig
        assert shop.restock(5) == 5
        assert shop.stock_size() == 5

    def test_sell_from_stock(self, rig):
        _net, shop, customer, _merchant = rig
        shop.restock(2)
        shop.sell("customer")
        assert shop.stock_size() == 1
        assert len(customer.wallet) == 1

    def test_sell_restocks_on_demand(self, rig):
        _net, shop, customer, _merchant = rig
        shop.sell("customer")  # empty shelf: buys one on the spot
        assert len(customer.wallet) == 1

    def test_revenue_accrues(self, rig):
        _net, shop, _customer, _merchant = rig
        shop.sell("customer")
        shop.sell("customer")
        assert shop.revenue == 2
        assert len(shop.sales) == 2


class TestAnonymitySHape:
    def test_customer_spends_only_by_transfer(self, rig):
        # The whole point: customers never own coins, so every spend is an
        # anonymous transfer with the (identity-exposing) issue confined to
        # the shop relationship.
        _net, shop, customer, merchant = rig
        coin_y = buy_coin_from_shop(customer, shop)
        assert customer.spendable_owned() == []  # owns nothing
        customer.transfer("merchant", coin_y)
        assert coin_y in merchant.wallet
        assert customer.counts.issues == 0
        assert customer.counts.transfers_sent == 1

    def test_shop_serves_transfers_of_sold_coins(self, rig):
        _net, shop, customer, merchant = rig
        coin_y = buy_coin_from_shop(customer, shop)
        customer.transfer("merchant", coin_y)
        merchant.transfer("customer", coin_y)
        assert shop.counts.transfers_handled == 2

    def test_value_selection(self, rig):
        _net, shop, customer, _merchant = rig
        shop.restock(1, value=1)
        shop.restock(1, value=5)
        shop.sell("customer", value=5)
        held = next(iter(customer.wallet.values()))
        assert held.value == 5
        assert shop.stock_size() == 1  # the value-1 coin remains
