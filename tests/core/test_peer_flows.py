"""Peer protocol flows: issue, transfer, renewal, pay policies, lazy sync."""

import pytest

from repro.core.errors import (
    CoinExpired,
    NotHolder,
    NotOwner,
    ProtocolError,
    UnknownCoin,
    VerificationFailed,
)
from repro.core.network import PeerConfig


class TestIssue:
    def test_issue_moves_coin_to_payee(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=2)
        binding = alice.issue("bob", state.coin_y)
        held = bob.wallet[state.coin_y]
        assert held.value == 2
        assert held.binding.holder_y == held.holder_keypair.public.y
        assert binding.holder_y == held.holder_keypair.public.y
        assert alice.owned[state.coin_y].issued

    def test_cannot_issue_twice(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        with pytest.raises(ProtocolError):
            alice.issue("carol", state.coin_y)

    def test_cannot_issue_unowned_coin(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        with pytest.raises(NotOwner):
            bob.issue("alice", state.coin_y)

    def test_issue_with_no_coins_fails(self, funded_trio):
        _net, _alice, _bob, carol = funded_trio
        with pytest.raises(UnknownCoin):
            carol.issue("bob")

    def test_issue_auto_selects_unissued(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob")  # no coin_y argument
        assert state.coin_y in bob.wallet


class TestTransfer:
    def test_transfer_chain(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        b1 = alice.issue("bob", state.coin_y)
        b2 = bob.transfer("carol", state.coin_y)
        assert b2.seq == b1.seq + 1
        assert state.coin_y in carol.wallet and state.coin_y not in bob.wallet
        b3 = carol.transfer("bob", state.coin_y)
        assert b3.seq == b2.seq + 1

    def test_transfer_back_to_owner(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.transfer("alice", state.coin_y)
        assert state.coin_y in alice.wallet  # owner now also holds it
        # And the owner can spend it onward like any holder.
        alice.transfer("bob", state.coin_y)
        assert state.coin_y in bob.wallet

    def test_cannot_transfer_unheld_coin(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        with pytest.raises(NotHolder):
            carol.transfer("bob", state.coin_y)

    def test_stale_holder_cannot_transfer_via_owner(self, funded_trio):
        import copy

        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        stale = copy.deepcopy(bob.wallet[state.coin_y])
        bob.transfer("carol", state.coin_y)
        bob.wallet[state.coin_y] = stale
        with pytest.raises(NotHolder):
            bob.transfer("carol", state.coin_y)

    def test_owner_records_relinquishments(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.transfer("carol", state.coin_y)
        carol.transfer("bob", state.coin_y)
        assert len(alice.owned[state.coin_y].relinquishments) == 2

    def test_counts_updated(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.transfer("carol", state.coin_y)
        assert alice.counts.purchases == 1
        assert alice.counts.issues == 1
        assert alice.counts.transfers_handled == 1
        assert bob.counts.transfers_sent == 1
        assert bob.counts.payments_received == 1
        assert carol.counts.payments_received == 1


class TestRenewal:
    def test_renewal_via_owner(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        b1 = alice.issue("bob", state.coin_y)
        net.advance(3600)
        b2 = bob.renew(state.coin_y)
        assert not b2.via_broker
        assert b2.seq == b1.seq + 1
        assert b2.exp_date > b1.exp_date
        assert alice.counts.renewals_handled == 1

    def test_renew_due_coins(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        # Not yet inside the renewal window.
        assert bob.renew_due_coins() == 0
        net.advance(net.renewal_period * 0.8)
        assert bob.renew_due_coins() == 1

    def test_non_holder_cannot_renew(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        with pytest.raises(NotHolder):
            carol.renew(state.coin_y)

    def test_expired_coin_not_transferable(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        net.advance(net.renewal_period + 1)
        with pytest.raises((CoinExpired, UnknownCoin)):
            bob.transfer("carol", state.coin_y)


class TestPayPolicies:
    def test_pay_prefers_transfer(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        method = bob.pay("carol", ("transfer", "issue", "purchase_issue"))
        assert method == "transfer"

    def test_pay_falls_back_to_purchase_issue(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        method = alice.pay("bob", ("transfer", "issue", "purchase_issue"))
        assert method == "purchase_issue"
        assert alice.counts.purchases == 1 and alice.counts.issues == 1

    def test_pay_uses_broker_when_owner_offline(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        method = bob.pay("carol", ("transfer", "downtime_transfer", "issue"))
        assert method == "downtime_transfer"
        assert state.coin_y in carol.wallet

    def test_pay_exhausted_raises(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=0))
        network.add_peer("bob")
        with pytest.raises(ProtocolError):
            alice.pay("bob", ("transfer", "issue"))

    def test_unknown_method_rejected(self, funded_trio):
        _net, alice, _bob, _carol = funded_trio
        with pytest.raises(ValueError):
            alice.pay("bob", ("teleport",))


class TestLazySync:
    @pytest.fixture()
    def lazy_net(self):
        from repro.core.network import WhoPayNetwork
        from repro.crypto.params import PARAMS_TEST_512

        net = WhoPayNetwork(params=PARAMS_TEST_512, sync_mode="lazy")
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        return net, alice, bob, carol

    def test_no_sync_on_rejoin(self, lazy_net):
        net, alice, _bob, _carol = lazy_net
        alice.purchase()
        alice.depart()
        alice.rejoin()
        assert alice.counts.syncs == 0
        assert net.broker.counts.syncs == 0

    def test_check_on_first_served_request(self, lazy_net):
        net, alice, bob, carol = lazy_net
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        alice.rejoin()
        carol.transfer("bob", state.coin_y)  # owner must check first
        assert alice.counts.checks == 1
        assert alice.counts.lazy_syncs == 1
        assert net.broker.counts.binding_queries == 1

    def test_check_without_changes_is_cheap(self, lazy_net):
        _net, alice, bob, carol = lazy_net
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        alice.rejoin()  # nothing happened offline
        bob.transfer("carol", state.coin_y)
        assert alice.counts.checks == 1
        assert alice.counts.lazy_syncs == 0  # nothing was stale

    def test_no_repeat_check_until_next_downtime(self, lazy_net):
        _net, alice, bob, carol = lazy_net
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        alice.rejoin()
        bob.transfer("carol", state.coin_y)
        carol.transfer("bob", state.coin_y)
        assert alice.counts.checks == 1  # second transfer needs no check
