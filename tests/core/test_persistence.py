"""Wallet persistence tests: restart survival, tamper rejection, encryption."""

import pytest

from repro.core.errors import VerificationFailed
from repro.core.peer import Peer
from repro.core.persistence import export_peer_state, restore_peer_state
from repro.core.network import PeerConfig


def restart_peer(net, old_peer):
    """Simulate a process restart: tear down and rebuild the node."""
    net.transport.unregister(old_peer.address)
    fresh = Peer(
        net.transport,
        address=old_peer.address,
        params=net.params,
        clock=net.clock,
        judge=net.judge,
        member_key=old_peer.member_key,  # placeholder; restore overwrites
        broker_address=net.broker.address,
        broker_key=net.broker.public_key,
        sync_mode=old_peer.sync_mode,
        renewal_period=old_peer.renewal_period,
    )
    net.peers[old_peer.address] = fresh
    return fresh


class TestRoundTrip:
    def test_holder_state_survives_restart(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase(value=2)
        alice.issue("bob", state.coin_y)
        blob = export_peer_state(bob)
        bob2 = restart_peer(net, bob)
        assert restore_peer_state(bob2, blob) == 1
        # The restored peer can actually spend the coin.
        bob2.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet

    def test_owner_state_survives_restart(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.transfer("carol", state.coin_y)
        blob = export_peer_state(alice)
        alice2 = restart_peer(net, alice)
        restore_peer_state(alice2, blob)
        # The restored owner serves transfers with the right coin secret,
        # and kept its relinquishment audit trail.
        carol.transfer("bob", state.coin_y)
        assert state.coin_y in bob.wallet
        assert len(alice2.owned[state.coin_y].relinquishments) == 2

    def test_identity_survives_for_broker_account(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        blob = export_peer_state(alice)
        alice2 = restart_peer(net, alice)
        restore_peer_state(alice2, blob)
        # Purchases still authenticate against the existing account.
        alice2.purchase()
        assert net.broker.balance("alice") == 24

    def test_group_membership_survives(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        blob = export_peer_state(bob)
        bob2 = restart_peer(net, bob)
        restore_peer_state(bob2, blob)
        # Deposits need a valid group signature from the SAME member.
        assert bob2.deposit(state.coin_y) == 1

    def test_empty_peer_roundtrip(self, funded_trio):
        net, _alice, _bob, carol = funded_trio
        blob = export_peer_state(carol)
        carol2 = restart_peer(net, carol)
        assert restore_peer_state(carol2, blob) == 0


class TestSafety:
    def test_wrong_address_rejected(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        blob = export_peer_state(alice)
        with pytest.raises(VerificationFailed, match="belongs to"):
            restore_peer_state(bob, blob)

    def test_garbage_rejected(self, funded_trio):
        _net, alice, _bob, _carol = funded_trio
        with pytest.raises(Exception):
            restore_peer_state(alice, b"not a wallet")

    def test_tampered_coin_rejected(self, funded_trio):
        from repro.messages.codec import decode, encode

        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        data = decode(export_peer_state(bob))
        entry = dict(data["held"][0])
        entry["holder_x"] = 12345  # claim a different holder secret
        data = dict(data)
        data["held"] = (entry,)
        with pytest.raises(VerificationFailed, match="holder key"):
            restore_peer_state(bob, encode(data))

    def test_encryption_roundtrip(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        key = b"k" * 32
        blob = export_peer_state(bob, encryption_key=key)
        assert blob.startswith(b"enc:")
        bob2 = restart_peer(net, bob)
        assert restore_peer_state(bob2, blob, encryption_key=key) == 1

    def test_encrypted_blob_requires_key(self, funded_trio):
        _net, alice, _bob, _carol = funded_trio
        blob = export_peer_state(alice, encryption_key=b"k" * 32)
        with pytest.raises(VerificationFailed, match="key required"):
            restore_peer_state(alice, blob)

    def test_wrong_key_rejected(self, funded_trio):
        from repro.anonymity.cipher import CipherError

        _net, alice, _bob, _carol = funded_trio
        blob = export_peer_state(alice, encryption_key=b"k" * 32)
        with pytest.raises(CipherError):
            restore_peer_state(alice, blob, encryption_key=b"x" * 32)


class TestDetectionIntegration:
    def test_restore_rearms_dht_monitoring(self, detection_network):
        from repro.core.coin import CoinBinding

        net = detection_network
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        blob = export_peer_state(bob)
        bob2 = restart_peer(net, bob)
        bob2.detection = net.detection
        restore_peer_state(bob2, blob)
        # A fraudulent re-bind after the restart still raises the alarm:
        # the restore re-subscribed the restored wallet's coins.
        evil = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=alice.identity.public.y,
            seq=alice.owned[state.coin_y].binding.seq + 1,
            exp_date=net.clock.now() + 1000,
        )
        net.detection.publish_owner(alice, alice.owned[state.coin_y], evil)
        assert len(bob2.alarms) == 1
