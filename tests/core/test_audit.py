"""Fraud adjudication tests (detect-and-punish, Sections 2 & 4.3)."""

import copy

import pytest

from repro.core.audit import Verdict, adjudicate_double_deposit, verify_relinquishment
from repro.core.errors import DoubleSpendDetected, FraudDetected


@pytest.fixture()
def double_spend_case(funded_trio):
    """Bob transfers to carol, keeps a stale proof, deposits anyway."""
    net, alice, bob, carol = funded_trio
    state = alice.purchase()
    alice.issue("bob", state.coin_y)
    stale = copy.deepcopy(bob.wallet[state.coin_y])
    bob.transfer("carol", state.coin_y)
    bob.wallet[state.coin_y] = stale
    bob.deposit(state.coin_y)  # accepted: the stale binding verifies
    with pytest.raises(DoubleSpendDetected):
        carol.deposit(state.coin_y)  # honest holder collides
    return net, alice, bob, carol, state, net.broker.fraud_events[-1]


class TestHolderFraud:
    def test_culprit_is_the_stale_depositor(self, double_spend_case):
        net, alice, _bob, _carol, state, event = double_spend_case
        verdict = adjudicate_double_deposit(
            event, alice.owned[state.coin_y].relinquishments, net.params, net.judge
        )
        assert verdict.role == "holder"
        assert verdict.culprit == "bob"
        assert verdict.opened_identities == ("bob",)

    def test_judge_opened_only_the_culprit(self, double_spend_case):
        net, alice, _bob, _carol, state, event = double_spend_case
        before = net.judge.openings_performed
        adjudicate_double_deposit(
            event, alice.owned[state.coin_y].relinquishments, net.params, net.judge
        )
        # Fairness: exactly one opening — nothing about other parties leaks.
        assert net.judge.openings_performed == before + 1


class TestOwnerFraud:
    def test_double_issue_blames_owner(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        # Alice forges a second live binding for carol without any
        # relinquishment: a double issue.  Simulate carol receiving it by
        # handing her a fresh owner-signed binding out of band.
        from repro.core.coin import CoinBinding, HeldCoin
        from repro.crypto.keys import KeyPair

        carol_keypair = KeyPair.generate(net.params)
        forged = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=carol_keypair.public.y,
            seq=alice.owned[state.coin_y].binding.seq + 1,
            exp_date=net.clock.now() + 10_000,
        )
        carol.wallet[state.coin_y] = HeldCoin(
            coin=state.coin, holder_keypair=carol_keypair, binding=forged
        )
        bob.deposit(state.coin_y)
        with pytest.raises(DoubleSpendDetected):
            carol.deposit(state.coin_y)
        event = net.broker.fraud_events[-1]
        verdict = adjudicate_double_deposit(
            event, alice.owned[state.coin_y].relinquishments, net.params, net.judge
        )
        assert verdict.role == "owner"
        assert verdict.culprit is None  # owner identity is in the coin itself


class TestRelinquishmentVerification:
    def test_valid_relinquishment(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob_holder_y = bob.wallet[state.coin_y].holder_keypair.public.y
        bob.transfer("carol", state.coin_y)
        trail = alice.owned[state.coin_y].relinquishments
        assert len(trail) == 1
        checked = verify_relinquishment(trail[0], net.params, net.judge, state.coin_y)
        assert checked is not None
        holder_y, _seq = checked
        assert holder_y == bob_holder_y

    def test_garbage_entry_rejected(self, funded_trio):
        net, _alice, _bob, _carol = funded_trio
        assert verify_relinquishment(b"garbage", net.params, net.judge, 123) is None

    def test_wrong_coin_rejected(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.transfer("carol", state.coin_y)
        trail = alice.owned[state.coin_y].relinquishments
        assert verify_relinquishment(trail[0], net.params, net.judge, coin_y=999) is None


class TestVerdictEdgeCases:
    def test_incomplete_evidence(self, funded_trio):
        net, _alice, _bob, _carol = funded_trio
        event = FraudDetected("x", evidence={})
        verdict = adjudicate_double_deposit(event, [], net.params, net.judge)
        assert verdict.role == "unknown"

    def test_verdict_is_immutable_record(self):
        verdict = Verdict(culprit="x", role="holder", reason="r", opened_identities=("x",))
        with pytest.raises(Exception):
            verdict.culprit = "y"  # frozen dataclass
