"""Regression tests for constant-time secret comparisons (WP103 fixes).

The broker's sync-challenge nonce and the i3 claim tokens gate
state-revealing replies, so their equality checks must run in constant
time (``hmac.compare_digest`` / ``primitives.constant_time_eq``) and must
reject malformed inputs without crashing.  These tests pin the observable
behavior of those paths; ``repro.lint`` rule WP103 pins the implementation.
"""

import hashlib
import hmac
import inspect

import pytest

from repro.core import protocol
from repro.core.errors import VerificationFailed
from repro.crypto.primitives import constant_time_eq
from repro.indirection.i3 import I3Overlay, TriggerError
from repro.messages.envelope import seal
from repro.net.transport import Transport


class TestBrokerSyncNonce:
    def test_correct_nonce_is_accepted(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        alice.purchase()
        nonce = alice.request(net.broker.address, protocol.SYNC_CHALLENGE, None)
        signed = seal(alice.identity, {"kind": "whopay.sync", "nonce": nonce})
        assert alice.request(net.broker.address, protocol.SYNC, signed.encode()) == []

    def test_wrong_nonce_is_rejected(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        alice.purchase()
        real = alice.request(net.broker.address, protocol.SYNC_CHALLENGE, None)
        forged = real[:-1] + bytes([real[-1] ^ 1])
        signed = seal(alice.identity, {"kind": "whopay.sync", "nonce": forged})
        with pytest.raises(VerificationFailed):
            alice.request(net.broker.address, protocol.SYNC, signed.encode())

    def test_non_bytes_nonce_is_rejected_not_crashed(self, funded_trio):
        # compare_digest raises TypeError on non-bytes; the guard must turn
        # that into the same VerificationFailed as any other bad nonce.
        net, alice, _bob, _carol = funded_trio
        alice.purchase()
        alice.request(net.broker.address, protocol.SYNC_CHALLENGE, None)
        signed = seal(alice.identity, {"kind": "whopay.sync", "nonce": "not-bytes"})
        with pytest.raises(VerificationFailed):
            alice.request(net.broker.address, protocol.SYNC, signed.encode())

    def test_sync_path_uses_compare_digest(self):
        from repro.core import broker

        source = inspect.getsource(broker.Broker._handle_sync)
        assert "compare_digest" in source


class TestI3TokenChecks:
    @pytest.fixture()
    def overlay(self):
        transport = Transport()
        return transport, I3Overlay(transport, size=2)

    def test_wrong_token_cannot_reclaim_or_remove(self, overlay):
        _transport, i3 = overlay
        handle, token = I3Overlay.mint_handle(b"coin-secret")
        i3.insert_trigger(handle, token, "owner", src="owner")
        # A forged token whose hash shares no prefix with the stored one.
        wrong = hashlib.sha256(b"i3-token|guess").digest()
        with pytest.raises(TriggerError):
            i3.remove_trigger(handle, wrong, src="mallory")
        with pytest.raises(TriggerError):
            i3.insert_trigger(handle, wrong, "mallory", src="mallory")

    def test_right_token_removes(self, overlay):
        _transport, i3 = overlay
        handle, token = I3Overlay.mint_handle(b"coin-secret")
        i3.insert_trigger(handle, token, "owner", src="owner")
        i3.remove_trigger(handle, token, src="owner")
        assert all(handle not in server.triggers for server in i3.servers)

    def test_malformed_types_are_refused_not_crashed(self, overlay):
        _transport, i3 = overlay
        handle, _token = I3Overlay.mint_handle(b"coin-secret")
        with pytest.raises(TriggerError, match="malformed"):
            i3.insert_trigger(handle, "string-token", "owner", src="owner")
        i3.insert_trigger(handle, _token, "owner", src="owner")
        with pytest.raises(TriggerError, match="malformed"):
            i3.remove_trigger(handle, "string-token", src="owner")


class TestPrimitive:
    def test_constant_time_eq_matches_hmac(self):
        a = hashlib.sha256(b"a").digest()
        b = hashlib.sha256(b"b").digest()
        assert constant_time_eq(a, bytes(a)) is True
        assert constant_time_eq(a, b) is False
        assert constant_time_eq(a, a[:-1]) is False
        assert constant_time_eq(a, bytes(a)) == hmac.compare_digest(a, bytes(a))
