"""Inspection/reporting API tests (wallet summaries, broker ledger)."""

import pytest


class TestWalletSummary:
    def test_held_coins_listed(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=3)
        alice.issue("bob", state.coin_y)
        rows = bob.wallet_summary()
        assert len(rows) == 1
        row = rows[0]
        assert row["coin"] == state.coin_y
        assert row["value"] == 3
        assert row["owner"] == "alice"
        assert row["owner_online"] is True
        assert row["expired"] is False
        assert row["expires_in"] == pytest.approx(net.renewal_period)

    def test_owner_offline_reflected(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        assert bob.wallet_summary()[0]["owner_online"] is False

    def test_no_secrets_in_summary(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        held = bob.wallet[state.coin_y]
        blob = repr(bob.wallet_summary())
        assert str(held.holder_keypair.x) not in blob

    def test_owned_summary(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        s1 = alice.purchase()
        s2 = alice.purchase()
        alice.issue("bob", s1.coin_y)
        bob.transfer("carol", s1.coin_y)
        rows = {row["coin"]: row for row in alice.owned_summary()}
        assert rows[s1.coin_y]["issued"] is True
        assert rows[s1.coin_y]["relinquishments"] == 1
        assert rows[s2.coin_y]["issued"] is False


class TestBrokerLedger:
    def test_conservation_audit(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        total = 35  # 25 + 10 + 0
        assert net.broker.verify_conservation(total)
        state = alice.purchase(value=4)
        assert net.broker.verify_conservation(total)
        alice.issue("bob", state.coin_y)
        bob.deposit(state.coin_y, payout_to="bob")
        assert net.broker.verify_conservation(total)

    def test_conservation_detects_tampering(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        net.broker.accounts["alice"].balance += 1  # counterfeit!
        assert not net.broker.verify_conservation(35)

    def test_export_ledger(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=2)
        alice.issue("bob", state.coin_y)
        ledger = net.broker.export_ledger()
        assert ledger["coins_minted"] == 1
        assert ledger["coins_deposited"] == 0
        assert ledger["circulating_value"] == 2
        assert ledger["accounts"]["alice"] == 23
        assert ledger["operation_counts"]["purchases"] == 1
        bob.deposit(state.coin_y)
        assert net.broker.export_ledger()["coins_deposited"] == 1
        assert net.broker.export_ledger()["circulating_value"] == 0
