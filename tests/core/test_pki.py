"""PKI tests: certificate issuance, verification, revocation, integration."""

import pytest

from repro.core.errors import VerificationFailed
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512
from repro.pki import CertificateAuthority, CertificateError, IdentityCertificate
from repro.core.network import PeerConfig

P = PARAMS_TEST_512


@pytest.fixture()
def ca():
    return CertificateAuthority(P, validity=1000.0)


class TestIssuance:
    def test_issue_and_verify(self, ca):
        subject = KeyPair.generate(P)
        cert = ca.issue("alice", subject.public, now=0.0)
        assert cert.verify(ca.public_key, now=500.0)
        assert cert.subject == "alice"
        assert cert.subject_y == subject.public.y

    def test_expired_certificate_rejected(self, ca):
        subject = KeyPair.generate(P)
        cert = ca.issue("alice", subject.public, now=0.0)
        assert not cert.verify(ca.public_key, now=1001.0)

    def test_not_yet_valid_rejected(self, ca):
        subject = KeyPair.generate(P)
        cert = ca.issue("alice", subject.public, now=100.0)
        assert not cert.verify(ca.public_key, now=50.0)

    def test_wrong_ca_rejected(self, ca):
        other_ca = CertificateAuthority(P)
        subject = KeyPair.generate(P)
        cert = ca.issue("alice", subject.public, now=0.0)
        assert not cert.verify(other_ca.public_key, now=10.0)

    def test_self_issued_rejected(self, ca):
        mallory = KeyPair.generate(P)
        forged_ca = CertificateAuthority(P)
        forged_ca.keypair = mallory  # mallory signs her own cert
        cert = forged_ca.issue("broker", mallory.public, now=0.0)
        assert not cert.verify(ca.public_key, now=10.0)

    def test_invalid_subject_key_rejected(self, ca):
        from repro.crypto.keys import PublicKey

        with pytest.raises(CertificateError):
            ca.issue("x", PublicKey(params=P, y=P.p - 1), now=0.0)

    def test_encode_roundtrip(self, ca):
        subject = KeyPair.generate(P)
        cert = ca.issue("alice", subject.public, now=0.0)
        rebuilt = IdentityCertificate.from_encoded(cert.encode(), P)
        assert rebuilt.verify(ca.public_key, now=1.0)
        assert rebuilt.subject == "alice"
        assert rebuilt.serial == cert.serial


class TestRevocation:
    def test_revoke(self, ca):
        subject = KeyPair.generate(P)
        cert = ca.issue("alice", subject.public, now=0.0)
        assert not ca.is_revoked(cert)
        ca.revoke(cert.serial)
        assert ca.is_revoked(cert)
        # The signature still verifies — revocation is a separate check,
        # exactly as in real PKI.
        assert cert.verify(ca.public_key, now=1.0)

    def test_revoke_unknown_serial(self, ca):
        with pytest.raises(CertificateError):
            ca.revoke(b"nonexistent")


class TestBrokerIntegration:
    def test_network_issues_certificates(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=3))
        assert alice.certificate.verify(network.ca.public_key, now=network.clock.now())
        assert alice.certificate.subject == "alice"
        # The account identity came from the certificate.
        assert network.broker.accounts["alice"].identity.y == alice.identity.public.y

    def test_certified_purchase_works(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=3))
        state = alice.purchase()
        assert state.coin_y in network.broker.valid_coins

    def test_broker_rejects_bad_certificate(self, network):
        from repro.pki import CertificateAuthority

        rogue_ca = CertificateAuthority(network.params)
        identity = KeyPair.generate(network.params)
        cert = rogue_ca.issue("mallory", identity.public, now=0.0)
        with pytest.raises(VerificationFailed):
            network.broker.open_account_from_certificate(cert, network.ca.public_key, 100)
        assert "mallory" not in network.broker.accounts

    def test_broker_rejects_expired_certificate(self, network):
        identity = KeyPair.generate(network.params)
        cert = network.ca.issue("latecomer", identity.public, now=0.0)
        network.advance(400 * 24 * 3600.0)  # past the 1-year validity
        with pytest.raises(VerificationFailed):
            network.broker.open_account_from_certificate(cert, network.ca.public_key, 5)
