"""Broker endpoint tests: purchase, deposit, downtime ops, sync, fraud."""

import pytest

from repro.core import PeerConfig, protocol
from repro.core.errors import (
    DoubleSpendDetected,
    InsufficientFunds,
    ProtocolError,
    VerificationFailed,
)
from repro.crypto.keys import KeyPair
from repro.messages.envelope import seal


class TestAccounts:
    def test_open_and_balance(self, network):
        peer = network.add_peer("alice", PeerConfig(balance=7))
        assert network.broker.balance("alice") == 7
        assert network.broker.balance("nobody") == 0

    def test_duplicate_account_rejected(self, network):
        network.add_peer("alice")
        with pytest.raises(ValueError):
            network.broker.open_account("alice", network.peers["alice"].identity.public, 0)


class TestPurchase:
    def test_purchase_debits_account(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=5))
        alice.purchase(value=2)
        assert network.broker.balance("alice") == 3
        assert network.broker.counts.purchases == 1

    def test_insufficient_funds(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=1))
        with pytest.raises(InsufficientFunds):
            alice.purchase(value=2)

    def test_purchase_requires_account_identity(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=5))
        bob = network.add_peer("bob", PeerConfig(balance=0))
        # Bob signs a purchase against alice's account: rejected.
        coin_keypair = KeyPair.generate(network.params)
        request = protocol.PurchaseRequest(
            coin_y=coin_keypair.public.y, value=1, account="alice"
        )
        signed = seal(bob.identity, request.to_payload())
        with pytest.raises(VerificationFailed):
            bob.request(network.broker.address, protocol.PURCHASE, signed.encode())

    def test_coin_added_to_valid_list(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=5))
        state = alice.purchase()
        assert state.coin_y in network.broker.valid_coins
        assert state.coin_y in network.broker.owner_coins["alice"]

    def test_duplicate_coin_key_rejected(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=5))
        state = alice.purchase()
        request = protocol.PurchaseRequest(coin_y=state.coin_y, value=1, account="alice")
        signed = seal(alice.identity, request.to_payload())
        with pytest.raises(ProtocolError):
            alice.request(network.broker.address, protocol.PURCHASE, signed.encode())

    def test_invalid_coin_key_rejected(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=5))
        request = protocol.PurchaseRequest(coin_y=network.params.p - 1, value=1, account="alice")
        signed = seal(alice.identity, request.to_payload())
        with pytest.raises(ProtocolError):
            alice.request(network.broker.address, protocol.PURCHASE, signed.encode())


class TestDeposit:
    def test_deposit_credits_named_account(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=4)
        alice.issue("bob", state.coin_y)
        credited = bob.deposit(state.coin_y, payout_to="bob")
        assert credited == 4
        assert net.broker.balance("bob") == 14  # 10 initial + 4

    def test_deposit_to_bearer_account(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.deposit(state.coin_y)  # fresh pseudonymous account
        bearer_accounts = [name for name in net.broker.accounts if name.startswith("bearer-")]
        assert len(bearer_accounts) == 1
        assert net.broker.balance(bearer_accounts[0]) == 1

    def test_double_deposit_detected(self, funded_trio):
        import copy

        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        held = copy.deepcopy(bob.wallet[state.coin_y])
        bob.deposit(state.coin_y)
        bob.wallet[state.coin_y] = held
        with pytest.raises(DoubleSpendDetected):
            bob.deposit(state.coin_y)
        assert len(net.broker.fraud_events) == 1
        assert net.broker.fraud_events[0].evidence["coin_y"] == state.coin_y

    def test_deposit_retires_coin_from_downtime_state(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.renew(state.coin_y)  # creates downtime state
        assert state.coin_y in net.broker.downtime_bindings
        bob.deposit(state.coin_y)
        assert state.coin_y not in net.broker.downtime_bindings


class TestDowntimeProtocols:
    def test_downtime_transfer_records_state(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        assert net.broker.counts.downtime_transfers == 1
        assert state.coin_y in net.broker.downtime_bindings
        assert state.coin_y in net.broker.pending_sync["alice"]

    def test_downtime_transfer_requires_current_holder(self, funded_trio):
        import copy

        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        stale = copy.deepcopy(bob.wallet[state.coin_y])
        bob.transfer("carol", state.coin_y)  # bob relinquishes
        alice.depart()
        carol.transfer_via_broker("bob", state.coin_y)  # broker now has state
        # Bob replays his stale holding via the broker: flat refusal.
        bob.wallet[state.coin_y] = stale
        from repro.core.errors import NotHolder

        with pytest.raises((NotHolder, VerificationFailed)):
            bob.transfer_via_broker("carol", state.coin_y)

    def test_downtime_renewal_bumps_seq_and_expiry(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        binding0 = alice.issue("bob", state.coin_y)
        alice.depart()
        net.advance(3600)
        binding1 = bob.renew(state.coin_y)
        assert binding1.via_broker
        assert binding1.seq == binding0.seq + 1
        assert binding1.exp_date > binding0.exp_date

    def test_expired_coin_rejected(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        net.advance(net.renewal_period + 1)
        from repro.core.errors import CoinExpired

        with pytest.raises(CoinExpired):
            bob.transfer_via_broker("carol-address-unused", state.coin_y)


class TestSync:
    def test_sync_returns_downtime_bindings(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        carol.renew(state.coin_y)
        alice.rejoin()  # proactive sync inside
        assert net.broker.counts.syncs == 1
        assert alice.owned[state.coin_y].binding.via_broker
        assert "alice" not in net.broker.pending_sync

    def test_sync_requires_fresh_nonce(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        alice.purchase()
        signed = seal(alice.identity, {"kind": "whopay.sync", "nonce": b"forged"})
        with pytest.raises(VerificationFailed):
            alice.request(net.broker.address, protocol.SYNC, signed.encode())

    def test_sync_rejects_wrong_identity(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        alice.purchase()
        nonce = alice.request(net.broker.address, protocol.SYNC_CHALLENGE, None)
        forged = seal(bob.identity, {"kind": "whopay.sync", "nonce": nonce})
        with pytest.raises(VerificationFailed):
            alice.request(net.broker.address, protocol.SYNC, forged.encode())
