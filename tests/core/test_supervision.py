"""Detector-driven shard supervision (PR 9).

No transport crash handlers anywhere in this file: shards die silently,
heartbeat silence drives a phi-accrual detector, and only DEAD + lapsed
lease triggers a journal restart plus handoff re-drive.  The legacy
crash-hook path is exercised elsewhere (the federation chaos sweep);
here it appears only to prove the policies are interchangeable.
"""

import pytest

from repro.core.broker import handoff_id
from repro.core.coin import Coin
from repro.core.network import BrokerTopology, PeerConfig, WhoPayNetwork
from repro.core.supervision import (
    SUPERVISOR_ADDRESS,
    CrashHookSupervision,
    LeaseGatedSupervision,
)
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512
from repro.net.liveness import DEAD, BreakerConfig, LivenessConfig
from repro.net.rpc import RetryPolicy

RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=0.1)
LIVENESS = LivenessConfig(heartbeat_interval=0.5, phi_threshold=4.0, lease_duration=2.0)
TICK = 0.5


def build_net(store_dir=None, shards=3, breaker_config=None):
    return WhoPayNetwork(
        params=PARAMS_TEST_512,
        retry_policy=RETRY,
        store_dir=store_dir,
        topology=BrokerTopology(shards=shards),
        breaker_config=breaker_config,
    )


def coin_keypair_homed(net, shard_address):
    while True:
        keypair = KeyPair.generate(net.params)
        if net.shard_map.shard_for_coin(keypair.public.y) == shard_address:
            return keypair


def advance_until(net, predicate, step=TICK, limit=120):
    for _ in range(limit):
        net.advance(step)
        if predicate():
            return
    raise AssertionError("condition not reached within the advance budget")


class TestPolicyPlumbing:
    def test_default_policy_is_the_legacy_crash_hooks(self):
        net = build_net()
        policy = net.supervise_broker()
        assert isinstance(policy, CrashHookSupervision)
        assert net.supervision is policy

    def test_swapping_policies_detaches_the_old_one(self):
        net = build_net()
        net.supervise_broker(LeaseGatedSupervision(LIVENESS))
        assert net.transport.is_online(SUPERVISOR_ADDRESS)
        net.supervise_broker()  # back to crash hooks: monitor must unwire
        assert not net.transport.is_online(SUPERVISOR_ADDRESS)


class TestHeartbeatFlow:
    def test_beats_renew_leases_and_gossip_the_last_seen_table(self):
        net = build_net()
        policy = net.supervise_broker(LeaseGatedSupervision(LIVENESS))
        for _ in range(6):
            net.advance(TICK)
        addresses = [shard.address for shard in net.shards]
        assert policy.beats_sent == 3 * 6
        assert policy.monitor.beats_received == policy.beats_sent
        assert sorted(policy.last_seen_table()) == sorted(addresses)
        now = net.clock.now()
        for address in addresses:
            assert not policy.leases.expired(address, now)
            # Every emitter has merged the monitor's view of its siblings.
            assert sorted(policy.gossip_views[address].snapshot()) == sorted(addresses)
        assert policy.events == []

    def test_coarse_advance_replays_every_due_beat(self):
        net = build_net()
        policy = net.supervise_broker(LeaseGatedSupervision(LIVENESS))
        net.advance(3.0)  # six beat periods in one jump
        assert policy.beats_sent == 3 * 6


class TestLeaseGatedFailover:
    def test_killed_shard_is_detected_and_restarted_within_the_window(self, tmp_path):
        net = build_net(store_dir=tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=5))
        bob = net.add_peer("bob")
        policy = net.supervise_broker(LeaseGatedSupervision(LIVENESS))
        net.advance(TICK)  # warm the detector with one real beat round
        net.kill_shard(0)
        assert not net.shards[0].online
        advance_until(net, lambda: policy.events)
        assert [event.address for event in policy.events] == [net.shards[0].address]
        assert net.shards[0].online  # journal-recovered replacement
        assert net.broker_restarts == 1
        latency = policy.detection_latencies()[0]
        assert 0.0 < latency <= LIVENESS.detection_window() + TICK
        # The federation serves again through the recovered shard.
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        assert bob.deposit(state.coin_y, payout_to="bob") == 1
        net.complete_handoffs()
        assert net.broker.verify_conservation(5)

    def test_slow_but_alive_shard_is_never_double_driven(self, tmp_path):
        # A lease far longer than the detection window: the detector calls
        # the shard DEAD long before the lease lapses, and the supervisor
        # must sit on its hands until it does.
        patient = LivenessConfig(
            heartbeat_interval=0.5, phi_threshold=4.0, lease_duration=50.0
        )
        net = build_net(store_dir=tmp_path)
        policy = net.supervise_broker(LeaseGatedSupervision(patient))
        net.advance(1.0)
        net.kill_shard(0)
        dead_addr = net.shards[0].address
        net.advance(10.0)  # well past the phi threshold...
        assert policy.detector.state(dead_addr, net.clock.now()) == DEAD
        assert policy.events == []  # ...but the lease still holds the gate
        assert net.broker_restarts == 0
        net.advance(50.0)  # lease lapses: now, and only now, failover runs
        assert len(policy.events) == 1
        assert net.broker_restarts == 1
        assert net.shards[0].online

    def test_orphaned_handoff_is_redriven_by_the_failover_path(self, tmp_path):
        """Satellite: kill between ``handoff_begin`` and ``XSHARD_PREPARE``.

        The begin record is journaled (durable) but no prepare ever left
        the shard — exactly the state a crash at the post-fsync boundary
        leaves.  The lease-expiry failover alone must re-drive it; the
        test never calls ``complete_handoffs`` explicitly.
        """
        net = build_net(store_dir=tmp_path)
        alice = net.add_peer("alice", PeerConfig(balance=5))
        policy = net.supervise_broker(LeaseGatedSupervision(LIVENESS))
        source = net.router.shard_for_account("alice")
        source_index = net.shards.index(source)
        coin_home = next(a for a in net.shard_map.addresses if a != source.address)
        keypair = coin_keypair_homed(net, coin_home)
        coin = Coin.build(
            source.keypair,
            coin_y=keypair.public.y,
            value=2,
            owner_address="alice",
            owner_y=alice.identity.public.y,
        )
        h = handoff_id("purchase", coin.encode())
        source._commit_local(
            {
                "type": "handoff_begin",
                "h": h,
                "op": "purchase",
                "account": "alice",
                "debit": 2,
                "remote_value": 2,
                "local_coins": [],
                "reply_coins": [coin.encode()],
                "prepares": [
                    {
                        "h": h + "#0",
                        "dest": coin_home,
                        "payload": {"op": "mint", "coins": [coin.encode()]},
                    }
                ],
            }
        )
        net.kill_shard(source_index)
        assert not net.broker.verify_conservation(5)  # value stranded in flight
        advance_until(net, lambda: policy.events)
        event = policy.events[0]
        assert event.address == source.address
        assert event.redriven_handoffs == 1
        assert not any(shard.pending_handoffs for shard in net.shards)
        dest = net.router.shard_for_coin(coin.coin_y)
        assert coin.coin_y in dest.valid_coins
        assert net.broker.balance("alice") == 3
        assert net.broker.verify_conservation(5)
        # Exactly once: a second sweep finds nothing left to drive.
        assert net.complete_handoffs() == 0


class TestQueuedPaymentDrain:
    def test_queue_drains_exactly_once_after_shard_recovery(self, tmp_path):
        net = build_net(
            store_dir=tmp_path,
            shards=1,
            breaker_config=BreakerConfig(
                failure_threshold=1, reset_timeout=0.5, probe_jitter=0.0
            ),
        )
        alice = net.add_peer("alice", PeerConfig(balance=5))
        bob = net.add_peer("bob", PeerConfig(balance=5))
        carol = net.add_peer("carol", PeerConfig(balance=5))
        # Alice holds a coin whose *owner* (carol) goes offline: paying bob
        # then requires the broker-mediated downtime transfer — the one
        # road that dies with the shard.
        funding = carol.purchase()
        carol.issue("alice", funding.coin_y)
        policy = net.supervise_broker(LeaseGatedSupervision(LIVENESS))
        net.advance(TICK)
        carol.depart()
        net.kill_shard(0)
        assert alice.pay("bob") == "queued"
        assert len(alice.payment_queue) == 1
        assert alice.breakers.open_destinations()  # the broker road tripped
        advance_until(net, lambda: policy.events)  # detector-driven restart
        # Virtual time has moved far past the breaker's retry_at, so the
        # drain's first broker call is the half-open probe that re-closes
        # it, and the downtime transfer lands on the recovered shard.
        assert net.drain_queued_payments() == 1
        assert alice.payment_queue == []
        assert net.drain_queued_payments() == 0  # exactly once
        assert not alice.breakers.open_destinations()
        assert len(bob.wallet) == 1  # delivered exactly once
        carol.rejoin()
        for peer in (alice, bob, carol):
            peer.sync_with_broker()
            for coin_y in list(peer.wallet):
                peer.deposit(coin_y, payout_to=peer.address)
        assert net.broker.verify_conservation(15)
