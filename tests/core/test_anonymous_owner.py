"""Owner-anonymous coin tests (Section 5.2, approach 3)."""

import pytest

from repro.core.anonymous_owner import AnonymousOwnerPeer
from repro.core.errors import VerificationFailed
from repro.core.network import WhoPayNetwork
from repro.crypto.params import PARAMS_TEST_512
from repro.indirection.i3 import I3Overlay


@pytest.fixture()
def rig():
    net = WhoPayNetwork(params=PARAMS_TEST_512)
    i3 = I3Overlay(net.transport, size=3)

    def add(address, balance=0):
        member = net.judge.register(address)
        peer = AnonymousOwnerPeer(
            net.transport,
            address=address,
            params=net.params,
            clock=net.clock,
            judge=net.judge,
            member_key=member,
            broker_address=net.broker.address,
            broker_key=net.broker.public_key,
            i3=i3,
        )
        net.broker.open_account(address, peer.identity.public, balance)
        net.peers[address] = peer
        return peer

    alice = add("alice", balance=20)
    bob = add("bob", balance=5)
    carol = add("carol")
    return net, i3, alice, bob, carol


class TestAnonymousPurchase:
    def test_coin_is_ownerless(self, rig):
        net, _i3, alice, _bob, _carol = rig
        state = alice.purchase_anonymous(value=2)
        assert state.coin.is_ownerless
        assert state.coin.owner_address is None
        assert state.coin.owner_y is None
        assert state.coin.handle is not None

    def test_broker_cannot_map_coin_to_owner(self, rig):
        net, _i3, alice, _bob, _carol = rig
        state = alice.purchase_anonymous()
        assert state.coin_y not in net.broker.owner_coins.get("alice", set())

    def test_broker_still_debits_buyer(self, rig):
        net, _i3, alice, _bob, _carol = rig
        alice.purchase_anonymous(value=3)
        assert net.broker.balance("alice") == 17

    def test_forces_lazy_sync(self, rig):
        _net, _i3, alice, _bob, _carol = rig
        assert alice.sync_mode == "lazy"


class TestAnonymousPayments:
    def test_issue_hides_owner_identity(self, rig):
        _net, _i3, alice, bob, _carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        held = bob.wallet[state.coin_y]
        # Nothing in the coin or binding names alice.
        assert held.coin.owner_address is None
        assert held.coin.owner_y is None

    def test_transfer_routes_through_handle(self, rig):
        net, _i3, alice, bob, carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        before = net.transport.counter("bob").messages_sent
        bob.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet
        # Bob never addressed alice directly: his outbound requests went to
        # carol (offer) and an i3 server (transfer request).
        assert alice.counts.transfers_handled == 1

    def test_renewal_via_handle(self, rig):
        _net, _i3, alice, bob, _carol = rig
        state = alice.purchase_anonymous()
        b1 = alice.issue("bob", state.coin_y)
        b2 = bob.renew(state.coin_y)
        assert not b2.via_broker
        assert b2.seq == b1.seq + 1

    def test_downtime_fallback(self, rig):
        _net, _i3, alice, bob, carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        alice.depart()
        b = bob.transfer_via_broker("carol", state.coin_y)
        assert b.via_broker
        assert state.coin_y in carol.wallet

    def test_downtime_renewal_fallback(self, rig):
        _net, _i3, alice, bob, _carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        alice.depart()
        b = bob.renew(state.coin_y)
        assert b.via_broker

    def test_lazy_check_after_downtime(self, rig):
        _net, _i3, alice, bob, carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        alice.rejoin()
        carol.transfer("bob", state.coin_y)
        assert alice.counts.checks >= 1
        assert alice.counts.lazy_syncs >= 1

    def test_deposit(self, rig):
        net, _i3, alice, bob, _carol = rig
        state = alice.purchase_anonymous(value=2)
        alice.issue("bob", state.coin_y)
        assert bob.deposit(state.coin_y) == 2


class TestFairnessOfAnonymousIssuers:
    def test_judge_can_open_issue_group_signature(self, rig):
        # The issuer group-signs the binding; capture it on the payee side
        # via the wire and let the judge open it.
        net, _i3, alice, bob, _carol = rig
        state = alice.purchase_anonymous()

        captured = {}
        original = bob._handle_payment_complete

        def spy(src, payload):
            captured.update(payload)
            return original(src, payload)

        bob._handlers["whopay.issue_complete"] = spy
        alice.issue("bob", state.coin_y)
        assert captured.get("binding_dual") is not None
        from repro.core import protocol

        dual = protocol.decode_dual(captured["binding_dual"], net.params)
        assert net.judge.open(dual.group_signature) == "alice"

    def test_mixed_coins_interoperate(self, rig):
        _net, _i3, alice, bob, _carol = rig
        anon = alice.purchase_anonymous()
        named = alice.purchase()
        alice.issue("bob", anon.coin_y)
        alice.issue("bob", named.coin_y)
        assert len(bob.wallet) == 2

    def test_release_handle(self, rig):
        _net, i3, alice, bob, _carol = rig
        state = alice.purchase_anonymous()
        alice.issue("bob", state.coin_y)
        bob.deposit(state.coin_y)
        alice.release_handle(state.coin_y)
        from repro.net.transport import NetworkError

        with pytest.raises(NetworkError):
            i3.send("bob", state.coin.handle, "whopay.renew_request", b"")
