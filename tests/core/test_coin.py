"""Coin and binding data-model tests."""

import pytest

from repro.core.coin import Coin, CoinBinding, HeldCoin, OwnedCoinState
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512

P = PARAMS_TEST_512


@pytest.fixture(scope="module")
def broker_keypair():
    return KeyPair.generate(P)


@pytest.fixture(scope="module")
def coin_keypair():
    return KeyPair.generate(P)


class TestCoin:
    def test_build_and_verify(self, broker_keypair, coin_keypair):
        coin = Coin.build(broker_keypair, coin_keypair.public.y, 3, "alice", 42)
        assert coin.verify(broker_keypair.public)
        assert coin.coin_y == coin_keypair.public.y
        assert coin.value == 3
        assert coin.owner_address == "alice"
        assert coin.owner_y == 42
        assert not coin.is_ownerless

    def test_ownerless_coin(self, broker_keypair, coin_keypair):
        coin = Coin.build(broker_keypair, coin_keypair.public.y, 1, None, None, handle=b"h" * 32)
        assert coin.verify(broker_keypair.public)
        assert coin.is_ownerless
        assert coin.handle == b"h" * 32

    def test_wrong_broker_key_rejected(self, broker_keypair, coin_keypair):
        other = KeyPair.generate(P)
        coin = Coin.build(broker_keypair, coin_keypair.public.y, 1, "a", 1)
        assert not coin.verify(other.public)

    def test_forged_coin_rejected(self, broker_keypair, coin_keypair):
        fake_broker = KeyPair.generate(P)
        coin = Coin.build(fake_broker, coin_keypair.public.y, 1, "a", 1)
        assert not coin.verify(broker_keypair.public)

    def test_zero_value_rejected(self, broker_keypair, coin_keypair):
        coin = Coin.build(broker_keypair, coin_keypair.public.y, 0, "a", 1)
        assert not coin.verify(broker_keypair.public)

    def test_coin_public_key(self, broker_keypair, coin_keypair):
        coin = Coin.build(broker_keypair, coin_keypair.public.y, 1, "a", 1)
        assert coin.coin_public_key(P).y == coin_keypair.public.y


class TestCoinBinding:
    def test_owner_signed_binding(self, broker_keypair, coin_keypair):
        binding = CoinBinding.build(coin_keypair, coin_keypair.public.y, 999, seq=5, exp_date=100.0)
        assert binding.verify(coin_keypair.public, broker_keypair.public)
        assert binding.holder_y == 999
        assert binding.seq == 5
        assert binding.exp_date == 100.0
        assert not binding.via_broker

    def test_broker_signed_binding(self, broker_keypair, coin_keypair):
        binding = CoinBinding.build(
            broker_keypair, coin_keypair.public.y, 999, seq=6, exp_date=100.0, via_broker=True
        )
        assert binding.verify(coin_keypair.public, broker_keypair.public)
        assert binding.via_broker

    def test_signer_flag_mismatch_rejected(self, broker_keypair, coin_keypair):
        # Owner-signed binding claiming to be broker-signed (and vice versa).
        owner_signed = CoinBinding.build(coin_keypair, coin_keypair.public.y, 1, 1, 10.0)
        flipped = CoinBinding(signed=owner_signed.signed, via_broker=True)
        assert not flipped.verify(coin_keypair.public, broker_keypair.public)

    def test_binding_for_other_coin_rejected(self, broker_keypair, coin_keypair):
        other = KeyPair.generate(P)
        binding = CoinBinding.build(other, other.public.y, 1, 1, 10.0)
        assert not binding.verify(coin_keypair.public, broker_keypair.public)

    def test_third_party_signature_rejected(self, broker_keypair, coin_keypair):
        mallory = KeyPair.generate(P)
        binding = CoinBinding.build(mallory, coin_keypair.public.y, 1, 1, 10.0)
        assert not binding.verify(coin_keypair.public, broker_keypair.public)


class TestWalletEntries:
    def test_held_coin_expiry(self, broker_keypair, coin_keypair):
        coin = Coin.build(broker_keypair, coin_keypair.public.y, 2, "a", 1)
        holder = KeyPair.generate(P)
        binding = CoinBinding.build(coin_keypair, coin.coin_y, holder.public.y, 1, exp_date=100.0)
        held = HeldCoin(coin=coin, holder_keypair=holder, binding=binding)
        assert held.value == 2
        assert not held.is_expired(now=50.0)
        assert held.is_expired(now=101.0)
        assert held.needs_renewal(now=80.0, window=30.0)
        assert not held.needs_renewal(now=50.0, window=30.0)
        assert not held.needs_renewal(now=101.0, window=30.0)  # expired != renewable

    def test_owned_state_lifecycle(self, broker_keypair, coin_keypair):
        coin = Coin.build(broker_keypair, coin_keypair.public.y, 1, "a", 1)
        state = OwnedCoinState(coin=coin, coin_keypair=coin_keypair)
        assert not state.issued
        state.binding = CoinBinding.build(coin_keypair, coin.coin_y, 7, 1, 10.0)
        assert state.issued
        assert state.coin_y == coin.coin_y
