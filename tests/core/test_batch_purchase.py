"""Batch purchase tests (Section 4.2's batching remark)."""

import pytest

from repro.core import PeerConfig, protocol
from repro.core.errors import InsufficientFunds, ProtocolError, VerificationFailed
from repro.crypto.keys import KeyPair
from repro.messages.envelope import seal


class TestBatchPurchase:
    def test_batch_mints_all_coins(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=10))
        states = alice.purchase_batch(count=4, value=2)
        assert len(states) == 4
        assert network.broker.balance("alice") == 2
        for state in states:
            assert state.coin_y in network.broker.valid_coins
            assert state.coin.value == 2

    def test_batch_is_one_broker_operation(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=10))
        alice.purchase_batch(count=5)
        assert network.broker.counts.purchases == 1

    def test_batch_amortizes_messages(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=20))
        network.transport.reset_counters()
        alice.purchase_batch(count=10)
        batched = network.transport.total_messages
        network.transport.reset_counters()
        for _ in range(10):
            alice.purchase()
        individual = network.transport.total_messages
        assert batched == 2  # one request, one response
        assert individual == 20

    def test_batch_atomic_on_insufficient_funds(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=3))
        with pytest.raises(InsufficientFunds):
            alice.purchase_batch(count=4, value=1)
        # Nothing minted, nothing debited.
        assert network.broker.balance("alice") == 3
        assert not network.broker.valid_coins
        assert not alice.owned

    def test_batch_coins_are_spendable(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=10))
        bob = network.add_peer("bob")
        states = alice.purchase_batch(count=2)
        alice.issue("bob", states[0].coin_y)
        alice.issue("bob", states[1].coin_y)
        assert len(bob.wallet) == 2

    def test_empty_batch_rejected(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=10))
        with pytest.raises(ValueError):
            alice.purchase_batch(count=0)

    def test_duplicate_keys_rejected(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=10))
        keypair = KeyPair.generate(network.params)
        request = protocol.BatchPurchaseRequest(
            coins=((keypair.public.y, 1), (keypair.public.y, 1)), account="alice"
        )
        signed = seal(alice.identity, request.to_payload())
        with pytest.raises(ProtocolError):
            alice.request(network.broker.address, protocol.PURCHASE_BATCH, signed.encode())

    def test_wrong_identity_rejected(self, network):
        alice = network.add_peer("alice", PeerConfig(balance=10))
        bob = network.add_peer("bob", PeerConfig(balance=0))
        keypair = KeyPair.generate(network.params)
        request = protocol.BatchPurchaseRequest(coins=((keypair.public.y, 1),), account="alice")
        signed = seal(bob.identity, request.to_payload())
        with pytest.raises(VerificationFailed):
            bob.request(network.broker.address, protocol.PURCHASE_BATCH, signed.encode())
