"""Coin value top-up tests (Section 2: only the broker increases value)."""

import pytest

from repro.core import protocol
from repro.core.errors import InsufficientFunds, NotHolder, ProtocolError, VerificationFailed
from repro.messages.envelope import seal


class TestTopUp:
    def test_top_up_increases_value(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=1)
        alice.issue("bob", state.coin_y)
        new_value = bob.top_up(state.coin_y, delta=3, funding_account="bob")
        assert new_value == 4
        assert net.broker.balance("bob") == 7  # 10 - 3
        assert net.broker.valid_coins[state.coin_y].value == 4

    def test_topped_up_coin_deposits_at_new_value(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=1)
        alice.issue("bob", state.coin_y)
        bob.top_up(state.coin_y, delta=2, funding_account="bob")
        assert bob.deposit(state.coin_y, payout_to="bob") == 3

    def test_old_certificate_still_redeems_full_value(self, funded_trio):
        # A payee holding a pre-top-up cert must not lose the delta: the
        # broker's registry is authoritative.  The owner never learns about
        # top-ups, so the cert it hands the next payee is the stale one —
        # this scenario occurs naturally on every post-top-up transfer.
        net, alice, bob, carol = funded_trio
        state = alice.purchase(value=1)
        alice.issue("bob", state.coin_y)
        bob.top_up(state.coin_y, delta=5, funding_account="bob")
        bob.transfer("carol", state.coin_y)
        assert carol.wallet[state.coin_y].coin.value == 1  # stale cert
        assert carol.deposit(state.coin_y, payout_to="carol") == 6

    def test_only_holder_can_top_up(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase(value=1)
        alice.issue("bob", state.coin_y)
        with pytest.raises(NotHolder):
            carol.top_up(state.coin_y, delta=1, funding_account="carol")

    def test_funding_needs_balance(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase(value=1)
        alice.issue("carol", state.coin_y)  # carol has a 0-balance account
        with pytest.raises(InsufficientFunds):
            carol.top_up(state.coin_y, delta=1, funding_account="carol")
        assert net.broker.valid_coins[state.coin_y].value == 1

    def test_funding_auth_must_match_account_identity(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=1)
        alice.issue("bob", state.coin_y)
        held = bob.wallet[state.coin_y]
        # Bob tries to debit ALICE's account with his own signature.
        auth = seal(
            bob.identity,
            {"kind": "whopay.debit_auth", "account": "alice", "amount": 1, "coin_y": state.coin_y},
        )
        envelope = bob._holder_envelope(held, "top_up", delta=1, funding_auth=auth.encode())
        with pytest.raises(VerificationFailed):
            bob.request(net.broker.address, protocol.TOP_UP, protocol.encode_dual(envelope))
        assert net.broker.balance("alice") == 24  # untouched (25 - 1 purchase)

    def test_auth_bound_to_coin_and_amount(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        s1 = alice.purchase(value=1)
        s2 = alice.purchase(value=1)
        alice.issue("bob", s1.coin_y)
        alice.issue("bob", s2.coin_y)
        held = bob.wallet[s1.coin_y]
        # Authorization for coin s2 replayed against coin s1: rejected.
        auth = seal(
            bob.identity,
            {"kind": "whopay.debit_auth", "account": "bob", "amount": 1, "coin_y": s2.coin_y},
        )
        envelope = bob._holder_envelope(held, "top_up", delta=1, funding_auth=auth.encode())
        with pytest.raises(ProtocolError):
            bob.request(net.broker.address, protocol.TOP_UP, protocol.encode_dual(envelope))

    def test_nonpositive_delta_rejected(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=1)
        alice.issue("bob", state.coin_y)
        with pytest.raises(ValueError):
            bob.top_up(state.coin_y, delta=0)
