"""Member expulsion tests (detect-and-remove, Section 5.1's closing note)."""

import pytest

from repro.core.errors import VerificationFailed
from repro.crypto.group_signature import GroupSignatureError, group_sign, group_verify


class TestRosterExpulsion:
    def test_expelled_member_leaves_current_roster(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        assert net.judge.member_count() == 3
        version = net.judge.expel("bob")
        assert net.judge.member_count() == 2
        assert net.judge.is_expelled("bob")
        assert net.judge.minimum_accepted_version == version

    def test_expelled_member_cannot_sign_current_snapshot(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        net.judge.expel("bob")
        gpk = net.judge.group_public_key()
        with pytest.raises(GroupSignatureError):
            group_sign(gpk, bob.member_key, b"m")

    def test_expelling_unknown_member_fails(self, funded_trio):
        net, _alice, _bob, _carol = funded_trio
        with pytest.raises(GroupSignatureError):
            net.judge.expel("nobody")
        net.judge.expel("bob")
        with pytest.raises(GroupSignatureError):
            net.judge.expel("bob")  # already out

    def test_survivors_still_operate(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("carol", state.coin_y)
        net.judge.expel("bob")
        # Carol's wallet and alice's serving work fine post-expulsion.
        carol.transfer("alice", state.coin_y)
        assert state.coin_y in alice.wallet
        assert alice.deposit(state.coin_y, payout_to="alice") == 1


class TestRevocationFloor:
    def test_pre_expulsion_snapshot_replay_refused(self, funded_trio):
        # The attack the floor exists for: bob signs with the OLD roster
        # (which still contains him) after being expelled.
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        old_gpk = net.judge.group_public_key()  # bob still in this snapshot
        net.judge.expel("bob")
        held = bob.wallet[state.coin_y]
        from repro.core import protocol
        from repro.messages.envelope import group_seal

        operation = protocol.HolderOperation(
            op="deposit",
            coin_cert=held.coin.encode(),
            proof_binding=held.binding.signed.encode(),
            proof_via_broker=held.binding.via_broker,
            payout_to="bob",
        )
        envelope = group_seal(
            held.holder_keypair, bob.member_key, old_gpk, operation.to_payload()
        )
        # The signature itself verifies against the old snapshot…
        assert group_verify(old_gpk, envelope.inner.encode(), envelope.group_signature)
        # …but the broker refuses it by version.
        with pytest.raises(VerificationFailed, match="revoked snapshot"):
            bob.request(net.broker.address, protocol.DEPOSIT, protocol.encode_dual(envelope))

    def test_peers_refuse_stale_snapshots_too(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        old_gpk = net.judge.group_public_key()
        net.judge.expel("bob")
        held = bob.wallet[state.coin_y]
        from repro.core import protocol
        from repro.core.errors import NotHolder, VerificationFailed as VF
        from repro.crypto.keys import KeyPair
        from repro.messages.envelope import group_seal

        payee_key = KeyPair.generate(net.params)
        operation = protocol.HolderOperation(
            op="transfer",
            coin_cert=held.coin.encode(),
            proof_binding=held.binding.signed.encode(),
            proof_via_broker=held.binding.via_broker,
            new_holder_y=payee_key.public.y,
            nonce=b"n" * 16,
        )
        envelope = group_seal(held.holder_keypair, bob.member_key, old_gpk, operation.to_payload())
        with pytest.raises(VF):
            bob.request(
                alice.address,
                protocol.TRANSFER_REQUEST,
                {"envelope": protocol.encode_dual(envelope), "payee": "carol", "nonce": b"n" * 16},
            )

    def test_historical_evidence_still_opens(self, funded_trio):
        # Expulsion must not destroy the judge's ability to open the
        # culprit's past signatures (the evidence trail).
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        captured = {}
        original = net.transport.request

        def tap(src, dst, kind, payload):
            if kind == "whopay.transfer_request":
                captured["envelope"] = payload["envelope"]
            return original(src, dst, kind, payload)

        net.transport.request = tap
        bob.transfer("carol", state.coin_y)
        net.judge.expel("bob")
        from repro.core import protocol

        envelope = protocol.decode_dual(captured["envelope"], net.params)
        assert net.judge.open(envelope.group_signature) == "bob"


class TestFullStoryWithAdjudication:
    def test_detect_convict_expel(self, funded_trio):
        """The complete justice pipeline: fraud -> verdict -> expulsion."""
        import copy

        from repro.core.audit import adjudicate_double_deposit
        from repro.core.errors import DoubleSpendDetected

        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        stale = copy.deepcopy(bob.wallet[state.coin_y])
        bob.transfer("carol", state.coin_y)
        bob.wallet[state.coin_y] = stale
        bob.deposit(state.coin_y)
        with pytest.raises(DoubleSpendDetected):
            carol.deposit(state.coin_y)
        verdict = adjudicate_double_deposit(
            net.broker.fraud_events[-1],
            alice.owned[state.coin_y].relinquishments,
            net.params,
            net.judge,
        )
        assert verdict.culprit == "bob"
        net.judge.expel(verdict.culprit)
        assert net.judge.is_expelled("bob")
        # Bob can still RECEIVE (payee-side needs no group signature)…
        s2 = alice.purchase()
        alice.issue("bob", s2.coin_y)
        assert s2.coin_y in bob.wallet
        # …but every holder operation — spend, deposit — is now impossible:
        # he cannot produce a group signature against any accepted snapshot.
        with pytest.raises(GroupSignatureError):
            bob.transfer("carol", s2.coin_y)
        with pytest.raises(GroupSignatureError):
            bob.deposit(s2.coin_y)