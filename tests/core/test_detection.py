"""Real-time double-spending detection tests (Section 5.1)."""

import pytest

from repro.core.coin import CoinBinding
from repro.dht.binding_store import WriteRejected
from repro.core.network import PeerConfig


@pytest.fixture()
def rig(detection_network):
    net = detection_network
    alice = net.add_peer("alice", PeerConfig(balance=20))
    bob = net.add_peer("bob")
    carol = net.add_peer("carol")
    dave = net.add_peer("dave")
    return net, alice, bob, carol, dave


class TestPublishing:
    def test_issue_publishes_binding(self, rig):
        net, alice, bob, _carol, _dave = rig
        state = alice.purchase()
        binding = alice.issue("bob", state.coin_y)
        published = net.detection.fetch_binding("test", state.coin_y)
        assert published is not None
        assert published.encode() == binding.encode()

    def test_transfer_updates_public_binding(self, rig):
        net, alice, bob, carol, _dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        b2 = bob.transfer("carol", state.coin_y)
        assert net.detection.fetch_binding("test", state.coin_y).seq == b2.seq

    def test_downtime_ops_publish_via_broker(self, rig):
        net, alice, bob, carol, _dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        published = net.detection.fetch_binding("test", state.coin_y)
        assert published.via_broker

    def test_renewal_publishes(self, rig):
        net, alice, bob, _carol, _dave = rig
        state = alice.purchase()
        b1 = alice.issue("bob", state.coin_y)
        b2 = bob.renew(state.coin_y)
        assert net.detection.fetch_binding("test", state.coin_y).seq == b2.seq


class TestPayeeVerification:
    def test_payee_rejects_unpublished_binding(self, rig):
        # If the owner skips publishing, the payee refuses payment — the
        # paper's "does not accept payment until verifying" rule.  Simulate
        # by disabling the owner's detection hook.
        net, alice, bob, _carol, _dave = rig
        state = alice.purchase()
        alice.detection = None  # malicious owner: no publish
        from repro.core.errors import ProtocolError

        with pytest.raises(ProtocolError, match="public binding"):
            alice.issue("bob", state.coin_y)


class TestMonitoring:
    def test_holder_alarmed_on_rebind(self, rig):
        net, alice, bob, _carol, dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        # Alice fraudulently re-binds the coin to dave behind bob's back.
        evil = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=dave.identity.public.y,
            seq=alice.owned[state.coin_y].binding.seq + 1,
            exp_date=net.clock.now() + 1000,
        )
        net.detection.publish_owner(alice, alice.owned[state.coin_y], evil)
        assert len(bob.alarms) == 1
        alarm = bob.alarms[0]
        assert alarm.coin_y == state.coin_y
        assert alarm.observed_holder_y == dave.identity.public.y

    def test_own_updates_do_not_alarm(self, rig):
        net, alice, bob, _carol, _dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.renew(state.coin_y)
        assert bob.alarms == []

    def test_spent_coin_not_monitored(self, rig):
        net, alice, bob, carol, _dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.transfer("carol", state.coin_y)
        # Subsequent updates concern carol, not bob.
        carol.renew(state.coin_y)
        assert bob.alarms == []
        assert carol.alarms == []

    def test_offline_holder_misses_push_but_state_is_durable(self, rig):
        net, alice, bob, _carol, dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.depart()
        evil = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=dave.identity.public.y,
            seq=alice.owned[state.coin_y].binding.seq + 1,
            exp_date=net.clock.now() + 1000,
        )
        net.detection.publish_owner(alice, alice.owned[state.coin_y], evil)
        assert bob.alarms == []  # push missed while offline
        bob.rejoin()
        # But the public record is still there for bob to check on rejoin.
        published = net.detection.fetch_binding(bob.address, state.coin_y)
        assert published.holder_y == dave.identity.public.y


class TestAccessControlIntegration:
    def test_rollback_publish_rejected(self, rig):
        net, alice, bob, _carol, dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        bob.renew(state.coin_y)
        stale = CoinBinding.build(
            state.coin_keypair,
            coin_y=state.coin_y,
            holder_y=dave.identity.public.y,
            seq=1,  # behind the published sequence
            exp_date=net.clock.now() + 1000,
        )
        with pytest.raises(WriteRejected):
            net.detection.publish_owner(alice, alice.owned[state.coin_y], stale)
        assert net.detection.rejected_publishes == 1

    def test_nonowner_cannot_publish(self, rig):
        net, alice, bob, _carol, dave = rig
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        forged = CoinBinding.build(
            dave.identity,  # wrong key entirely
            coin_y=state.coin_y,
            holder_y=dave.identity.public.y,
            seq=99,
            exp_date=net.clock.now() + 1000,
        )
        with pytest.raises(WriteRejected):
            net.detection.publish_owner(dave, alice.owned[state.coin_y], forged)
