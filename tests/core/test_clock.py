"""Clock tests."""

import pytest

from repro.core.clock import DAY, DEFAULT_RENEWAL_PERIOD, HOUR, Clock


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_custom_start(self):
        assert Clock(start=100.0).now() == 100.0

    def test_advance(self):
        clock = Clock()
        assert clock.advance(5.0) == 5.0
        assert clock.now() == 5.0

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(42.0)
        assert clock.now() == 42.0

    def test_no_time_travel(self):
        clock = Clock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_paper_constants(self):
        assert HOUR == 3600.0
        assert DAY == 24 * HOUR
        # Section 6.1: "We use a renewal period of 3 days".
        assert DEFAULT_RENEWAL_PERIOD == 3 * DAY
