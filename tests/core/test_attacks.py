"""Adversarial tests: forgery, replay, impersonation attempts must fail.

These encode the paper's security claims (Section 4.3): "nobody other than
the broker can create coins and nobody is able to pose as somebody else, for
example, to spend coins he does not hold or handle transfer of coins he does
not own."
"""

import copy

import pytest

from repro.core import protocol
from repro.core.coin import Coin, CoinBinding
from repro.core.errors import NotHolder, NotOwner, ProtocolError, UnknownCoin, VerificationFailed
from repro.crypto.keys import KeyPair
from repro.messages.envelope import group_seal, seal


class TestCoinForgery:
    def test_self_minted_coin_rejected_by_payee(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        fake_broker = KeyPair.generate(net.params)
        coin_keypair = KeyPair.generate(net.params)
        fake_coin = Coin.build(fake_broker, coin_keypair.public.y, 100, "alice", alice.identity.public.y)
        with pytest.raises(VerificationFailed):
            bob.request(alice.address, protocol.ISSUE_OFFER, fake_coin.encode())

    def test_self_minted_coin_rejected_at_deposit(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        # Alice forges a coin signed by herself and tries to deposit it.
        coin_keypair = KeyPair.generate(net.params)
        fake_coin = Coin.build(alice.identity, coin_keypair.public.y, 100, "alice", alice.identity.public.y)
        binding = CoinBinding.build(coin_keypair, coin_keypair.public.y, coin_keypair.public.y, 1, 10_000)
        operation = protocol.HolderOperation(
            op="deposit",
            coin_cert=fake_coin.encode(),
            proof_binding=binding.signed.encode(),
            proof_via_broker=False,
            payout_to="alice",
        )
        envelope = group_seal(coin_keypair, alice.member_key, net.judge.group_public_key(), operation.to_payload())
        with pytest.raises(VerificationFailed):
            alice.request(net.broker.address, protocol.DEPOSIT, protocol.encode_dual(envelope))

    def test_unknown_coin_rejected(self, funded_trio):
        net, alice, _bob, _carol = funded_trio
        state = alice.purchase()
        # Broker "forgets" the coin (e.g. a different broker instance).
        del net.broker.valid_coins[state.coin_y]
        binding = CoinBinding.build(state.coin_keypair, state.coin_y, state.coin_keypair.public.y, 1, 10_000)
        operation = protocol.HolderOperation(
            op="deposit",
            coin_cert=state.coin.encode(),
            proof_binding=binding.signed.encode(),
            proof_via_broker=False,
            payout_to="x",
        )
        envelope = group_seal(
            state.coin_keypair, alice.member_key, net.judge.group_public_key(), operation.to_payload()
        )
        with pytest.raises(UnknownCoin):
            alice.request(net.broker.address, protocol.DEPOSIT, protocol.encode_dual(envelope))


class TestImpersonation:
    def test_nonholder_cannot_deposit(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase(value=5)
        alice.issue("bob", state.coin_y)
        held = bob.wallet[state.coin_y]
        # Carol steals the public half of bob's holding (coin + binding) but
        # not the holder secret, and signs with her own key pair.
        thief_keypair = KeyPair.generate(net.params)
        operation = protocol.HolderOperation(
            op="deposit",
            coin_cert=held.coin.encode(),
            proof_binding=held.binding.signed.encode(),
            proof_via_broker=False,
            payout_to="carol",
        )
        envelope = group_seal(
            thief_keypair, carol.member_key, net.judge.group_public_key(), operation.to_payload()
        )
        with pytest.raises(NotHolder):
            carol.request(net.broker.address, protocol.DEPOSIT, protocol.encode_dual(envelope))
        assert net.broker.balance("carol") == 0

    def test_nonowner_cannot_serve_transfers(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        held = bob.wallet[state.coin_y]
        # Bob sends a well-formed transfer request to CAROL, who does not
        # own the coin; she must refuse rather than mint a binding.
        payee_keypair = KeyPair.generate(net.params)
        operation = protocol.HolderOperation(
            op="transfer",
            coin_cert=held.coin.encode(),
            proof_binding=held.binding.signed.encode(),
            proof_via_broker=False,
            new_holder_y=payee_keypair.public.y,
            nonce=b"n" * 16,
        )
        envelope = group_seal(
            held.holder_keypair, bob.member_key, net.judge.group_public_key(), operation.to_payload()
        )
        with pytest.raises(NotOwner):
            bob.request(
                carol.address,
                protocol.TRANSFER_REQUEST,
                {"envelope": protocol.encode_dual(envelope), "payee": "alice", "nonce": b"n" * 16},
            )

    def test_payee_rejects_wrong_ownership_proof(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        # Mallory (= bob here) intercepts and replays an issue completion
        # with a proof produced by the wrong identity.
        offer = alice.request(bob.address, protocol.ISSUE_OFFER, state.coin.encode())
        binding = CoinBinding.build(
            state.coin_keypair, state.coin_y, offer["holder_y"], 1, net.clock.now() + 1000
        )
        from repro.crypto.schnorr import schnorr_prove

        wrong_prover = KeyPair.generate(net.params)
        proof = schnorr_prove(wrong_prover, b"whopay-owner-proof|" + offer["nonce"] + b"|" + binding.encode())
        result = alice.request(
            bob.address,
            protocol.ISSUE_COMPLETE,
            {
                "coin": state.coin.encode(),
                "binding": binding.encode(),
                "binding_dual": None,
                "via_broker": False,
                "proof_t": proof.commitment,
                "proof_z": proof.response,
                "nonce": offer["nonce"],
            },
        )
        assert not result["ok"] and "proof" in result["reason"]


class TestReplay:
    def test_completion_replay_rejected(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        captured = {}
        original = bob._handlers[protocol.ISSUE_COMPLETE]

        def spy(src, payload):
            captured.update(payload)
            return original(src, payload)

        bob._handlers[protocol.ISSUE_COMPLETE] = spy
        alice.issue("bob", state.coin_y)
        # Replaying the captured completion must fail: the nonce was consumed.
        result = alice.request(bob.address, protocol.ISSUE_COMPLETE, dict(captured))
        assert not result["ok"]

    def test_stale_binding_replay_to_broker_rejected(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        stale_held = copy.deepcopy(bob.wallet[state.coin_y])
        bob.transfer("carol", state.coin_y)
        alice.depart()
        carol.renew(state.coin_y)  # broker now has newer state (downtime renewal)
        bob.wallet[state.coin_y] = stale_held
        with pytest.raises((NotHolder, VerificationFailed)):
            bob.transfer_via_broker("carol", state.coin_y)

    def test_renewal_request_cannot_be_replayed_for_double_bump(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        held = bob.wallet[state.coin_y]
        envelope = bob._holder_envelope(held, "renewal")
        data = protocol.encode_dual(envelope)
        first = bob.request(alice.address, protocol.RENEW_REQUEST, data)
        assert first is not None
        # The owner's binding moved past the proof in the replayed request.
        with pytest.raises(NotHolder):
            bob.request(alice.address, protocol.RENEW_REQUEST, data)


class TestTamperedBindings:
    def test_payee_rejects_binding_for_other_holder(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        offer = alice.request(bob.address, protocol.ISSUE_OFFER, state.coin.encode())
        mallory_keypair = KeyPair.generate(net.params)
        binding = CoinBinding.build(
            state.coin_keypair, state.coin_y, mallory_keypair.public.y, 1, net.clock.now() + 1000
        )
        from repro.crypto.schnorr import schnorr_prove

        proof = schnorr_prove(
            alice.identity, b"whopay-owner-proof|" + offer["nonce"] + b"|" + binding.encode()
        )
        result = alice.request(
            bob.address,
            protocol.ISSUE_COMPLETE,
            {
                "coin": state.coin.encode(),
                "binding": binding.encode(),
                "binding_dual": None,
                "via_broker": False,
                "proof_t": proof.commitment,
                "proof_z": proof.response,
                "nonce": offer["nonce"],
            },
        )
        assert not result["ok"] and "holder" in result["reason"]

    def test_payee_rejects_expired_binding(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        offer = alice.request(bob.address, protocol.ISSUE_OFFER, state.coin.encode())
        binding = CoinBinding.build(
            state.coin_keypair, state.coin_y, offer["holder_y"], 1, exp_date=0.0
        )
        net.advance(1)
        from repro.crypto.schnorr import schnorr_prove

        proof = schnorr_prove(
            alice.identity, b"whopay-owner-proof|" + offer["nonce"] + b"|" + binding.encode()
        )
        result = alice.request(
            bob.address,
            protocol.ISSUE_COMPLETE,
            {
                "coin": state.coin.encode(),
                "binding": binding.encode(),
                "binding_dual": None,
                "via_broker": False,
                "proof_t": proof.commitment,
                "proof_z": proof.response,
                "nonce": offer["nonce"],
            },
        )
        assert not result["ok"] and "expired" in result["reason"]
