"""Multi-coin payment (change-making) tests."""

import pytest


class TestPayAmount:
    def test_single_coin_exact(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase(value=5)
        alice.issue("bob", state.coin_y)
        legs = bob.pay_amount("carol", 5)
        assert legs == [("transfer", 5)]
        assert carol.balance_held() == 5

    def test_multiple_coins_combined(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        for value in (3, 2, 1):
            state = alice.purchase(value=value)
            alice.issue("bob", state.coin_y)
        legs = bob.pay_amount("carol", 6)
        assert sum(v for _m, v in legs) == 6
        assert carol.balance_held() == 6
        assert bob.balance_held() == 0

    def test_largest_first_no_overshoot(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        for value in (5, 3, 1):
            state = alice.purchase(value=value)
            alice.issue("bob", state.coin_y)
        bob.pay_amount("carol", 4)
        # 5 would overshoot; the 3 and the 1 were chosen.
        assert carol.balance_held() == 4
        assert bob.balance_held() == 5

    def test_topup_with_purchases(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase(value=2)
        alice.issue("bob", state.coin_y)
        legs = bob.pay_amount("carol", 4)
        assert sum(v for _m, v in legs) == 4
        assert carol.balance_held() == 4
        # The remainder came from bob's purchase+issue of unit coins.
        methods = [m for m, _v in legs]
        assert methods.count("purchase_issue") == 2
        assert net.broker.balance("bob") == 8

    def test_offline_owner_uses_broker_leg(self, funded_trio):
        _net, alice, bob, carol = funded_trio
        state = alice.purchase(value=3)
        alice.issue("bob", state.coin_y)
        alice.depart()
        legs = bob.pay_amount("carol", 3)
        assert legs == [("downtime_transfer", 3)]

    def test_rejects_nonpositive(self, funded_trio):
        _net, alice, _bob, _carol = funded_trio
        with pytest.raises(ValueError):
            alice.pay_amount("bob", 0)

    def test_value_arrives_intact(self, funded_trio):
        net, alice, bob, carol = funded_trio
        for value in (4, 2):
            state = alice.purchase(value=value)
            alice.issue("bob", state.coin_y)
        bob.pay_amount("carol", 7)
        credited = sum(carol.deposit(c, payout_to="carol") for c in list(carol.wallet))
        assert credited == 7
        assert net.broker.balance("carol") == 7
