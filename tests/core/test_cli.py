"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main([
            "run", "--peers", "20", "--days", "0.5", "--mu", "2", "--nu", "2",
            "--renewal-days", "0.2", "--policy", "I", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "operation counts" in out
        assert "broker share of CPU load" in out
        assert "transfer" in out

    def test_run_powerlaw(self, capsys):
        code = main([
            "run", "--peers", "20", "--days", "0.5", "--renewal-days", "0.2",
            "--heterogeneity", "powerlaw",
        ])
        assert code == 0
        assert "policy=I" in capsys.readouterr().out

    def test_run_policy_variants(self, capsys):
        for policy in ("II.a", "III", "I.layered"):
            code = main([
                "run", "--peers", "20", "--days", "0.3", "--renewal-days", "0.15",
                "--policy", policy,
            ])
            assert code == 0
            assert f"policy={policy}" in capsys.readouterr().out


class TestCryptoCommand:
    def test_crypto_timing(self, capsys):
        code = main(["crypto", "--bits", "512", "--iterations", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DSA 512-bit key generation" in out
        assert "Table 2" in out


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "IV"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])


class TestFiguresCommand:
    def test_figures_writes_outputs(self, tmp_path, capsys):
        import os

        out_dir = tmp_path / "figs"
        code = main(["figures", "--out", str(out_dir)])
        assert code == 0
        assert "wrote 10 figures" in capsys.readouterr().out
        assert (out_dir / "fig2.csv").exists()
        assert (out_dir / "figures.txt").exists()
