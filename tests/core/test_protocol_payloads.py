"""Direct tests of the protocol payload validators (`repro.core.protocol`)."""

import pytest

from repro.core.protocol import BatchPurchaseRequest, HolderOperation, PurchaseRequest


class TestPurchaseRequest:
    def test_roundtrip(self):
        request = PurchaseRequest(coin_y=123, value=5, account="alice")
        rebuilt = PurchaseRequest.from_payload(request.to_payload())
        assert rebuilt == request

    def test_anonymous_roundtrip(self):
        request = PurchaseRequest(coin_y=1, value=1, account="a", anonymous=True, handle=b"h" * 32)
        rebuilt = PurchaseRequest.from_payload(request.to_payload())
        assert rebuilt.anonymous and rebuilt.handle == b"h" * 32

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="not a purchase"):
            PurchaseRequest.from_payload({"kind": "other"})
        with pytest.raises(ValueError):
            PurchaseRequest.from_payload("not a dict")

    def test_rejects_bad_types(self):
        payload = PurchaseRequest(coin_y=1, value=1, account="a").to_payload()
        payload["coin_y"] = "string"
        with pytest.raises(ValueError, match="malformed"):
            PurchaseRequest.from_payload(payload)

    def test_rejects_nonpositive_value(self):
        payload = PurchaseRequest(coin_y=1, value=1, account="a").to_payload()
        payload["value"] = 0
        with pytest.raises(ValueError, match="positive"):
            PurchaseRequest.from_payload(payload)

    def test_anonymous_requires_handle(self):
        payload = PurchaseRequest(coin_y=1, value=1, account="a").to_payload()
        payload["anonymous"] = True
        payload["handle"] = None
        with pytest.raises(ValueError, match="handle"):
            PurchaseRequest.from_payload(payload)


class TestBatchPurchaseRequest:
    def test_roundtrip(self):
        request = BatchPurchaseRequest(coins=((1, 2), (3, 4)), account="a")
        payload = request.to_payload()
        from repro.messages.codec import decode, encode

        rebuilt = BatchPurchaseRequest.from_payload(decode(encode(payload)))
        assert rebuilt.coins == ((1, 2), (3, 4))

    def test_rejects_empty_batch(self):
        from repro.messages.codec import decode, encode

        payload = decode(encode({"kind": "whopay.batch_purchase_request", "coins": [], "account": "a"}))
        with pytest.raises(ValueError, match="at least one"):
            BatchPurchaseRequest.from_payload(payload)

    def test_rejects_duplicates(self):
        from repro.messages.codec import decode, encode

        payload = decode(encode(
            {"kind": "whopay.batch_purchase_request", "coins": [[1, 1], [1, 2]], "account": "a"}
        ))
        with pytest.raises(ValueError, match="duplicate"):
            BatchPurchaseRequest.from_payload(payload)

    def test_rejects_malformed_entries(self):
        from repro.messages.codec import decode, encode

        for bad_coins in ([[1]], [[1, 0]], [["x", 2]]):
            payload = decode(encode(
                {"kind": "whopay.batch_purchase_request", "coins": bad_coins, "account": "a"}
            ))
            with pytest.raises(ValueError):
                BatchPurchaseRequest.from_payload(payload)


class TestHolderOperation:
    def base(self, **overrides):
        fields = dict(
            op="deposit",
            coin_cert=b"cert",
            proof_binding=b"binding",
            proof_via_broker=False,
            payout_to="account",
        )
        fields.update(overrides)
        return HolderOperation(**fields)

    def test_deposit_roundtrip(self):
        operation = self.base()
        rebuilt = HolderOperation.from_payload(operation.to_payload())
        assert rebuilt == operation

    def test_transfer_requires_new_holder(self):
        payload = self.base().to_payload()
        payload["op"] = "transfer"
        payload["new_holder_y"] = None
        with pytest.raises(ValueError, match="new holder"):
            HolderOperation.from_payload(payload)

    def test_deposit_requires_payout(self):
        payload = self.base().to_payload()
        payload["payout_to"] = None
        with pytest.raises(ValueError, match="payout"):
            HolderOperation.from_payload(payload)

    def test_top_up_requires_delta_and_auth(self):
        payload = self.base(op="renewal").to_payload()
        payload["op"] = "top_up"
        with pytest.raises(ValueError, match="delta"):
            HolderOperation.from_payload(payload)
        payload["delta"] = 3
        with pytest.raises(ValueError, match="authorization"):
            HolderOperation.from_payload(payload)
        payload["funding_auth"] = b"auth"
        rebuilt = HolderOperation.from_payload(payload)
        assert rebuilt.delta == 3

    def test_unknown_op_rejected(self):
        payload = self.base().to_payload()
        payload["op"] = "mint"
        with pytest.raises(ValueError, match="unknown holder op"):
            HolderOperation.from_payload(payload)

    def test_renewal_needs_no_extras(self):
        operation = self.base(op="renewal", payout_to=None)
        rebuilt = HolderOperation.from_payload(operation.to_payload())
        assert rebuilt.op == "renewal"
        assert rebuilt.new_holder_y is None
