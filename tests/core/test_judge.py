"""Judge tests: registration, opening, threshold escrow."""

import pytest

from repro.core.judge import Judge
from repro.crypto.group_signature import group_sign
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture()
def judge():
    return Judge(PARAMS_TEST_512)


class TestRegistration:
    def test_register_grows_roster(self, judge):
        assert judge.member_count() == 0
        judge.register("alice")
        judge.register("bob")
        assert judge.member_count() == 2
        assert len(judge.group_public_key().roster) == 2

    def test_versioned_snapshots(self, judge):
        alice = judge.register("alice")
        v1 = judge.group_public_key_at(1)
        judge.register("bob")
        assert len(judge.group_public_key_at(1).roster) == 1
        assert len(judge.group_public_key_at(2).roster) == 2
        sig = group_sign(v1, alice, b"m")
        from repro.crypto.group_signature import group_verify

        assert group_verify(judge.group_public_key_at(1), b"m", sig)


class TestOpening:
    def test_open_reveals_signer(self, judge):
        alice = judge.register("alice")
        judge.register("bob")
        sig = group_sign(judge.group_public_key(), alice, b"tx")
        assert judge.open(sig) == "alice"
        assert judge.openings_performed == 1

    def test_threshold_open_with_enough_shares(self, judge):
        alice = judge.register("alice")
        sig = group_sign(judge.group_public_key(), alice, b"tx")
        shares = judge.export_opening_shares(n=5, k=3)
        assert judge.threshold_open(shares[1:4], sig) == "alice"

    def test_threshold_open_with_too_few_shares_fails(self, judge):
        alice = judge.register("alice")
        sig = group_sign(judge.group_public_key(), alice, b"tx")
        shares = judge.export_opening_shares(n=5, k=3)
        assert judge.threshold_open(shares[:2], sig) is None
