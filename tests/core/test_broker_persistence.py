"""Broker persistence tests: the mint survives restarts."""

import pytest

from repro.core.broker import Broker
from repro.core.errors import DoubleSpendDetected, VerificationFailed
from repro.core.persistence import export_broker_state, restore_broker_state


def restart_broker(net):
    """Tear down the broker node and rebuild it at the same address."""
    net.transport.unregister(net.broker.address)
    fresh = Broker(
        net.transport,
        judge=net.judge,
        params=net.params,
        clock=net.clock,
        address=net.broker.address,
        renewal_period=net.broker.renewal_period,
    )
    net.broker = fresh
    if net.detection is not None:
        fresh.detection = net.detection
    return fresh


class TestBrokerRoundTrip:
    def test_accounts_and_coins_survive(self, funded_trio):
        net, alice, bob, _carol = funded_trio
        state = alice.purchase(value=3)
        alice.issue("bob", state.coin_y)
        blob = export_broker_state(net.broker)
        fresh = restart_broker(net)
        restore_broker_state(fresh, blob)
        assert fresh.balance("alice") == 22
        assert state.coin_y in fresh.valid_coins
        # The restored broker redeems the outstanding coin at full value —
        # but only after peers are repointed at the restored key.
        bob.broker_key = fresh.public_key
        assert bob.deposit(state.coin_y, payout_to="bob") == 3

    def test_signing_key_survives(self, funded_trio):
        # Critical: a new signing key would orphan every outstanding coin.
        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        old_key_y = net.broker.public_key.y
        blob = export_broker_state(net.broker)
        fresh = restart_broker(net)
        assert fresh.public_key.y != old_key_y  # fresh broker, fresh key
        restore_broker_state(fresh, blob)
        assert fresh.public_key.y == old_key_y  # restored
        # Outstanding coin still verifies under the restored key.
        assert bob.wallet[state.coin_y].coin.verify(fresh.public_key)

    def test_double_spend_ledger_survives(self, funded_trio):
        import copy

        net, alice, bob, _carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        held = copy.deepcopy(bob.wallet[state.coin_y])
        bob.deposit(state.coin_y)
        blob = export_broker_state(net.broker)
        fresh = restart_broker(net)
        restore_broker_state(fresh, blob)
        # Replaying the old coin against the restored broker still trips
        # the ledger — a restart must not reopen the double-spend window.
        bob.wallet[state.coin_y] = held
        bob.broker_key = fresh.public_key
        with pytest.raises(DoubleSpendDetected):
            bob.deposit(state.coin_y)

    def test_downtime_state_survives(self, funded_trio):
        net, alice, bob, carol = funded_trio
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        blob = export_broker_state(net.broker)
        fresh = restart_broker(net)
        restore_broker_state(fresh, blob)
        assert state.coin_y in fresh.downtime_bindings
        assert state.coin_y in fresh.pending_sync["alice"]
        # Alice's proactive sync works against the restored broker.
        expected_seq = fresh.downtime_bindings[state.coin_y].seq
        alice.broker_key = fresh.public_key
        alice.rejoin()
        assert alice.owned[state.coin_y].binding.seq == expected_seq
        assert "alice" not in fresh.pending_sync  # consumed by the sync

    def test_encryption_and_tamper_rejection(self, funded_trio):
        net, _alice, _bob, _carol = funded_trio
        key = b"b" * 32
        blob = export_broker_state(net.broker, encryption_key=key)
        assert blob.startswith(b"enc:")
        fresh = restart_broker(net)
        with pytest.raises(VerificationFailed):
            restore_broker_state(fresh, blob)  # missing key
        restore_broker_state(fresh, blob, encryption_key=key)

    def test_garbage_rejected(self, funded_trio):
        net, _alice, _bob, _carol = funded_trio
        fresh = restart_broker(net)
        with pytest.raises(Exception):
            restore_broker_state(fresh, b"junk")
