"""Sharded broker federation behind the unified BrokerAPI (PR 7).

Covers the consistent-hash shard map, the topology/config objects and the
deprecation shim, the ShardRouter facade, shard-aware client routing, and
— the heart of the PR — exactly-once cross-shard handoffs for purchase,
batch purchase, deposit, and top-up.
"""

import warnings

import pytest

from repro.core import protocol
from repro.core.broker import handoff_id
from repro.core.errors import ProtocolError, VerificationFailed
from repro.messages.envelope import seal
from repro.core.brokerapi import BrokerAPI, ShardRouter
from repro.core.coin import Coin
from repro.core.network import BrokerTopology, PeerConfig, WhoPayNetwork
from repro.core.sharding import ShardMap
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512
from repro.messages.envelope import seal
from repro.net.rpc import RetryPolicy
from repro.net.transport import FaultPlan
from repro.store.audit import audit_broker

RETRY = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=0.1)


@pytest.fixture()
def fednet():
    """A 4-shard federation with a retry policy (handoffs ride RPC retries)."""
    return WhoPayNetwork(
        params=PARAMS_TEST_512,
        retry_policy=RETRY,
        topology=BrokerTopology(shards=4),
    )


def coin_keypair_homed(net, shard_address):
    """A coin keypair whose consistent-hash home is ``shard_address``."""
    while True:
        keypair = KeyPair.generate(net.params)
        if net.shard_map.shard_for_coin(keypair.public.y) == shard_address:
            return keypair


def purchase_homed(net, peer, shard_address, value=1):
    """Purchase a coin whose home is ``shard_address`` (forces or avoids a
    cross-shard handoff depending on the buyer's account home)."""
    keypair = coin_keypair_homed(net, shard_address)
    request = protocol.PurchaseRequest(
        coin_y=keypair.public.y, value=value, account=peer.address
    )
    signed = seal(peer.identity, request.to_payload())
    coin_bytes = peer.broker_client.purchase(signed.encode(), account=peer.address)
    coin = Coin(cert=protocol.decode_signed(coin_bytes, net.params))
    assert coin.verify(peer.broker_key)
    return coin


class TestShardMap:
    def test_deterministic_and_total(self):
        a = ShardMap(["s0", "s1", "s2"])
        b = ShardMap(["s0", "s1", "s2"])
        assert a == b
        for key in range(200):
            assert a.shard_for_coin(key) == b.shard_for_coin(key)
            assert a.shard_for_coin(key) in a.addresses

    def test_spread_is_roughly_uniform(self):
        shard_map = ShardMap(["s0", "s1", "s2", "s3"])
        spread = shard_map.spread([1_000_003 * i + 17 for i in range(4000)])
        assert set(spread) == set(shard_map.addresses)
        assert min(spread.values()) > 4000 // 4 // 2  # no shard starved

    def test_coin_and_account_keyspaces_are_disjoint(self):
        shard_map = ShardMap(["s0", "s1"])
        # Same raw value, different namespaces — may land anywhere, but the
        # lookup must be stable per namespace.
        assert shard_map.shard_for_coin(42) == shard_map.shard_for_coin(42)
        assert shard_map.shard_for_account("42") == shard_map.shard_for_account("42")

    def test_single_shard_maps_everything_to_it(self):
        shard_map = ShardMap(["only"])
        assert shard_map.shard_for_coin(7) == "only"
        assert shard_map.shard_for_account("x") == "only"


class TestTopologyAndConfig:
    def test_single_shard_topology_is_the_classic_broker(self):
        assert BrokerTopology().addresses() == ("broker",)

    def test_federated_topology_addresses(self):
        assert BrokerTopology(shards=3).addresses() == (
            "broker-0",
            "broker-1",
            "broker-2",
        )

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError):
            BrokerTopology(shards=0)
        with pytest.raises(ValueError):
            BrokerTopology(points_per_shard=0)

    def test_invalid_peer_config_rejected(self):
        with pytest.raises(ValueError):
            PeerConfig(balance=-1)
        with pytest.raises(ValueError):
            PeerConfig(sync_mode="eager")

    def test_legacy_positional_balance_warns_but_works(self, network):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            network.add_peer("alice", 10)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert network.broker.balance("alice") == 10

    def test_legacy_keywords_warn_but_work(self, network):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            network.add_peer("bob", balance=3, sync_mode="lazy")
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert network.broker.balance("bob") == 3
        assert network.peer("bob").sync_mode == "lazy"

    def test_config_and_legacy_keywords_conflict(self, network):
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore")
            network.add_peer("carol", PeerConfig(balance=1), balance=2)

    def test_unknown_keyword_rejected(self, network):
        with pytest.raises(TypeError):
            network.add_peer("dave", wealth=9)


class TestBrokerAPISurface:
    def test_single_broker_satisfies_the_protocol(self, network):
        assert isinstance(network.broker, BrokerAPI)
        assert network.shard_map is None
        assert network.router is None

    def test_router_satisfies_the_protocol(self, fednet):
        assert isinstance(fednet.broker, BrokerAPI)
        assert isinstance(fednet.broker, ShardRouter)
        assert len(fednet.shards) == 4

    def test_federation_shares_one_signing_key(self, fednet):
        keys = {shard.public_key.y for shard in fednet.shards}
        assert len(keys) == 1
        assert fednet.broker.public_key.y in keys

    def test_router_rejects_mismatched_map(self, fednet):
        wrong = ShardMap(["other-0", "other-1"])
        with pytest.raises(ValueError):
            ShardRouter(fednet.shards, wrong)

    def test_account_lives_only_on_its_home_shard(self, fednet):
        fednet.add_peer("alice", PeerConfig(balance=8))
        home = fednet.shard_map.shard_for_account("alice")
        for shard in fednet.shards:
            if shard.address == home:
                assert shard.balance("alice") == 8
            else:
                assert shard.balance("alice") == 0
        assert fednet.broker.balance("alice") == 8

    def test_export_ledger_merges_and_breaks_down(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=10))
        alice.purchase_batch(4)
        ledger = fednet.broker.export_ledger()
        assert ledger["coins_minted"] == 4
        assert set(ledger["shards"]) == set(fednet.shard_map.addresses)
        assert ledger["coins_minted"] == sum(
            entry["coins_minted"] for entry in ledger["shards"].values()
        )

    def test_conservation_false_while_a_handoff_is_pending(self, fednet):
        fednet.add_peer("alice", PeerConfig(balance=5))
        assert fednet.broker.verify_conservation(5)
        fednet.shards[0].pending_handoffs["fake"] = {"op": "purchase"}
        assert not fednet.broker.verify_conservation(5)
        del fednet.shards[0].pending_handoffs["fake"]
        assert fednet.broker.verify_conservation(5)


class TestCrossShardFlows:
    def test_local_purchase_stays_on_one_shard(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        home = fednet.shard_map.shard_for_account("alice")
        coin = purchase_homed(fednet, alice, home)
        shard = fednet.router.shard_for_account("alice")
        assert coin.coin_y in shard.valid_coins
        assert shard.counts.handoffs == 0
        assert fednet.broker.verify_conservation(5)

    def test_cross_shard_purchase_mints_on_the_coin_home(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        acct_home = fednet.shard_map.shard_for_account("alice")
        coin_home = next(a for a in fednet.shard_map.addresses if a != acct_home)
        coin = purchase_homed(fednet, alice, coin_home)
        source = fednet.router.shard_for_account("alice")
        dest = fednet.router.shard_for_coin(coin.coin_y)
        assert dest.address == coin_home
        assert coin.coin_y in dest.valid_coins
        assert coin.coin_y not in source.valid_coins
        assert source.balance("alice") == 4  # debited at the account home
        assert dest.counts.handoffs >= 1  # served the mint prepare
        assert not source.pending_handoffs and not dest.pending_handoffs
        assert fednet.broker.verify_conservation(5)

    def test_batch_purchase_spreads_coins_across_shards(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=20))
        states = alice.purchase_batch(12)
        homes = {fednet.shard_map.shard_for_coin(s.coin_y) for s in states}
        assert len(homes) > 1  # 12 random keys over 4 shards
        for state in states:
            shard = fednet.router.shard_for_coin(state.coin_y)
            assert state.coin_y in shard.valid_coins
        assert fednet.broker.balance("alice") == 8
        assert fednet.broker.verify_conservation(20)

    def test_cross_shard_deposit_credits_the_account_home(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        bob = fednet.add_peer("bob")
        # Mint coins until one's home differs from bob's account home, so
        # the deposit (sent to the coin's shard) must hand the credit off.
        bob_home = fednet.shard_map.shard_for_account("bob")
        while True:
            state = alice.purchase()
            if fednet.shard_map.shard_for_coin(state.coin_y) != bob_home:
                break
        alice.issue("bob", state.coin_y)
        credited = bob.deposit(state.coin_y, payout_to="bob")
        assert credited == 1
        assert fednet.router.shard_for_account("bob").balance("bob") == 1
        coin_shard = fednet.router.shard_for_coin(state.coin_y)
        assert state.coin_y in coin_shard.deposited
        assert not any(s.pending_handoffs for s in fednet.shards)
        assert fednet.broker.verify_conservation(5)

    def test_cross_shard_top_up_debits_the_funding_home(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        bob = fednet.add_peer("bob", PeerConfig(balance=6))
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        new_value = bob.top_up(state.coin_y, delta=3, funding_account="bob")
        assert new_value == 4
        coin_shard = fednet.router.shard_for_coin(state.coin_y)
        assert coin_shard.valid_coins[state.coin_y].value == 4
        assert fednet.broker.balance("bob") == 3
        assert not any(s.pending_handoffs for s in fednet.shards)
        assert fednet.broker.verify_conservation(11)

    def test_downtime_transfer_routes_to_the_coin_home(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        bob = fednet.add_peer("bob")
        carol = fednet.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        alice.depart()
        bob.transfer_via_broker("carol", state.coin_y)
        coin_shard = fednet.router.shard_for_coin(state.coin_y)
        assert coin_shard.counts.downtime_transfers == 1
        assert sum(s.counts.downtime_transfers for s in fednet.shards) == 1
        assert state.coin_y in carol.wallet

    def test_sync_fans_out_over_owning_shards(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=20))
        alice.purchase_batch(12)
        homes = {fednet.shard_map.shard_for_coin(y) for y in alice.owned}
        before = {s.address: s.counts.syncs for s in fednet.shards}
        alice.sync_with_broker()
        after = {s.address: s.counts.syncs for s in fednet.shards}
        touched = {a for a in after if after[a] > before[a]}
        assert touched == homes
        assert alice.counts.syncs == 1  # one logical sync, fanned out

    def test_total_opened_baselines_sum_across_shards(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=10))
        bob = fednet.add_peer("bob", PeerConfig(balance=2))
        states = alice.purchase_batch(6)
        for state in states[:3]:
            alice.issue("bob", state.coin_y)
            bob.deposit(state.coin_y, payout_to="bob")
        assert fednet.broker.total_opened == 12
        assert fednet.broker.verify_conservation(12)


class TestHandoffExactlyOnce:
    def test_handoff_id_is_deterministic(self):
        assert handoff_id("purchase", b"abc") == handoff_id("purchase", b"abc")
        assert handoff_id("purchase", b"abc") != handoff_id("deposit", b"abc")
        assert handoff_id("purchase", b"abc") != handoff_id("purchase", b"abd")

    def test_retried_cross_shard_purchase_applies_once(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        acct_home = fednet.shard_map.shard_for_account("alice")
        coin_home = next(a for a in fednet.shard_map.addresses if a != acct_home)
        plan = FaultPlan(seed=3)
        fednet.install_faults(plan)
        plan.scripted_reply_drops = 1  # first reply (client's or the prepare's) dies
        coin = purchase_homed(fednet, alice, coin_home)
        fednet.install_faults(None)
        dest = fednet.router.shard_for_coin(coin.coin_y)
        source = fednet.router.shard_for_account("alice")
        assert source.balance("alice") == 4  # debited exactly once
        assert list(dest.valid_coins).count(coin.coin_y) == 1
        assert source.counts.purchases == 1
        assert not any(s.pending_handoffs for s in fednet.shards)
        assert fednet.broker.verify_conservation(5)
        assert not fednet.broker.fraud_events

    def test_redriven_prepare_is_a_replay_noop(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        acct_home = fednet.shard_map.shard_for_account("alice")
        coin_home = next(a for a in fednet.shard_map.addresses if a != acct_home)
        coin = purchase_homed(fednet, alice, coin_home)
        dest = fednet.router.shard_for_coin(coin.coin_y)
        seen_before = set(dest.handoffs_seen)
        served_before = dest.counts.handoffs
        # Re-drive the same prepare by hand: the durable handoffs_seen set
        # must short-circuit it even though the work is long committed.
        source = fednet.router.shard_for_account("alice")
        h = next(iter(seen_before))
        reply = source._shard_rpc.call(
            dest.address,
            protocol.XSHARD_PREPARE,
            seal(source.keypair, {"h": h, "op": "mint", "coins": []}).encode(),
        )
        assert reply == {"ok": True, "replayed": True}
        assert dest.handoffs_seen == seen_before
        assert dest.counts.handoffs == served_before + 1

    def test_unsigned_prepare_is_rejected(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        acct_home = fednet.shard_map.shard_for_account("alice")
        coin_home = next(a for a in fednet.shard_map.addresses if a != acct_home)
        coin = purchase_homed(fednet, alice, coin_home)
        dest = fednet.router.shard_for_coin(coin.coin_y)
        source = fednet.router.shard_for_account("alice")
        # A raw (unsealed) prepare must bounce before touching state.
        with pytest.raises(ProtocolError):
            source._shard_rpc.call(
                dest.address,
                protocol.XSHARD_PREPARE,
                {"h": "forged", "op": "credit", "credited": 10, "payout_to": "alice"},
            )
        # So must one sealed under a key that is not the federation key.
        rogue = KeyPair.generate(fednet.params)
        with pytest.raises(VerificationFailed):
            source._shard_rpc.call(
                dest.address,
                protocol.XSHARD_PREPARE,
                seal(
                    rogue,
                    {"h": "forged2", "op": "credit", "credited": 10, "payout_to": "alice"},
                ).encode(),
            )
        assert "forged" not in dest.handoffs_seen
        assert "forged2" not in dest.handoffs_seen

    def test_complete_pending_handoffs_drains_an_orphan(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        acct_home = fednet.shard_map.shard_for_account("alice")
        coin_home = next(a for a in fednet.shard_map.addresses if a != acct_home)
        source = fednet.router.shard_for_account("alice")
        # Orphan a handoff: journal the begin exactly as a crash between
        # begin and prepare would leave it, then re-drive.
        keypair = coin_keypair_homed(fednet, coin_home)
        coin = Coin.build(
            source.keypair,
            coin_y=keypair.public.y,
            value=2,
            owner_address="alice",
            owner_y=alice.identity.public.y,
        )
        h = handoff_id("purchase", coin.encode())
        source._commit_local(
            {
                "type": "handoff_begin",
                "h": h,
                "op": "purchase",
                "account": "alice",
                "debit": 2,
                "remote_value": 2,
                "local_coins": [],
                "reply_coins": [coin.encode()],
                "prepares": [
                    {
                        "h": h + "#0",
                        "dest": coin_home,
                        "payload": {"op": "mint", "coins": [coin.encode()]},
                    }
                ],
            }
        )
        assert source.pending_handoffs
        assert not fednet.broker.verify_conservation(5)  # value in flight
        completed = fednet.complete_handoffs()
        assert completed == 1
        assert not source.pending_handoffs
        dest = fednet.router.shard_for_coin(coin.coin_y)
        assert coin.coin_y in dest.valid_coins
        assert source.balance("alice") == 3
        assert fednet.broker.verify_conservation(5)

    def test_insufficient_funds_cross_shard_aborts_cleanly(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=1))
        acct_home = fednet.shard_map.shard_for_account("alice")
        coin_home = next(a for a in fednet.shard_map.addresses if a != acct_home)
        keypair = coin_keypair_homed(fednet, coin_home)
        request = protocol.PurchaseRequest(
            coin_y=keypair.public.y, value=5, account="alice"
        )
        signed = seal(alice.identity, request.to_payload())
        with pytest.raises(Exception):
            alice.broker_client.purchase(signed.encode(), account="alice")
        assert fednet.broker.balance("alice") == 1
        assert not any(s.pending_handoffs for s in fednet.shards)
        assert fednet.broker.verify_conservation(1)


class TestSingleShardCompatibility:
    def test_default_topology_behaves_exactly_as_before(self):
        net = WhoPayNetwork(params=PARAMS_TEST_512)
        alice = net.add_peer("alice", PeerConfig(balance=10))
        bob = net.add_peer("bob")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        assert bob.deposit(state.coin_y, payout_to="bob") == 1
        assert net.broker.address == "broker"
        assert net.broker.counts.handoffs == 0
        assert net.broker.verify_conservation(10)


class TestBatchFanOutRegression:
    """PR 9 satellite: batch-purchase prepares fan out before the outcome.

    Every destination's ``XSHARD_PREPARE`` is issued even when an earlier
    one failed; only then is the batch outcome decided (rejection wins and
    compensates the *whole* record, a transport failure leaves the handoff
    pending).  These tests pin the per-shard state at both boundaries.
    """

    def _batch(self, net, peer, coins):
        request = protocol.BatchPurchaseRequest(coins=tuple(coins), account=peer.address)
        signed = seal(peer.identity, request.to_payload())
        return peer.broker_client.purchase_batch(signed.encode(), account=peer.address)

    def _remote_homes(self, net, peer):
        acct_home = net.shard_map.shard_for_account(peer.address)
        others = [a for a in net.shard_map.addresses if a != acct_home]
        # sorted() order == prepare fan-out order: others[0] is driven first.
        return sorted(others)[:2]

    def test_rejection_compensates_every_shard_in_the_record(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        first_home, second_home = self._remote_homes(fednet, alice)
        # A collision on the *first* destination: its prepare rejects, yet
        # the second destination's mint must still have been issued — and
        # then compensated — rather than never attempted.
        existing = purchase_homed(fednet, alice, first_home)  # balance 5 -> 4
        clean_kp = coin_keypair_homed(fednet, second_home)
        second = fednet.router._by_address[second_home]
        with pytest.raises(ProtocolError):
            self._batch(
                fednet, alice, [(existing.coin_y, 2), (clean_kp.public.y, 1)]
            )
        # The clean shard saw its mint *and* the unmint compensation.
        assert second.counts.handoffs >= 2
        assert clean_kp.public.y not in second.valid_coins
        # Atomic abort: no debit, no pending value, every invariant intact.
        assert fednet.broker.balance("alice") == 4
        assert not any(shard.pending_handoffs for shard in fednet.shards)
        assert fednet.broker.verify_conservation(5)
        for shard in fednet.shards:
            assert audit_broker(shard).ok

    def test_per_shard_conservation_at_a_dead_destination_boundary(self, fednet):
        alice = fednet.add_peer("alice", PeerConfig(balance=5))
        down_home, live_home = self._remote_homes(fednet, alice)
        down = fednet.router._by_address[down_home]
        live = fednet.router._by_address[live_home]
        down_kp = coin_keypair_homed(fednet, down_home)
        live_kp = coin_keypair_homed(fednet, live_home)
        down.go_offline()
        with pytest.raises(Exception):
            self._batch(fednet, alice, [(down_kp.public.y, 1), (live_kp.public.y, 1)])
        # Fan-out reached the live (later-ordered) shard even though the
        # earlier destination was dead: its coin is already minted.
        assert live_kp.public.y in live.valid_coins
        # Crash-boundary state: the begin is durable, value is in flight
        # (conservation is *reported* broken, never silently wrong), the
        # debit has not been applied, and each shard's own audit passes.
        source = fednet.router.shard_for_account("alice")
        assert source.pending_handoffs
        assert fednet.broker.balance("alice") == 5
        assert not fednet.broker.verify_conservation(5)
        for shard in fednet.shards:
            if shard is down:
                continue
            assert audit_broker(shard).ok
        # Recovery: the destination returns and the re-drive settles the
        # batch exactly once on every shard.
        down.go_online()
        assert fednet.complete_handoffs() == 1
        assert list(down.valid_coins).count(down_kp.public.y) == 1
        assert list(live.valid_coins).count(live_kp.public.y) == 1
        assert fednet.broker.balance("alice") == 3
        assert not any(shard.pending_handoffs for shard in fednet.shards)
        assert fednet.broker.verify_conservation(5)
        for shard in fednet.shards:
            assert audit_broker(shard).ok
