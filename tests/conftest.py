"""Shared fixtures for the WhoPay test suite.

All cryptographic tests run on the 512-bit test group
(:data:`repro.crypto.params.PARAMS_TEST_512`) — an order of magnitude faster
than the paper's 1024-bit production size with identical code paths.  The
1024-bit parameters are exercised once in ``tests/crypto/test_params.py``
and by the Table 2 benchmark.
"""

from __future__ import annotations

import os
import sys

# Allow running the suite from a fresh checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.core.network import PeerConfig, WhoPayNetwork
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture(scope="session")
def params():
    """The fast test Schnorr group."""
    return PARAMS_TEST_512


@pytest.fixture(scope="session")
def some_keypair(params):
    """A reusable keypair for read-only tests."""
    return KeyPair.generate(params)


@pytest.fixture()
def network():
    """A fresh basic WhoPay deployment (no DHT)."""
    return WhoPayNetwork(params=PARAMS_TEST_512)


@pytest.fixture()
def detection_network():
    """A fresh WhoPay deployment with real-time detection enabled."""
    return WhoPayNetwork(params=PARAMS_TEST_512, enable_detection=True, dht_size=4)


@pytest.fixture()
def funded_trio(network):
    """(net, alice, bob, carol) with alice funded."""
    alice = network.add_peer("alice", PeerConfig(balance=25))
    bob = network.add_peer("bob", PeerConfig(balance=10))
    carol = network.add_peer("carol")
    return network, alice, bob, carol
