"""Canonical codec tests, including hypothesis round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messages.codec import CodecError, decode, encode

# Strategy over the codec's value domain (recursive).
codec_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(1 << 256), max_value=1 << 256)
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


class TestRoundTrip:
    @given(codec_values)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_property(self, value):
        assert decode(encode(value)) == _normalize(value)

    def test_scalars(self):
        for value in (None, True, False, 0, -1, 1 << 200, -(1 << 200), b"", b"\x00", "", "héllo"):
            assert decode(encode(value)) == value

    def test_containers(self):
        value = {"a": (1, 2, (3,)), "b": {"nested": b"bytes"}, "c": None}
        assert decode(encode(value)) == value

    def test_lists_decode_as_tuples(self):
        assert decode(encode([1, 2])) == (1, 2)


class TestDeterminism:
    def test_dict_key_order_irrelevant(self):
        a = encode({"x": 1, "y": 2})
        b = encode({"y": 2, "x": 1})
        assert a == b

    def test_bool_and_int_distinct(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_distinct_values_distinct_encodings(self):
        samples = [None, True, False, 0, 1, -1, b"", b"\x00", "", "0", (0,), {}, {"": 0}]
        encodings = [encode(v) for v in samples]
        assert len(set(encodings)) == len(encodings)

    def test_framing_injective(self):
        # Concatenation attacks: (b"ab",) vs (b"a", b"b") must differ.
        assert encode((b"ab",)) != encode((b"a", b"b"))


class TestErrors:
    def test_unencodable_type(self):
        with pytest.raises(CodecError):
            encode(3.14)
        with pytest.raises(CodecError):
            encode({1: "non-string key"})
        with pytest.raises(CodecError):
            encode(object())

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            decode(b"\x02i+\x00")

    def test_truncated(self):
        data = encode({"k": b"value"})
        with pytest.raises(CodecError):
            decode(data[:-3])

    def test_trailing_garbage(self):
        with pytest.raises(CodecError):
            decode(encode(1) + b"x")

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode(b"\x01z")

    def test_non_canonical_dict_order_rejected(self):
        # Hand-craft a dict with keys out of order; decode must refuse,
        # otherwise two encodings of the same value would both be "valid".
        good = encode({"a": 1, "b": 2})
        swapped = bytearray(good)
        ia, ib = good.index(b"a", 2), good.index(b"b", 2)
        swapped[ia], swapped[ib] = swapped[ib], swapped[ia]
        with pytest.raises(CodecError):
            decode(bytes(swapped))

    def test_invalid_utf8_rejected(self):
        raw = b"\x01s" + (1).to_bytes(8, "big") + b"\xff"
        with pytest.raises(CodecError):
            decode(raw)

    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode(b"")


def _normalize(value):
    """Lists become tuples on decode; normalize expectations accordingly."""
    if isinstance(value, list):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_normalize(v) for v in value)
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    return value
