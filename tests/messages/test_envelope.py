"""Signed-envelope tests (single and dual signatures)."""

import dataclasses

import pytest

from repro.crypto.group_signature import GroupManager
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512
from repro.messages.envelope import DualSignedMessage, SignedMessage, group_seal, seal


@pytest.fixture(scope="module")
def signer():
    return KeyPair.generate(PARAMS_TEST_512)


@pytest.fixture(scope="module")
def group():
    manager = GroupManager(PARAMS_TEST_512)
    member = manager.register("peer-1")
    return manager, member


class TestSignedMessage:
    def test_seal_verify(self, signer):
        message = seal(signer, {"op": "issue", "seq": 1})
        assert message.verify()
        assert message.payload == {"op": "issue", "seq": 1}

    def test_tampered_payload_rejected(self, signer):
        message = seal(signer, {"v": 1})
        forged = SignedMessage(
            payload_bytes=message.payload_bytes + b"",
            signer=message.signer,
            signature=message.signature,
        )
        assert forged.verify()  # untouched copy still verifies
        from repro.messages.codec import encode

        forged = SignedMessage(
            payload_bytes=encode({"v": 2}),
            signer=message.signer,
            signature=message.signature,
        )
        assert not forged.verify()

    def test_wrong_signer_claim_rejected(self, signer):
        other = KeyPair.generate(PARAMS_TEST_512)
        message = seal(signer, "data")
        forged = SignedMessage(
            payload_bytes=message.payload_bytes,
            signer=other.public,
            signature=message.signature,
        )
        assert not forged.verify()

    def test_encode_stable_and_distinct(self, signer):
        a = seal(signer, "a")
        assert a.encode() == a.encode()
        assert a.encode() != seal(signer, "b").encode()


class TestDualSignedMessage:
    def test_group_seal_verify(self, signer, group):
        manager, member = group
        gpk = manager.public_key()
        dual = group_seal(signer, member, gpk, {"op": "transfer"})
        assert dual.verify(gpk)
        assert dual.payload == {"op": "transfer"}
        assert dual.coin_signer.y == signer.public.y
        assert dual.roster_version == len(gpk.roster)

    def test_inner_tamper_rejected(self, signer, group):
        manager, member = group
        gpk = manager.public_key()
        dual = group_seal(signer, member, gpk, {"op": "transfer"})
        other_inner = seal(signer, {"op": "deposit"})
        forged = dataclasses.replace(dual, inner=other_inner)
        assert not forged.verify(gpk)

    def test_group_layer_required(self, signer, group):
        manager, member = group
        gpk = manager.public_key()
        dual = group_seal(signer, member, gpk, "x")
        other = group_seal(signer, member, gpk, "y")
        franken = dataclasses.replace(dual, group_signature=other.group_signature)
        assert not franken.verify(gpk)

    def test_judge_can_open_the_outer_layer(self, signer, group):
        manager, member = group
        gpk = manager.public_key()
        dual = group_seal(signer, member, gpk, "evidence")
        assert manager.open(dual.group_signature) == "peer-1"
