"""Layered-coin baseline tests (Section 7 offline transfers)."""

import pytest

from repro.baselines.layered import DEFAULT_MAX_LAYERS, LayeredCoinSystem
from repro.core.errors import DoubleSpendDetected, ProtocolError, VerificationFailed
from repro.core.judge import Judge
from repro.crypto.keys import KeyPair
from repro.crypto.params import PARAMS_TEST_512


@pytest.fixture()
def system():
    judge = Judge(PARAMS_TEST_512)
    members = {name: judge.register(name) for name in ("x", "y", "z")}
    return LayeredCoinSystem(judge, PARAMS_TEST_512, max_layers=5), judge, members


class TestTransferChain:
    def test_mint_and_verify(self, system):
        sys_, judge, _members = system
        coin, _keypair = sys_.mint(2)
        assert coin.value == 2
        assert coin.depth == 0
        assert coin.verify(sys_.broker_keypair.public, judge, PARAMS_TEST_512)

    def test_chain_of_transfers(self, system):
        sys_, judge, members = system
        coin, kp0 = sys_.mint(1)
        kp1, kp2 = KeyPair.generate(PARAMS_TEST_512), KeyPair.generate(PARAMS_TEST_512)
        c1 = sys_.transfer(coin, kp0, members["x"], kp1.public.y)
        c2 = sys_.transfer(c1, kp1, members["y"], kp2.public.y)
        assert c2.depth == 2
        assert c2.current_holder_y == kp2.public.y
        assert c2.verify(sys_.broker_keypair.public, judge, PARAMS_TEST_512)

    def test_only_current_holder_can_extend(self, system):
        sys_, _judge, members = system
        coin, kp0 = sys_.mint(1)
        outsider = KeyPair.generate(PARAMS_TEST_512)
        with pytest.raises(VerificationFailed):
            sys_.transfer(coin, outsider, members["x"], outsider.public.y)

    def test_size_grows_per_hop(self, system):
        # The paper's first problem with layered coins, made measurable.
        sys_, _judge, members = system
        coin, keypair = sys_.mint(1)
        sizes = [coin.size_bytes()]
        for _ in range(3):
            nxt = KeyPair.generate(PARAMS_TEST_512)
            coin = sys_.transfer(coin, keypair, members["x"], nxt.public.y)
            keypair = nxt
            sizes.append(coin.size_bytes())
        assert sizes == sorted(sizes)
        assert sizes[-1] > 3 * sizes[0]

    def test_layer_cap_enforced(self, system):
        sys_, _judge, members = system
        coin, keypair = sys_.mint(1)
        for _ in range(5):
            nxt = KeyPair.generate(PARAMS_TEST_512)
            coin = sys_.transfer(coin, keypair, members["x"], nxt.public.y)
            keypair = nxt
        with pytest.raises(ProtocolError):
            sys_.transfer(coin, keypair, members["x"], keypair.public.y)

    def test_default_cap_constant(self):
        assert DEFAULT_MAX_LAYERS == 16


class TestDepositAndForks:
    def test_deposit_once(self, system):
        sys_, _judge, members = system
        coin, kp0 = sys_.mint(3)
        kp1 = KeyPair.generate(PARAMS_TEST_512)
        c1 = sys_.transfer(coin, kp0, members["x"], kp1.public.y)
        assert sys_.deposit(c1) == 3

    def test_fork_detected_and_attributed(self, system):
        sys_, _judge, members = system
        coin, kp0 = sys_.mint(1)
        kp1 = KeyPair.generate(PARAMS_TEST_512)
        c1 = sys_.transfer(coin, kp0, members["x"], kp1.public.y)
        # y receives, then double-spends to two successors.
        kp2a, kp2b = KeyPair.generate(PARAMS_TEST_512), KeyPair.generate(PARAMS_TEST_512)
        fork_a = sys_.transfer(c1, kp1, members["y"], kp2a.public.y)
        fork_b = sys_.transfer(c1, kp1, members["y"], kp2b.public.y)
        sys_.deposit(fork_a)
        with pytest.raises(DoubleSpendDetected) as exc_info:
            sys_.deposit(fork_b)
        assert exc_info.value.evidence["culprit"] == "y"

    def test_root_fork_attributed_to_minter(self, system):
        sys_, _judge, members = system
        coin, kp0 = sys_.mint(1)
        kp1, kp2 = KeyPair.generate(PARAMS_TEST_512), KeyPair.generate(PARAMS_TEST_512)
        fork_a = sys_.transfer(coin, kp0, members["z"], kp1.public.y)
        fork_b = sys_.transfer(coin, kp0, members["z"], kp2.public.y)
        sys_.deposit(fork_a)
        with pytest.raises(DoubleSpendDetected) as exc_info:
            sys_.deposit(fork_b)
        assert exc_info.value.evidence["culprit"] == "z"

    def test_prefix_double_spend_attributed(self, system):
        # The holder passes the coin on AND deposits their shorter chain.
        sys_, _judge, members = system
        coin, kp0 = sys_.mint(1)
        kp1 = KeyPair.generate(PARAMS_TEST_512)
        c1 = sys_.transfer(coin, kp0, members["x"], kp1.public.y)  # x -> kp1
        sys_.deposit(coin)  # x deposits the bare coin anyway
        with pytest.raises(DoubleSpendDetected) as exc_info:
            sys_.deposit(c1)
        assert exc_info.value.evidence["culprit"] == "x"

    def test_forged_chain_rejected(self, system):
        sys_, judge, members = system
        coin, kp0 = sys_.mint(1)
        other_system = LayeredCoinSystem(judge, PARAMS_TEST_512)
        foreign, _ = other_system.mint(1)
        with pytest.raises(VerificationFailed):
            sys_.deposit(foreign)
