"""PayWord credit-window tests (micropayment aggregation over WhoPay)."""

import pytest

from repro.baselines.payword import PaywordCreditWindow
from repro.core.errors import ProtocolError


@pytest.fixture()
def window(funded_trio):
    _net, alice, bob, _carol = funded_trio
    return PaywordCreditWindow(alice, bob, chain_length=30, threshold=5), alice, bob


class TestMicropayments:
    def test_tokens_verify(self, window):
        win, _alice, _bob = window
        token = win.micropay()
        assert token.index == 1
        from repro.crypto.hashchain import verify_chain_link

        assert verify_chain_link(win._commitment.payload["anchor"], token.index, token.link)

    def test_aggregation_ratio(self, window):
        win, _alice, _bob = window
        for _ in range(12):
            win.micropay()
        # 12 micropayments -> 2 settled WhoPay payments (threshold 5).
        assert win.micropayments_made == 12
        assert win.whopay_payments_made == 2
        assert win.unsettled_units == 2

    def test_settlement_pays_through_whopay(self, window):
        win, alice, bob = window
        for _ in range(5):
            win.micropay()
        assert win.whopay_payments_made == 1
        # The payee actually holds a coin now.
        assert len(bob.wallet) == 1

    def test_multi_unit_micropayment(self, window):
        win, _alice, _bob = window
        win.micropay(units=7)
        assert win.whopay_payments_made == 1
        assert win.unsettled_units == 2

    def test_chain_exhaustion_reopens(self, window):
        win, _alice, _bob = window
        first_anchor = win._commitment.payload["anchor"]
        for _ in range(30):
            win.micropay()
        # 30 units = chain fully spent and fully settled: a new chain opens.
        assert win.whopay_payments_made == 6
        assert win._chain.spent == 0
        assert win._commitment.payload["anchor"] != first_anchor

    def test_communication_savings(self, window):
        # The aggregation argument, measured: micropayments move no protocol
        # messages; only settlements do.
        win, alice, bob = window
        transport = alice.transport
        before = transport.total_messages
        for _ in range(4):  # below threshold: no settlement
            win.micropay()
        assert transport.total_messages == before
        win.micropay()  # fifth unit triggers one WhoPay payment
        assert transport.total_messages > before


class TestValidation:
    def test_bad_threshold_rejected(self, funded_trio):
        _net, alice, bob, _carol = funded_trio
        with pytest.raises(ValueError):
            PaywordCreditWindow(alice, bob, chain_length=10, threshold=0)
        with pytest.raises(ValueError):
            PaywordCreditWindow(alice, bob, chain_length=10, threshold=11)

    def test_replayed_token_rejected(self, window):
        win, _alice, _bob = window
        token = win.micropay()
        with pytest.raises(ProtocolError):
            win._receive(token)  # index did not advance

    def test_forged_token_rejected(self, window):
        from repro.baselines.payword import MicropaymentToken
        from repro.core.errors import VerificationFailed

        win, _alice, _bob = window
        win.micropay()
        with pytest.raises(VerificationFailed):
            win._receive(MicropaymentToken(index=2, link=b"\x00" * 32))
