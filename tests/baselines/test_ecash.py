"""Blind-signature e-cash baseline tests."""

import pytest

from repro.baselines.ecash import EcashClient, EcashMint
from repro.core.errors import DoubleSpendDetected, InsufficientFunds, VerificationFailed


@pytest.fixture(scope="module")
def mint():
    return EcashMint(modulus_bits=512)


@pytest.fixture()
def rig():
    mint = EcashMint(modulus_bits=512)
    alice = EcashClient("alice", mint)
    bob = EcashClient("bob", mint)
    mint.open_account("alice", 10)
    mint.open_account("bob", 0)
    return mint, alice, bob


class TestLifecycle:
    def test_withdraw_pay_deposit(self, rig):
        mint, alice, bob = rig
        alice.withdraw()
        alice.pay(bob)
        assert bob.deposit_all() == 1
        assert mint.balance("alice") == 9
        assert mint.balance("bob") == 1

    def test_insufficient_funds(self, rig):
        mint, _alice, bob = rig
        with pytest.raises(InsufficientFunds):
            bob.withdraw()

    def test_pay_with_empty_wallet(self, rig):
        _mint, alice, bob = rig
        with pytest.raises(InsufficientFunds):
            alice.pay(bob)

    def test_double_spend_detected_but_unattributable(self, rig):
        # The fairness gap WhoPay closes: detection without punishment.
        mint, alice, bob = rig
        coin = alice.withdraw()
        mint.deposit(coin, "alice")
        with pytest.raises(DoubleSpendDetected) as exc_info:
            mint.deposit(coin, "bob")
        assert exc_info.value.evidence["culprit"] is None  # nobody to blame
        assert len(mint.fraud_events) == 1

    def test_forged_coin_rejected(self, rig):
        from repro.baselines.ecash import EcashCoin

        mint, _alice, _bob = rig
        fake = EcashCoin(serial=b"\x00" * 16, signature=12345, value=1)
        with pytest.raises(VerificationFailed):
            mint.deposit(fake, "bob")

    def test_wrong_denomination_rejected(self, rig):
        from repro.baselines.ecash import EcashCoin

        mint, alice, _bob = rig
        coin = alice.withdraw()
        inflated = EcashCoin(serial=coin.serial, signature=coin.signature, value=100)
        with pytest.raises(VerificationFailed):
            mint.deposit(inflated, "alice")


class TestAnonymity:
    def test_mint_cannot_link_withdrawal_to_deposit(self, rig):
        # The mint's withdrawal-time view is the blinded value only; the
        # serial it sees at deposit never appeared before.  We verify the
        # structural fact: deposited serials are disjoint from anything the
        # mint could have recorded at withdrawal (it records nothing).
        mint, alice, bob = rig
        coin = alice.withdraw()
        assert coin.serial not in mint.seen_serials
        alice.pay(bob)
        bob.deposit_all()
        assert coin.serial in mint.seen_serials

    def test_centralization_gap(self, rig):
        # Every monetary event touches the mint — the scalability property
        # WhoPay distributes away.
        mint, alice, bob = rig
        for _ in range(3):
            alice.withdraw()
            alice.pay(bob)
        bob.deposit_all()
        assert mint.withdrawals == 3
        assert mint.deposits == 3
