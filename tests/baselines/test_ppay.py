"""PPay baseline tests."""

import pytest

from repro.baselines.ppay import PPayBroker, PPayPeer
from repro.core.clock import Clock
from repro.core.errors import (
    DoubleSpendDetected,
    InsufficientFunds,
    NotHolder,
    ProtocolError,
    VerificationFailed,
)
from repro.crypto.params import PARAMS_TEST_512
from repro.net.transport import Transport


@pytest.fixture()
def ppay():
    transport = Transport()
    clock = Clock()
    broker = PPayBroker(transport, PARAMS_TEST_512, clock)

    peers = {}

    def add(address, balance=0):
        peer = PPayPeer(transport, address, PARAMS_TEST_512, clock, broker.address, broker.public_key)
        broker.open_account(address, peer.identity.public, balance)
        peers[address] = peer
        for a in peers.values():
            for b in peers.values():
                a.identities.setdefault(b.address, b.identity.public)
        return peer

    u = add("u", balance=10)
    v = add("v", balance=5)
    w = add("w")
    return transport, clock, broker, u, v, w


class TestLifecycle:
    def test_purchase_issue_transfer_deposit(self, ppay):
        _t, _clock, broker, u, v, w = ppay
        sn = u.purchase(2)
        u.issue("v", sn)
        assert sn in v.wallet
        v.transfer("w", sn)
        assert sn in w.wallet and sn not in v.wallet
        assert w.deposit(sn) == 2
        assert broker.balance("w") == 2

    def test_renewal_via_owner(self, ppay):
        _t, clock, _broker, u, v, _w = ppay
        sn = u.purchase(1)
        u.issue("v", sn)
        seq_before = v.wallet[sn].seq
        clock.advance(3600)
        v.renew(sn)
        assert v.wallet[sn].seq == seq_before + 1

    def test_downtime_protocol(self, ppay):
        _t, _clock, broker, u, v, w = ppay
        sn = u.purchase(1)
        u.issue("v", sn)
        u.go_offline()
        v.transfer_via_broker("w", sn)
        assert sn in w.wallet and w.wallet[sn].via_broker
        u.go_online()
        assert u.sync_with_broker() == 1
        w.transfer("v", sn)  # owner serves again post-sync
        assert sn in v.wallet

    def test_insufficient_funds(self, ppay):
        _t, _clock, _broker, _u, _v, w = ppay
        with pytest.raises(InsufficientFunds):
            w.purchase(1)

    def test_double_deposit_detected(self, ppay):
        import copy

        _t, _clock, broker, u, v, _w = ppay
        sn = u.purchase(1)
        u.issue("v", sn)
        held = copy.deepcopy(v.wallet[sn])
        v.deposit(sn)
        v.wallet[sn] = held
        with pytest.raises(DoubleSpendDetected):
            v.deposit(sn)
        assert len(broker.fraud_events) == 1

    def test_stale_assignment_rejected(self, ppay):
        import copy

        _t, _clock, _broker, u, v, w = ppay
        sn = u.purchase(1)
        u.issue("v", sn)
        stale = copy.deepcopy(v.wallet[sn])
        v.transfer("w", sn)
        v.wallet[sn] = stale
        with pytest.raises((NotHolder, ProtocolError, VerificationFailed)):
            v.transfer("w", sn)


class TestAnonymityGap:
    def test_payee_learns_payer_and_owner(self, ppay):
        # PPay's defining weakness, asserted positively: identities flow in
        # the clear.  (WhoPay's equivalent test asserts the *absence*.)
        _t, _clock, _broker, u, v, w = ppay
        sn = u.purchase(1)
        u.issue("v", sn)
        v.transfer("w", sn)
        received = [e for e in w.transaction_log if e["event"] == "received"]
        assert received and received[0]["owner"] == "u"

    def test_owner_learns_payer_and_payee(self, ppay):
        _t, _clock, _broker, u, v, w = ppay
        sn = u.purchase(1)
        u.issue("v", sn)
        v.transfer("w", sn)
        handled = [e for e in u.transaction_log if e["event"] == "handled_transfer"]
        assert handled == [{"event": "handled_transfer", "sn": sn, "payer": "v", "payee": "w"}]

    def test_coin_names_owner_in_the_clear(self, ppay):
        _t, _clock, _broker, u, v, _w = ppay
        sn = u.purchase(1)
        u.issue("v", sn)
        assert v.wallet[sn].owner == "u"
        assert v.wallet[sn].assignment.payload["holder"] == "v"
