"""Centralized (Burk–Pfitzmann / Vo–Hohenberger style) baseline tests."""

import pytest

from repro.baselines.centralized import CentralizedBroker, CentralizedPeer
from repro.core.clock import Clock
from repro.core.errors import DoubleSpendDetected, InsufficientFunds, NotHolder
from repro.core.judge import Judge
from repro.crypto.params import PARAMS_TEST_512
from repro.net.transport import Transport


@pytest.fixture()
def central():
    transport = Transport()
    clock = Clock()
    judge = Judge(PARAMS_TEST_512)
    broker = CentralizedBroker(transport, judge, PARAMS_TEST_512, clock)

    def add(address, balance=0):
        member = judge.register(address)
        peer = CentralizedPeer(transport, address, PARAMS_TEST_512, judge, member, broker.address)
        broker.open_account(address, peer.identity.public, balance)
        return peer

    a = add("a", balance=10)
    b = add("b", balance=5)
    c = add("c")
    return transport, broker, judge, a, b, c


class TestLifecycle:
    def test_purchase_transfer_deposit(self, central):
        _t, broker, _judge, a, b, c = central
        coin_y = a.purchase(3)
        a.transfer("b", coin_y)
        b.transfer("c", coin_y)
        assert c.deposit(coin_y) == 3
        assert broker.counts == {"purchases": 1, "transfers": 2, "deposits": 1}

    def test_insufficient_funds(self, central):
        _t, _broker, _judge, _a, _b, c = central
        with pytest.raises(InsufficientFunds):
            c.purchase(1)

    def test_nonholder_cannot_transfer(self, central):
        _t, _broker, _judge, a, b, c = central
        coin_y = a.purchase(1)
        a.transfer("b", coin_y)
        with pytest.raises(NotHolder):
            c.transfer("a", coin_y)  # c never held it

    def test_stale_holder_rejected(self, central):
        import copy

        _t, _broker, _judge, a, b, c = central
        coin_y = a.purchase(1)
        stale = copy.deepcopy(a.wallet[coin_y])
        a.transfer("b", coin_y)
        a.wallet[coin_y] = stale
        with pytest.raises(NotHolder):
            a.transfer("c", coin_y)

    def test_double_deposit_detected(self, central):
        import copy

        _t, broker, _judge, a, _b, _c = central
        coin_y = a.purchase(1)
        held = copy.deepcopy(a.wallet[coin_y])
        a.deposit(coin_y)
        a.wallet[coin_y] = held
        with pytest.raises(DoubleSpendDetected):
            a.deposit(coin_y)
        assert len(broker.fraud_events) == 1


class TestCentralization:
    def test_every_transfer_hits_the_broker(self, central):
        # The property WhoPay removes: broker transfer count == payment count.
        _t, broker, _judge, a, b, c = central
        coin_y = a.purchase(1)
        for _ in range(3):
            a.transfer("b", coin_y)
            b.transfer("a", coin_y)
        assert broker.counts["transfers"] == 6

    def test_fairness_via_judge(self, central):
        _t, broker, judge, a, b, _c = central
        coin_y = a.purchase(1)

        captured = []
        original = broker._handle_transfer

        def spy(src, data):
            captured.append(data)
            return original(src, data)

        broker._handlers["central.transfer"] = spy
        a.transfer("b", coin_y)
        from repro.core.protocol import decode_dual

        envelope = decode_dual(captured[0], PARAMS_TEST_512)
        assert judge.open(envelope.group_signature) == "a"

    def test_broker_sees_pseudonyms_not_identities(self, central):
        _t, broker, _judge, a, b, _c = central
        coin_y = a.purchase(1)
        a.transfer("b", coin_y)
        bound_key = broker.bindings[coin_y]
        assert bound_key not in (a.identity.public.y, b.identity.public.y)
