"""Chord routing tests: correctness, join/leave, logarithmic lookups."""

import pytest

from repro.dht.chord import ChordNode, ChordRing, key_to_id, _in_interval
from repro.net.transport import Transport


class TestIntervals:
    def test_plain_interval(self):
        assert _in_interval(5, 3, 8)
        assert _in_interval(8, 3, 8)  # inclusive right
        assert not _in_interval(3, 3, 8)  # exclusive left
        assert not _in_interval(9, 3, 8)

    def test_wrapping_interval(self):
        assert _in_interval(1, 9, 3)
        assert _in_interval(10, 9, 3)
        assert not _in_interval(5, 9, 3)

    def test_full_circle(self):
        assert _in_interval(7, 4, 4)
        assert not _in_interval(4, 4, 4, inclusive_right=False)


class TestRingConstruction:
    def test_single_node_owns_everything(self):
        t = Transport()
        ring = ChordRing(t, size=1)
        assert ring.owner_of(b"anything") is ring.nodes[0]

    def test_ring_is_consistent(self):
        t = Transport()
        ring = ChordRing(t, size=8)
        # Every key routes to the same owner regardless of the entry node.
        for key in (b"k1", b"k2", b"coins/abc"):
            owners = {node.find_successor(key_to_id(key)) for node in ring.nodes}
            assert len(owners) == 1, key

    def test_owner_is_the_successor(self):
        t = Transport()
        ring = ChordRing(t, size=8)
        key = b"some-key"
        owner = ring.owner_of(key)
        target = key_to_id(key)
        ids = sorted(node.node_id for node in ring.nodes)
        import bisect

        expected = ids[bisect.bisect_left(ids, target) % len(ids)]
        assert owner.node_id == expected

    def test_keys_spread_across_nodes(self):
        t = Transport()
        ring = ChordRing(t, size=8)
        owners = {ring.owner_of(str(i).encode()).address for i in range(100)}
        assert len(owners) >= 4  # consistent hashing spreads load


class TestPutGet:
    def test_roundtrip(self):
        t = Transport()
        ring = ChordRing(t, size=4)
        assert ring.put(b"k", 123)["ok"]
        assert ring.get(b"k") == 123

    def test_missing_key(self):
        t = Transport()
        ring = ChordRing(t, size=4)
        assert ring.get(b"missing") is None

    def test_overwrite(self):
        t = Transport()
        ring = ChordRing(t, size=4)
        ring.put(b"k", 1)
        ring.put(b"k", 2)
        assert ring.get(b"k") == 2

    def test_validator_can_reject(self):
        t = Transport()
        ring = ChordRing(t, size=2)
        for node in ring.nodes:
            node.put_validator = lambda key_id, stored, value: "nope"
        result = ring.put(b"k", 1)
        assert not result["ok"] and result["reason"] == "nope"
        assert ring.get(b"k") is None


class TestChurn:
    def test_graceful_leave_hands_off_data(self):
        t = Transport()
        ring = ChordRing(t, size=5)
        keys = [str(i).encode() for i in range(30)]
        for key in keys:
            ring.put(key, key.decode())
        leaver = ring.owner_of(b"0")
        leaver.leave()
        ring.stabilize_all(rounds=6)
        ring.rebuild_fingers()
        for key in keys:
            assert ring.get(key) == key.decode(), key

    def test_join_after_start(self):
        t = Transport()
        ring = ChordRing(t, size=3)
        ring.put(b"k", "v")
        newcomer = ChordNode(t, "dht-late")
        newcomer.join(ring.nodes[0])
        ring.nodes.append(newcomer)
        ring.stabilize_all(rounds=8)
        ring.rebuild_fingers()
        assert ring.get(b"k") == "v"
        # The ring is still consistent for fresh keys.
        for key in (b"a", b"b", b"c"):
            ring.put(key, 1)
            assert ring.get(key) == 1


class TestLookupEfficiency:
    def test_lookup_hops_logarithmic(self):
        t = Transport()
        ring = ChordRing(t, size=32)
        t.reset_counters()
        samples = 20
        for i in range(samples):
            ring.nodes[0].find_successor(key_to_id(str(i).encode()))
        # Iterative Chord resolves in O(log n) hops; with 32 nodes that is
        # ~5 hops = 10 transport messages per lookup, far below linear (32).
        per_lookup = t.total_messages / samples
        assert per_lookup <= 16, per_lookup

    def test_key_to_id_stable(self):
        assert key_to_id(b"x") == key_to_id(b"x")
        assert key_to_id(b"x") != key_to_id(b"y")
