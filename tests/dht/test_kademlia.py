"""Kademlia tests + proof that the binding store is routing-agnostic."""

import pytest

from repro.crypto.dsa import dsa_generate, dsa_sign
from repro.crypto.params import PARAMS_TEST_512
from repro.dht.binding_store import BindingRecord, BindingStore, WriteRejected
from repro.dht.kademlia import K_BUCKET_SIZE, KademliaNetwork, distance, kad_id
from repro.dht.notify import NotificationHub
from repro.messages.codec import encode
from repro.net.node import Node
from repro.net.transport import Transport

P = PARAMS_TEST_512


@pytest.fixture()
def network():
    transport = Transport()
    return transport, KademliaNetwork(transport, size=10)


class TestIdentifiers:
    def test_xor_metric_axioms(self):
        a, b, c = kad_id(b"a"), kad_id(b"b"), kad_id(b"c")
        assert distance(a, a) == 0
        assert distance(a, b) == distance(b, a)
        # XOR triangle "inequality" (equality relation): d(a,c) <= d(a,b) ^ d(b,c) is
        # not the axiom; the real one is d(a,c) = d(a,b) XOR of ids property:
        assert distance(a, c) == distance(a, b) ^ distance(b, c)

    def test_ids_are_160_bit(self):
        assert kad_id(b"anything").bit_length() <= 160


class TestPutGet:
    def test_roundtrip(self, network):
        _t, net = network
        assert net.put(b"key", "value")["ok"]
        assert net.get(b"key") == "value"

    def test_missing_key(self, network):
        _t, net = network
        assert net.get(b"missing") is None

    def test_overwrite(self, network):
        _t, net = network
        net.put(b"k", 1)
        net.put(b"k", 2)
        assert net.get(b"k") == 2

    def test_many_keys_spread(self, network):
        _t, net = network
        for i in range(40):
            assert net.put(str(i).encode(), i)["ok"]
        for i in range(40):
            assert net.get(str(i).encode()) == i
        populated = [node for node in net.nodes if node.storage]
        assert len(populated) >= 5  # load spreads across the id space

    def test_replicated_on_k_closest(self, network):
        _t, net = network
        net.put(b"replicated", "v")
        holders = [node for node in net.nodes if kad_id(b"replicated") in node.storage]
        assert 2 <= len(holders) <= K_BUCKET_SIZE

    def test_crash_tolerance(self, network):
        _t, net = network
        for i in range(20):
            net.put(str(i).encode(), i)
        net.owner_of(b"7").go_offline()
        recovered = sum(1 for i in range(20) if net.get(str(i).encode()) == i)
        assert recovered == 20  # k-fold replication absorbs a single crash


class TestRoutingTable:
    def test_buckets_populated_after_bootstrap(self, network):
        _t, net = network
        for node in net.nodes:
            assert node.known_contacts(), node.address

    def test_closest_known_ordering(self, network):
        _t, net = network
        node = net.nodes[0]
        target = kad_id(b"target")
        closest = node.closest_known(target, 5)
        dists = [distance(kad_id(a.encode()), target) for a in closest]
        assert dists == sorted(dists)

    def test_bucket_size_bounded(self, network):
        _t, net = network
        for node in net.nodes:
            for bucket in node.buckets:
                assert len(bucket) <= K_BUCKET_SIZE


class TestBindingStoreOverKademlia:
    """The §5.1 infrastructure is DHT-agnostic: same policy layer, new fabric."""

    @pytest.fixture()
    def store(self):
        transport = Transport()
        net = KademliaNetwork(transport, size=6)
        broker = dsa_generate(P)
        return BindingStore(net, P, broker.public), broker, transport

    def _record(self, coin, seq, signer=None, via_broker=False):
        payload = encode({"coin_y": coin.public.y, "holder_y": 1, "seq": seq, "exp": 100})
        key = signer if signer is not None else coin
        sig = dsa_sign(key, payload)
        return BindingRecord(
            payload=payload, signer_y=key.public.y, sig_r=sig.r, sig_s=sig.s, via_broker=via_broker
        )

    def test_publish_and_fetch(self, store):
        binding_store, _broker, _t = store
        coin = dsa_generate(P)
        binding_store.publish(self._record(coin, seq=1))
        assert binding_store.fetch(coin.public.y).sequence() == 1

    def test_access_control_enforced(self, store):
        binding_store, _broker, _t = store
        coin, mallory = dsa_generate(P), dsa_generate(P)
        with pytest.raises(WriteRejected):
            binding_store.publish(self._record(coin, seq=1, signer=mallory))

    def test_rollback_protection_enforced(self, store):
        binding_store, _broker, _t = store
        coin = dsa_generate(P)
        binding_store.publish(self._record(coin, seq=5))
        with pytest.raises(WriteRejected):
            binding_store.publish(self._record(coin, seq=4))

    def test_notifications_fire_once_per_update(self, store):
        binding_store, _broker, transport = store
        hub = NotificationHub(binding_store)
        received = []
        watcher = Node(transport, "watcher")
        watcher.on("binding.update", lambda src, v: received.append(v))
        coin = dsa_generate(P)
        hub.subscribe(coin.public.y, "watcher")
        binding_store.publish(self._record(coin, seq=1))
        binding_store.publish(self._record(coin, seq=2))
        # Despite k-fold replication, exactly one notification per update.
        assert len(received) == 2
