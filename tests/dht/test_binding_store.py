"""Access-control tests for the public coin-binding store (Section 5.1)."""

import pytest

from repro.crypto.dsa import dsa_generate, dsa_sign
from repro.crypto.params import PARAMS_TEST_512
from repro.dht.binding_store import BindingRecord, BindingStore, WriteRejected
from repro.dht.chord import ChordRing
from repro.messages.codec import encode
from repro.net.transport import Transport

P = PARAMS_TEST_512


@pytest.fixture()
def store():
    transport = Transport()
    ring = ChordRing(transport, size=4)
    broker = dsa_generate(P)
    return BindingStore(ring, P, broker.public), broker


def make_record(coin_keypair, seq, holder_y=111, signer=None, via_broker=False):
    payload = encode(
        {"coin_y": coin_keypair.public.y, "holder_y": holder_y, "seq": seq, "exp": 10_000}
    )
    signing_key = signer if signer is not None else coin_keypair
    sig = dsa_sign(signing_key, payload)
    return BindingRecord(
        payload=payload,
        signer_y=signing_key.public.y,
        sig_r=sig.r,
        sig_s=sig.s,
        via_broker=via_broker,
    )


class TestAccessControl:
    def test_owner_write_and_public_read(self, store):
        binding_store, _broker = store
        coin = dsa_generate(P)
        binding_store.publish(make_record(coin, seq=1))
        fetched = binding_store.fetch(coin.public.y)
        assert fetched is not None and fetched.sequence() == 1

    def test_broker_write_allowed(self, store):
        binding_store, broker = store
        coin = dsa_generate(P)
        record = make_record(coin, seq=1, signer=broker, via_broker=True)
        binding_store.publish(record)
        assert binding_store.fetch(coin.public.y).via_broker

    def test_third_party_write_rejected(self, store):
        binding_store, _broker = store
        coin = dsa_generate(P)
        mallory = dsa_generate(P)
        record = make_record(coin, seq=1, signer=mallory)
        with pytest.raises(WriteRejected, match="not signed by the coin key"):
            binding_store.publish(record)

    def test_forged_broker_claim_rejected(self, store):
        binding_store, _broker = store
        coin = dsa_generate(P)
        mallory = dsa_generate(P)
        record = make_record(coin, seq=1, signer=mallory, via_broker=True)
        with pytest.raises(WriteRejected, match="broker write"):
            binding_store.publish(record)

    def test_bad_signature_rejected(self, store):
        binding_store, _broker = store
        coin = dsa_generate(P)
        record = make_record(coin, seq=1)
        tampered = BindingRecord(
            payload=record.payload,
            signer_y=record.signer_y,
            sig_r=record.sig_r,
            sig_s=(record.sig_s + 1) % P.q or 1,
            via_broker=False,
        )
        with pytest.raises(WriteRejected, match="bad signature"):
            binding_store.publish(tampered)


class TestRollbackProtection:
    def test_stale_sequence_rejected(self, store):
        binding_store, _broker = store
        coin = dsa_generate(P)
        binding_store.publish(make_record(coin, seq=5))
        with pytest.raises(WriteRejected, match="stale"):
            binding_store.publish(make_record(coin, seq=5))
        with pytest.raises(WriteRejected, match="stale"):
            binding_store.publish(make_record(coin, seq=4))

    def test_monotonic_updates_accepted(self, store):
        binding_store, _broker = store
        coin = dsa_generate(P)
        for seq in (1, 2, 7):
            binding_store.publish(make_record(coin, seq=seq))
        assert binding_store.fetch(coin.public.y).sequence() == 7

    def test_even_broker_cannot_roll_back(self, store):
        # The downtime rule lets the broker write, but monotonicity still
        # applies — otherwise a compromised broker could resurrect holders.
        binding_store, broker = store
        coin = dsa_generate(P)
        binding_store.publish(make_record(coin, seq=10))
        with pytest.raises(WriteRejected, match="stale"):
            binding_store.publish(make_record(coin, seq=3, signer=broker, via_broker=True))


class TestFetch:
    def test_missing_coin(self, store):
        binding_store, _broker = store
        coin = dsa_generate(P)
        assert binding_store.fetch(coin.public.y) is None

    def test_record_encoding_roundtrip(self, store):
        _binding_store, _broker = store
        coin = dsa_generate(P)
        record = make_record(coin, seq=3)
        assert BindingRecord.from_encoded(record.encode()) == record

    def test_malformed_record_rejected(self, store):
        binding_store, _broker = store
        result = binding_store.ring.put(b"whopay-binding|junk", b"not-a-record")
        assert not result["ok"]
