"""Register/notify tests (the real-time detection push channel)."""

import pytest

from repro.crypto.dsa import dsa_generate, dsa_sign
from repro.crypto.params import PARAMS_TEST_512
from repro.dht.binding_store import BindingRecord, BindingStore
from repro.dht.chord import ChordRing
from repro.dht.notify import NotificationHub
from repro.messages.codec import encode
from repro.net.node import Node
from repro.net.transport import Transport

P = PARAMS_TEST_512


@pytest.fixture()
def rig():
    transport = Transport()
    ring = ChordRing(transport, size=3)
    broker = dsa_generate(P)
    store = BindingStore(ring, P, broker.public)
    hub = NotificationHub(store)
    return transport, store, hub


def publish(store, coin, seq):
    payload = encode({"coin_y": coin.public.y, "holder_y": 1, "seq": seq, "exp": 100})
    sig = dsa_sign(coin, payload)
    store.publish(
        BindingRecord(payload=payload, signer_y=coin.public.y, sig_r=sig.r, sig_s=sig.s, via_broker=False)
    )


def make_watcher(transport, address):
    received = []
    node = Node(transport, address)
    node.on("binding.update", lambda src, value: received.append(value))
    return node, received


class TestNotifications:
    def test_subscriber_receives_updates(self, rig):
        transport, store, hub = rig
        coin = dsa_generate(P)
        _node, received = make_watcher(transport, "watcher")
        hub.subscribe(coin.public.y, "watcher")
        publish(store, coin, seq=1)
        publish(store, coin, seq=2)
        assert len(received) == 2

    def test_multiple_subscribers(self, rig):
        transport, store, hub = rig
        coin = dsa_generate(P)
        _n1, r1 = make_watcher(transport, "w1")
        _n2, r2 = make_watcher(transport, "w2")
        hub.subscribe(coin.public.y, "w1")
        hub.subscribe(coin.public.y, "w2")
        publish(store, coin, seq=1)
        assert len(r1) == len(r2) == 1

    def test_unsubscribe_stops_updates(self, rig):
        transport, store, hub = rig
        coin = dsa_generate(P)
        _node, received = make_watcher(transport, "watcher")
        hub.subscribe(coin.public.y, "watcher")
        publish(store, coin, seq=1)
        hub.unsubscribe(coin.public.y, "watcher")
        publish(store, coin, seq=2)
        assert len(received) == 1

    def test_offline_subscriber_skipped(self, rig):
        transport, store, hub = rig
        coin = dsa_generate(P)
        node, received = make_watcher(transport, "watcher")
        hub.subscribe(coin.public.y, "watcher")
        node.go_offline()
        publish(store, coin, seq=1)
        assert received == []
        node.go_online()
        publish(store, coin, seq=2)
        assert len(received) == 1

    def test_rejected_write_not_notified(self, rig):
        transport, store, hub = rig
        coin = dsa_generate(P)
        _node, received = make_watcher(transport, "watcher")
        hub.subscribe(coin.public.y, "watcher")
        publish(store, coin, seq=2)
        with pytest.raises(Exception):
            publish(store, coin, seq=1)  # stale — rejected by the validator
        assert len(received) == 1

    def test_unrelated_coin_not_notified(self, rig):
        transport, store, hub = rig
        coin_a, coin_b = dsa_generate(P), dsa_generate(P)
        _node, received = make_watcher(transport, "watcher")
        hub.subscribe(coin_a.public.y, "watcher")
        publish(store, coin_b, seq=1)
        assert received == []

    def test_subscriber_count(self, rig):
        _transport, _store, hub = rig
        coin = dsa_generate(P)
        assert hub.subscriber_count(coin.public.y) == 0
        hub.subscribe(coin.public.y, "x")
        hub.subscribe(coin.public.y, "y")
        assert hub.subscriber_count(coin.public.y) == 2
