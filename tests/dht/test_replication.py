"""Replication tests: Chord survives crashes, not just graceful leaves."""

import pytest

from repro.dht.chord import ChordRing, key_to_id
from repro.net.transport import Transport
from repro.core.network import PeerConfig


@pytest.fixture()
def ring():
    transport = Transport()
    return ChordRing(transport, size=6)


class TestReplication:
    def test_put_places_replicas(self, ring):
        assert ring.put(b"key", "value")["ok"]
        holders = [node for node in ring.nodes if key_to_id(b"key") in node.storage]
        # Owner + up to (replication - 1) successors.
        assert 2 <= len(holders) <= 3

    def test_crash_does_not_lose_data(self, ring):
        keys = [str(i).encode() for i in range(20)]
        for key in keys:
            ring.put(key, key.decode())
        victim = ring.owner_of(b"7")
        victim.go_offline()  # crash: no graceful handoff
        ring.stabilize_all(rounds=8)
        ring.rebuild_fingers()
        for key in keys:
            assert ring.get(key) == key.decode(), key

    def test_two_crashes(self, ring):
        keys = [str(i).encode() for i in range(20)]
        for key in keys:
            ring.put(key, key.decode())
        victims = {ring.owner_of(b"3").address, ring.owner_of(b"15").address}
        for node in ring.nodes:
            if node.address in victims:
                node.go_offline()
        ring.stabilize_all(rounds=10)
        ring.rebuild_fingers()
        recovered = sum(1 for key in keys if ring.get(key) == key.decode())
        # With replication factor 3, two simultaneous crashes may only lose
        # a key if both its replicas sat on the victims; with 6 nodes and
        # adjacent-successor placement that is possible but must be rare.
        assert recovered >= len(keys) - 2

    def test_updates_propagate_to_replicas(self, ring):
        ring.put(b"k", 1)
        ring.put(b"k", 2)
        holders = [node for node in ring.nodes if key_to_id(b"k") in node.storage]
        assert all(node.storage[key_to_id(b"k")] == 2 for node in holders)

    def test_crash_then_update_still_consistent(self, ring):
        ring.put(b"k", 1)
        owner = ring.owner_of(b"k")
        owner.go_offline()
        ring.stabilize_all(rounds=8)
        ring.rebuild_fingers()
        assert ring.get(b"k") == 1
        ring.put(b"k", 2)
        assert ring.get(b"k") == 2

    def test_single_node_ring_has_no_replicas(self):
        transport = Transport()
        ring = ChordRing(transport, size=1)
        ring.put(b"k", "v")
        assert ring.get(b"k") == "v"


class TestDetectionSurvivesCrash:
    def test_binding_survives_dht_crash(self, detection_network):
        net = detection_network
        alice = net.add_peer("alice", PeerConfig(balance=5))
        bob = net.add_peer("bob")
        carol = net.add_peer("carol")
        state = alice.purchase()
        alice.issue("bob", state.coin_y)
        ring = net.detection.store.ring
        owner_node = ring.owner_of(net.detection.store._coin_key_bytes(state.coin_y))
        owner_node.go_offline()  # hard crash, no handoff
        ring.stabilize_all(rounds=8)
        ring.rebuild_fingers()
        assert net.detection.fetch_binding("t", state.coin_y) is not None
        # And the protocol keeps working (payee verification reads succeed).
        bob.transfer("carol", state.coin_y)
        assert state.coin_y in carol.wallet
