"""Resolver edge cases: aliases, dotted chains, re-exports, cycles."""

from __future__ import annotations

import ast

from repro.lint.engine import Program, load_source
from repro.lint.resolve import ConstantResolver, collect_symbols, dotted_prefix


def program_of(*entries: tuple[str, str, str]) -> Program:
    program = Program()
    for path, source, module in entries:
        program.modules.append(load_source(path, source, module))
    return program


def resolve_in(program: Program, module_name: str, expr_source: str):
    info = next(m for m in program.modules if m.module == module_name)
    expr = ast.parse(expr_source, mode="eval").body
    return ConstantResolver(program).resolve(expr, info)


class TestCollectSymbols:
    def test_plain_import_records_only_the_root(self):
        symbols = collect_symbols(ast.parse("import repro.core.protocol\n"))
        assert symbols.plain_import_roots == {"repro"}
        assert symbols.module_aliases == {}

    def test_import_as_records_the_full_dotted_target(self):
        symbols = collect_symbols(ast.parse("import repro.core.protocol as proto\n"))
        assert symbols.module_aliases == {"proto": "repro.core.protocol"}
        assert symbols.plain_import_roots == set()

    def test_from_import_records_both_module_and_name_readings(self):
        symbols = collect_symbols(ast.parse("from repro.core import protocol\n"))
        assert symbols.module_aliases["protocol"] == "repro.core.protocol"
        assert symbols.imported_names["protocol"] == ("repro.core", "protocol")


class TestDottedPrefix:
    def test_name_and_attribute_chains(self):
        assert dotted_prefix(ast.parse("a", mode="eval").body) == "a"
        assert dotted_prefix(ast.parse("a.b.c", mode="eval").body) == "a.b.c"

    def test_non_chain_expressions_resolve_to_none(self):
        assert dotted_prefix(ast.parse("f().b", mode="eval").body) is None
        assert dotted_prefix(ast.parse("a[0].b", mode="eval").body) is None


class TestConstantResolver:
    PROTOCOL = ("protocol.py", 'KIND = "whopay.kind"\n', "repro.core.protocol")

    def test_aliased_module_import(self):
        program = program_of(
            self.PROTOCOL,
            (
                "user.py",
                "import repro.core.protocol as proto\n",
                "repro.user",
            ),
        )
        assert resolve_in(program, "repro.user", "proto.KIND") == "whopay.kind"

    def test_chained_attribute_constant_through_plain_import(self):
        program = program_of(
            self.PROTOCOL,
            ("user.py", "import repro.core.protocol\n", "repro.user"),
        )
        assert (
            resolve_in(program, "repro.user", "repro.core.protocol.KIND")
            == "whopay.kind"
        )

    def test_chained_attribute_through_package_alias(self):
        program = program_of(
            self.PROTOCOL,
            ("user.py", "import repro.core as core\n", "repro.user"),
        )
        assert resolve_in(program, "repro.user", "core.protocol.KIND") == "whopay.kind"

    def test_aliased_from_import_of_a_name(self):
        program = program_of(
            self.PROTOCOL,
            (
                "user.py",
                "from repro.core.protocol import KIND as K\n",
                "repro.user",
            ),
        )
        assert resolve_in(program, "repro.user", "K") == "whopay.kind"

    def test_reexport_chain_resolves_transitively(self):
        program = program_of(
            self.PROTOCOL,
            (
                "init.py",
                "from repro.core.protocol import KIND\n",
                "repro.core",
            ),
            (
                "user.py",
                "from repro.core import KIND\n",
                "repro.user",
            ),
        )
        assert resolve_in(program, "repro.user", "KIND") == "whopay.kind"

    def test_reexport_cycle_resolves_to_none(self):
        program = program_of(
            ("a.py", "from repro.b import K\n", "repro.a"),
            ("b.py", "from repro.a import K\n", "repro.b"),
        )
        assert resolve_in(program, "repro.a", "K") is None

    def test_unknown_and_dynamic_expressions_resolve_to_none(self):
        program = program_of(self.PROTOCOL, ("user.py", "", "repro.user"))
        assert resolve_in(program, "repro.user", "MISSING") is None
        assert resolve_in(program, "repro.user", "payload['kind']") is None

    def test_string_literal_resolves_directly(self):
        program = program_of(("user.py", "", "repro.user"))
        assert resolve_in(program, "repro.user", "'whopay.raw'") == "whopay.raw"
