"""Dataflow layer: call-graph resolution, taint summaries, ordering checks.

The capstone here is the seeded-mutation test: take the *real* broker
source, move a reply ahead of its covering journal write inside a real
handler, and show WP112 catches exactly that — while the pristine source
stays clean.
"""

from __future__ import annotations

import ast
import os

from repro.lint.dataflow.callgraph import get_index
from repro.lint.engine import Program, load_source, lint_sources

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", ".."))


def build_program(*entries: tuple[str, str, str]) -> Program:
    program = Program()
    for path, source, module in entries:
        program.modules.append(load_source(path, source, module))
    return program


def wp112(result):
    return [d for d in result.findings if d.code == "WP112"]


class TestCallGraph:
    def test_same_module_and_imported_functions_resolve(self):
        program = build_program(
            (
                "a.py",
                "from repro.b import helper\n"
                "def local():\n    return 1\n"
                "def caller():\n    return local() + helper()\n",
                "repro.a",
            ),
            ("b.py", "def helper():\n    return 2\n", "repro.b"),
        )
        index = get_index(program)
        caller = index.by_qualname["repro.a:caller"]
        calls = [
            node
            for node in ast.walk(caller.node)
            if isinstance(node, ast.Call)
        ]
        resolved = {
            fn.qualname for call in calls for fn in index.resolve_call(call, caller)
        }
        assert resolved == {"repro.a:local", "repro.b:helper"}

    def test_self_method_resolves_across_the_class_hierarchy(self):
        program = build_program(
            (
                "a.py",
                "class Base:\n"
                "    def step(self):\n        return 1\n"
                "    def run(self):\n        return self.step()\n"
                "class Sub(Base):\n"
                "    def step(self):\n        return 2\n",
                "repro.a",
            ),
        )
        index = get_index(program)
        run = index.by_qualname["repro.a:Base.run"]
        call = next(n for n in ast.walk(run.node) if isinstance(n, ast.Call))
        resolved = {fn.qualname for fn in index.resolve_call(call, run)}
        assert resolved == {"repro.a:Base.step", "repro.a:Sub.step"}

    def test_super_call_excludes_the_calling_class_override(self):
        program = build_program(
            (
                "a.py",
                "class Base:\n"
                "    def step(self):\n        return 1\n"
                "class Sub(Base):\n"
                "    def step(self):\n        return super().step()\n",
                "repro.a",
            ),
        )
        index = get_index(program)
        sub_step = index.by_qualname["repro.a:Sub.step"]
        call = next(
            n
            for n in ast.walk(sub_step.node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "step"
        )
        resolved = {fn.qualname for fn in index.resolve_call(call, sub_step)}
        assert resolved == {"repro.a:Base.step"}

    def test_builtin_method_names_never_resolve_by_uniqueness(self):
        program = build_program(
            (
                "a.py",
                "class Registry:\n"
                "    def get(self, k):\n        return k\n"
                "def caller(d):\n    return d.get('x')\n",
                "repro.a",
            ),
        )
        index = get_index(program)
        caller = index.by_qualname["repro.a:caller"]
        call = next(n for n in ast.walk(caller.node) if isinstance(n, ast.Call))
        assert index.resolve_call(call, caller) == []


class TestInterproceduralTaint:
    def test_taint_crosses_two_call_hops(self):
        result = lint_sources(
            [
                (
                    "peer.py",
                    "class P:\n"
                    "    def entry(self, held):\n"
                    "        return self._mid(held, self.address)\n"
                    "    def _mid(self, held, who):\n"
                    "        return self._low(held, who)\n"
                    "    def _low(self, held, blob):\n"
                    "        return self._holder_envelope(held, 'op', field=blob)\n",
                    "repro.core.peer",
                )
            ]
        )
        found = [d for d in result.findings if d.code == "WP110"]
        assert len(found) == 1
        assert found[0].line == 3  # reported where SRC enters the flow

    def test_barrier_module_call_returns_clean(self):
        result = lint_sources(
            [
                (
                    "peer.py",
                    "from repro.crypto.blind import blind_value\n"
                    "class P:\n"
                    "    def entry(self, held):\n"
                    "        token = blind_value(self.address)\n"
                    "        return self._holder_envelope(held, 'op', field=token)\n",
                    "repro.core.peer",
                ),
                (
                    "blind.py",
                    "def blind_value(x):\n    return x\n",
                    "repro.crypto.blind",
                ),
            ]
        )
        assert [d for d in result.findings if d.code == "WP110"] == []


class TestOrderingAnalysis:
    def test_obligation_inherited_from_a_private_helper(self):
        # The helper mutates without journaling; only the public root reports.
        result = lint_sources(
            [
                (
                    "peer.py",
                    "class P:\n"
                    "    def entry(self, coin):\n"
                    "        self._put(coin)\n"
                    "        return coin\n"
                    "    def _put(self, coin):\n"
                    "        self.owned[coin.y] = coin\n",
                    "repro.core.peer",
                )
            ]
        )
        found = wp112(result)
        assert len(found) == 1
        assert "entry()" in found[0].message

    def test_callee_journal_discharges_the_obligation(self):
        result = lint_sources(
            [
                (
                    "peer.py",
                    "class P:\n"
                    "    def entry(self, coin):\n"
                    "        self.owned[coin.y] = coin\n"
                    "        self._record(coin)\n"
                    "        return coin\n"
                    "    def _record(self, coin):\n"
                    "        self._wal_owned(coin)\n",
                    "repro.core.peer",
                )
            ]
        )
        assert wp112(result) == []


class TestSeededMutation:
    """WP112 catches a reply moved ahead of its journal append for real."""

    BROKER = os.path.join(REPO, "src", "repro", "core", "broker.py")

    def _load(self):
        with open(self.BROKER, "r", encoding="utf-8") as fh:
            return fh.read()

    def _swap_stage_and_return(self, tree: ast.Module) -> bool:
        """In _handle_deposit, move the reply above its ``self._stage``."""
        for node in ast.walk(tree):
            if not (isinstance(node, ast.FunctionDef) and node.name == "_handle_deposit"):
                continue
            for stmt in ast.walk(node):
                if not (isinstance(stmt, ast.If) and len(stmt.body) == 2):
                    continue
                first, second = stmt.body
                if (
                    isinstance(first, ast.Expr)
                    and isinstance(first.value, ast.Call)
                    and isinstance(first.value.func, ast.Attribute)
                    and first.value.func.attr == "_stage"
                    and isinstance(second, ast.Return)
                ):
                    stmt.body = [second, first]
                    return True
        return False

    def test_pristine_broker_handler_is_clean(self):
        source = ast.unparse(ast.parse(self._load()))
        result = lint_sources([("broker.py", source, "repro.core.broker")])
        assert wp112(result) == []

    def test_mutated_broker_handler_is_caught(self):
        tree = ast.parse(self._load())
        assert self._swap_stage_and_return(tree), "broker.py lost the seeded shape"
        mutated = ast.unparse(tree)
        result = lint_sources([("broker.py", mutated, "repro.core.broker")])
        found = wp112(result)
        assert found, "WP112 missed the reply moved ahead of its journal append"
        assert any("_handle_deposit" in d.message for d in found)
