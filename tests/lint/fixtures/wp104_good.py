# wp-lint: module=repro.core.fixture_wp104_good
"""WP104 good fixture: named exceptions, handled or re-raised."""

from repro.core.errors import ProtocolError
from repro.net.transport import NetworkError


def degrade(fn, fallback):
    try:
        return fn()
    except NetworkError:
        # Recovery path: degraded result, failure visible to the caller.
        return fallback


def translate(fn):
    try:
        return fn()
    except ProtocolError as exc:
        raise ValueError(f"rejected: {exc}") from exc


def count_failures(fn, stats):
    try:
        return fn()
    except NetworkError:
        stats["failures"] += 1
        return None
