# wp-lint: module=repro.baselines.fixture_wp103_bad
"""WP103 bad fixture: raw modular pow, variable-time secret comparison."""

import hashlib


def verify_commitment(g, x, p, commitment):
    return pow(g, x, p) == commitment  # line 8: WP103 (raw 3-arg pow)


def check_nonce(nonce, expected):
    return nonce == expected  # line 12: WP103 (secret ==)


def check_mac(payload, key, claimed_mac):
    computed = hashlib.sha256(key + payload).digest()
    return claimed_mac != computed  # line 17: WP103 (secret !=)


def check_token(stored_hash, token):
    return stored_hash == hashlib.sha256(token).digest()  # line 21: WP103 (digest ==)
