# wp-lint: module=repro.core.broker
"""WP113 good fixture: a verification dominates every trusting use."""


class GoodBroker:
    def __init__(self):
        self.on("fix.apply", self._handle_apply)

    def _handle_apply(self, src, payload):
        envelope = decode_signed(payload, self.params)
        if not envelope.verify():
            raise VerificationFailed("bad signature")
        self._stage({"type": "apply", "op": envelope.op})
        return {"ok": True}

    def ingest(self, blob):
        message = self._decode_verified(blob)
        if message is None:
            return
        self.accounts[message.src] = message

    def _decode_verified(self, blob):
        # Verify at the trust boundary: no unverified decode escapes.
        if blob is None:
            return None
        message = decode_signed(blob, self.params)
        if not message.verify():
            raise VerificationFailed("bad signature")
        return message
