# wp-lint: module=repro.fixturewire.bad_client
"""WP105 bad fixture (client half): sends a kind nobody handles."""

PING = "fix.ping"
ORPHANED_SEND = "fix.no_such_handler"


class Client:
    def __init__(self, rpc):
        self.rpc = rpc

    def ping(self, dst):
        return self.rpc.call(dst, PING, None)

    def lost(self, dst):
        return self.rpc.call(dst, ORPHANED_SEND, None)  # line 16: WP105 (no handler)
