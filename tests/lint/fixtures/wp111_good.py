# wp-lint: module=repro.core.peer
"""WP111 good fixture: only public values reach observable surfaces."""


class GoodNode:
    def debug_dump(self, keypair):
        # Public key components are not secrets.
        print("identity public key:", keypair.public.y)

    def journal_public(self, state):
        self._wal({"type": "owned_put", "coin_y": state.coin.coin_y})

    def error_path(self, coin_y):
        raise ValueError(f"unknown coin {coin_y:#x}")

    def register(self):
        self.on("fix.key_query", self._handle_key_query)

    def _handle_key_query(self, src, payload):
        return {"y": self._keypair.public.y}
