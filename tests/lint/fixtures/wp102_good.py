# wp-lint: module=repro.sim.fixture_wp102_good
"""WP102 good fixture: seeded RNG, virtual clock, sorted iteration."""

import random


class Model:
    def __init__(self, seed, clock):
        self.rng = random.Random(seed)  # seeded instance is the sanctioned form
        self.clock = clock

    def jitter(self):
        return self.rng.random()

    def stamp(self):
        return self.clock.now()

    def payload(self, coin_ids):
        ordered = [cid for cid in sorted(set(coin_ids))]
        for cid in sorted({1, 2, 3}):
            ordered.append(cid)
        return ordered
