# wp-lint: module=repro.core.peer
"""WP110 good fixture: identity only crosses via sanctioned constructors."""


class GoodPeer:
    def top_up(self, held, delta):
        # The voucher constructor is the sanctioned declassification point:
        # the account travels sealed inside an identity-signed blob.
        auth = funding_voucher(self.identity, self.address, delta, held.coin_y)
        return self._holder_envelope(held, "top_up", funding_auth=auth)

    def offer(self, held, gpk, member):
        # Coin-keyed fields are fine — they are the anonymous channel.
        payload = {"op": "transfer", "coin_y": held.coin_y}
        return group_seal(held.keypair, member, gpk, payload)

    def named_channel(self, payee):
        # The identity key is allowed on the *named* channel (seal, not
        # group_seal): identity-signed traffic is not anonymous by design.
        return seal(self.identity, {"kind": "whopay.purchase", "payee": payee})
