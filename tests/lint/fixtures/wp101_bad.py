# wp-lint: module=repro.core.fixture_wp101_bad
"""WP101 bad fixture: raw transport sends outside repro.net."""


class LeakyPeer:
    def __init__(self, transport):
        self.transport = transport

    def pay_raw(self, dst, payload):
        return self.transport.request("me", dst, "whopay.purchase", payload)  # line 10: WP101

    def poke(self, node, dst, payload):
        return node.send_raw(dst, "whopay.deposit", payload)  # line 13: WP101
