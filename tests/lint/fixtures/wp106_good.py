"""WP106 good fixture: durable fields are only read; mutations are staged."""


class GoodBroker:
    def __init__(self):
        self.accounts = {}
        self.valid_coins = {}
        self.deposited = {}
        self.downtime_bindings = {}
        self.owner_coins = {}
        self.pending_sync = {}
        self._staged = []

    def _stage(self, mut):
        self._staged.append(mut)

    def handle_deposit(self, coin_y, data):
        if coin_y in self.deposited:
            raise ValueError("double spend")
        value = self.valid_coins[coin_y].value
        self._stage({"type": "deposit", "coin_y": coin_y, "envelope": data})
        return value

    def pending_for(self, owner):
        return sorted(self.pending_sync.get(owner, set()))

    def lookup(self, coin_y):
        return self.downtime_bindings.get(coin_y)

    def balance(self, name):
        account = self.accounts.get(name)
        return 0 if account is None else account.balance
