# wp-lint: module=repro.baselines.fixture_wp103_good
"""WP103 good fixture: fastexp routing, constant-time comparison."""

import hashlib
import hmac

from repro.crypto import fastexp


def verify_commitment(g, x, p, commitment):
    return fastexp.mod_pow(g, x, p) == commitment


def check_nonce(nonce, expected):
    return hmac.compare_digest(nonce, expected)


def check_mac(payload, key, claimed_mac):
    computed = hashlib.sha256(key + payload).digest()
    return hmac.compare_digest(claimed_mac, computed)


def wire_type_check(type_byte):
    # Comparing against a literal wire-format byte is public, not secret.
    return type_byte == b"n"


def wire_tag_literal(wire_tag):
    # Secret-named value against a *constant* is exempt by design.
    return wire_tag == b"t"
