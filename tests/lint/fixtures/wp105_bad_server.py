# wp-lint: module=repro.fixturewire.bad_server
"""WP105 bad fixture (server half): handles a kind nobody sends."""

from repro.fixturewire.bad_client import PING

DEAD_HANDLER = "fix.never_sent"


class Server:
    def __init__(self):
        self.on(PING, self._handle_ping)
        self.on(DEAD_HANDLER, self._handle_dead)  # line 12: WP105 (no sender)

    def on(self, kind, handler):
        pass

    def _handle_ping(self, src, payload):
        return "pong"

    def _handle_dead(self, src, payload):
        return None
