# wp-lint: module=repro.core.broker
"""WP113 bad fixture: envelope data applied before any verification."""


class BadBroker:
    def __init__(self):
        self.on("fix.apply", self._handle_apply)

    def _handle_apply(self, src, payload):
        op = payload.get("op")  # untrusted read
        self._stage({"type": "apply", "op": op})  # line 11: mutation, no verify
        return {"ok": True}

    def ingest(self, blob):
        message = decode_signed(blob, self.params)  # untrusted decode
        self.accounts[message.src] = message  # line 16: durable write, no verify
