# wp-lint: module=repro.sim.fixture_wp107_bad
"""WP107 bad fixture: global numpy stream and unseeded generators."""

import numpy as np
from numpy import random as nprandom
from numpy.random import default_rng


def sample_sessions(n):
    return np.random.exponential(2.0, size=n)  # line 10: WP107 (global stream)


def reseed_everything(seed):
    np.random.seed(seed)  # line 14: WP107 (mutates shared global state)


def fresh_generator():
    return default_rng()  # line 18: WP107 (OS-entropy seed)


def fresh_legacy():
    return np.random.RandomState()  # line 22: WP107 (OS-entropy seed)


def explicit_none():
    return nprandom.default_rng(None)  # line 26: WP107 (None = OS entropy)
