"""WP106 bad fixture: direct mutation of durable broker fields."""


class BadBroker:
    def __init__(self):
        self.accounts = {}
        self.valid_coins = {}
        self.deposited = {}
        self.downtime_bindings = {}
        self.owner_coins = {}
        self.pending_sync = {}

    def handle_deposit(self, coin_y, data):
        self.deposited[coin_y] = data  # line 14: item assignment

    def handle_purchase(self, coin_y, coin, src):
        self.valid_coins[coin_y] = coin  # line 17: item assignment
        self.owner_coins.setdefault(src, set()).add(coin_y)  # line 18: chained mutator

    def forget(self, coin_y):
        del self.downtime_bindings[coin_y]  # line 21: item deletion

    def reset(self):
        self.accounts = {}  # line 24: whole-field rebind outside __init__

    def consume(self, owner):
        self.pending_sync.pop(owner, None)  # line 27: in-place mutator
