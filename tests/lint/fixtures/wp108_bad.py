"""WP108 bad fixture: raw fsync calls outside the journal layer."""

import os
from os import fsync  # line 4: imports the primitive directly


def checkpoint(path):
    fd = os.open(path, os.O_WRONLY)
    os.write(fd, b"state")
    os.fsync(fd)  # line 10: raw fsync bypasses group-commit accounting
    os.close(fd)


def lazy_checkpoint(fd):
    os.fdatasync(fd)  # line 15: fdatasync is the same side channel
