"""WP109 bad fixture: ad hoc broker construction outside the factories."""

from repro.core import broker
from repro.core.broker import Broker


def rogue_mint(transport, judge, params, clock):
    return Broker(transport, judge=judge, params=params, clock=clock)


def rogue_mint_qualified(transport, judge, params, clock):
    return broker.Broker(transport, judge=judge, params=params, clock=clock)
