# wp-lint: module=repro.sim.fixture_wp102_bad
"""WP102 bad fixture: process entropy, wall clocks, hash-ordered iteration."""

import random
import time
from datetime import datetime


def jitter():
    return random.random()  # line 10: WP102 (global RNG)


def pick(peers):
    return random.choice(peers)  # line 14: WP102 (global RNG)


def stamp():
    return time.time(), datetime.now()  # line 18: WP102 twice (wall clock)


def payload(coin_ids):
    ordered = [cid for cid in set(coin_ids)]  # line 22: WP102 (set iteration)
    for cid in {1, 2, 3}:  # line 23: WP102 (set iteration)
        ordered.append(cid)
    return list({"a", "b"})  # line 25: WP102 (set iteration)
