"""WP108 good fixture: durability goes through the journal API."""


def checkpoint(store, record):
    return store.append(record)


def checkpoint_batch(committer, records):
    for record in records:
        committer.stage(record)
    return committer.flush()


def unrelated_os_use(path):
    import os

    return os.path.basename(path)
