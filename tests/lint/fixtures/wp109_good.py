"""WP109 good fixture: brokers come from the factory or recovery."""

from repro.core.network import BrokerTopology, WhoPayNetwork
from repro.store.recovery import RecoveryManager


def proper_network(params):
    net = WhoPayNetwork(params=params, topology=BrokerTopology(shards=4))
    return net.broker


def proper_recovery(store, transport, judge, params, clock):
    result = RecoveryManager(store).recover_broker(
        transport, judge=judge, params=params, clock=clock
    )
    return result.entity


def reads_are_fine(net):
    # Mentioning a broker object (not constructing one) never fires.
    return net.broker.circulating_value()
