# wp-lint: module=repro.fixturewire.good_client
"""WP105 good fixture (client half): every sent kind has a handler."""

PING = "fixok.ping"
STORE = "fixok.store"


class Client:
    def __init__(self, rpc):
        self.rpc = rpc

    def ping(self, dst):
        return self.rpc.call(dst, PING, None)

    def store(self, dst, payload):
        # Kind referenced through a from-import on the server side.
        return self.rpc.call(dst, STORE, payload)

    def forward(self, dst, payload):
        # Dynamic kind: unresolvable, deliberately skipped by the rule.
        return self.rpc.call(dst, payload["kind"], payload["body"])
