# wp-lint: module=repro.sim.fixture_wp107_good
"""WP107 good fixture: every generator is seeded from the config."""

import random

import numpy as np
from numpy.random import default_rng


class Sampler:
    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.gen = default_rng(seed)
        # Seeded shell about to receive a transplanted MT19937 state — the
        # engine's block-stream idiom.
        self.shell = np.random.RandomState(0)
        self.named = np.random.default_rng(seed=seed)

    def gaps(self, n):
        return self.gen.exponential(2.0, size=n)
