# wp-lint: module=repro.core.peer
"""WP111 bad fixture: secret key material reaches observable surfaces."""


class BadNode:
    def debug_dump(self, keypair):
        print("identity secret:", keypair.x)  # line 7: printed output

    def journal_raw(self, keypair):
        self._wal({"type": "init", "secret": keypair.x})  # line 10: journal

    def error_path(self, keypair):
        raise ValueError(f"bad key {keypair.x}")  # line 13: exception message

    def register(self):
        self.on("fix.key_query", self._handle_key_query)

    def _handle_key_query(self, src, payload):
        return {"x": self._keypair.x}  # line 19: handler reply payload

    def share_log(self, log, secret):
        for share in split_secret(secret, n=5, k=3):
            log.info("share: %r", share)  # line 23: log message
