# wp-lint: module=repro.core.peer
"""WP110 bad fixture: peer identity reaches the anonymous channel."""


class BadPeer:
    def top_up(self, held, delta):
        auth = {"account": self.address, "amount": delta}  # tainted dict
        return self._holder_envelope(held, "top_up", funding_auth=auth)  # line 8

    def offer(self, held, gpk, member):
        payload = {"op": "transfer", "payer": self.identity}
        return group_seal(held.keypair, member, gpk, payload)  # line 12

    def relay(self, held):
        # Interprocedural: the identity flows through a helper parameter.
        return self._wrap(held, self.address)  # line 16

    def _wrap(self, held, blob):
        return self._holder_envelope(held, "op", field=blob)
