# wp-lint: module=repro.core.peer
"""WP112 bad fixture: replies escape before the covering journal write."""


class BadPeer:
    def purchase(self, coin):
        self.owned[coin.coin_y] = coin  # line 7: mutation, never journaled
        return coin

    def retire(self, coin_y):
        del self.wallet[coin_y]  # line 11: deletion, never journaled
        return True

    def one_armed(self, coin, flag):
        self.owned[coin.coin_y] = coin  # line 15: journaled on one path only
        if flag:
            self._wal_owned(coin)
        return coin

    def dead_journal(self, coin):
        self.owned[coin.coin_y] = coin  # line 21
        return coin
        self._wal_owned(coin)  # line 23: unreachable journal write
