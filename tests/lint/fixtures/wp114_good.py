# wp-lint: module=repro.core.fixture_wp114_good
"""WP114 good fixture: every RPC budgeted, waiting via the virtual clock."""

PING_DEADLINE = 30.0


class Client:
    def __init__(self, rpc, shard_rpc, clock):
        self.rpc = rpc
        self._shard_rpc = shard_rpc
        self.clock = clock

    def ping(self, dst):
        return self.rpc.call(dst, "ping", None, deadline=PING_DEADLINE)

    def prepare(self, dst, payload):
        return self._shard_rpc.call(
            dst, "xshard.prepare", payload, deadline=PING_DEADLINE
        )

    def backoff(self):
        self.clock.advance(0.5)  # virtual waiting is the sanctioned form
