# wp-lint: module=repro.core.fixture_wp104_bad
"""WP104 bad fixture: bare except and swallowed protocol errors."""

from repro.core.errors import ProtocolError
from repro.net.transport import NetworkError


def risky(fn):
    try:
        return fn()
    except:  # line 11: WP104 (bare except)
        return None


def swallow_protocol(fn):
    try:
        return fn()
    except ProtocolError:  # line 18: WP104 (silent swallow)
        pass


def swallow_network(fn):
    try:
        return fn()
    except (ValueError, NetworkError):  # line 25: WP104 (silent swallow)
        ...
