# wp-lint: module=repro.core.peer
"""WP112 good fixture: every reply is dominated by its journal write."""


class GoodPeer:
    def purchase(self, coin):
        self.owned[coin.coin_y] = coin
        self._wal_owned(coin)
        return coin

    def retire(self, coin_y):
        del self.wallet[coin_y]
        self._wal_del(coin_y)
        return True

    def both_arms(self, coin, flag):
        if flag:
            self.owned[coin.coin_y] = coin
            self._wal_owned(coin)
        else:
            del self.wallet[coin.coin_y]
            self._wal_del(coin.coin_y)
        return coin

    def crash_instead_of_reply(self, coin):
        # A raise is not a reply: the crash happens before any state is
        # acknowledged, which is exactly what recovery replays.
        self.owned[coin.coin_y] = coin
        raise RuntimeError("abort before reply")

    def helper_journals(self, coin):
        self.owned[coin.coin_y] = coin
        self._record(coin)
        return coin

    def _record(self, coin):
        self._wal_owned(coin)
