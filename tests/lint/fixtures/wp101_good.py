# wp-lint: module=repro.core.fixture_wp101_good
"""WP101 good fixture: traffic rides the typed facades / Node.request."""


class PolitePeer:
    def __init__(self, broker_client):
        self.broker_client = broker_client

    def pay(self, signed_request):
        return self.broker_client.purchase(signed_request)

    def probe(self, dst, payload):
        # Node.request is the sanctioned convenience sender.
        return self.request(dst, "whopay.binding_query", payload)

    def request(self, dst, kind, payload):
        return (dst, kind, payload)
