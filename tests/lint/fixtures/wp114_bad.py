# wp-lint: module=repro.core.fixture_wp114_bad
"""WP114 bad fixture: unbounded RPCs and real-time sleeps in protocol code."""

import time
from time import sleep  # line 5: WP114 (importing sleep)


class Client:
    def __init__(self, rpc, shard_rpc):
        self.rpc = rpc
        self._shard_rpc = shard_rpc

    def ping(self, dst):
        return self.rpc.call(dst, "ping", None)  # line 14: WP114 (no deadline)

    def prepare(self, dst, payload):
        return self._shard_rpc.call(dst, "xshard.prepare", payload)  # line 17: WP114

    def backoff(self):
        time.sleep(0.5)  # line 20: WP114 (real-time sleep)
        sleep(0.1)
