# wp-lint: module=repro.fixturewire.good_server
"""WP105 good fixture (server half): every handler has a sender."""

from repro.fixturewire.good_client import PING, STORE


class Server:
    def __init__(self):
        self.on(PING, self._handle_ping)
        self.on(STORE, self._handle_store)

    def on(self, kind, handler):
        pass

    def _handle_ping(self, src, payload):
        return "pong"

    def _handle_store(self, src, payload):
        return True
