"""CLI behavior and the self-check: the committed tree lints clean."""

from __future__ import annotations

import json
import os

from repro.lint.cli import main, split_exempt
from repro.lint.diagnostics import Diagnostic
from repro.lint.sarif import SARIF_VERSION

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
SRC = os.path.join(HERE, "..", "..", "src")


def test_self_check_committed_tree_is_clean(capsys):
    """`python -m repro.lint src/` exits 0 with zero findings, no baseline."""
    code = main([SRC, "--no-baseline", "--no-cache", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["findings"] == []
    assert payload["checked_files"] > 60


def test_bad_fixture_fails_with_exit_1(capsys):
    code = main([os.path.join(FIXTURES, "wp103_bad.py"), "--no-baseline", "--no-cache"])
    out = capsys.readouterr().out
    assert code == 1
    assert "WP103" in out
    assert "file(s) [cache: disabled]" in out.strip().splitlines()[-1]


def test_json_format_shape(capsys):
    code = main(
        [
            os.path.join(FIXTURES, "wp104_bad.py"),
            "--no-baseline",
            "--no-cache",
            "--format",
            "json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["cache"] == "disabled"
    assert {f["code"] for f in payload["findings"]} == {"WP104"}
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "code", "message", "fingerprint"}


def test_sarif_format_from_the_cli(capsys):
    code = main(
        [
            os.path.join(FIXTURES, "wp104_bad.py"),
            "--no-baseline",
            "--no-cache",
            "--format",
            "sarif",
        ]
    )
    log = json.loads(capsys.readouterr().out)
    assert code == 1
    assert log["version"] == SARIF_VERSION
    results = log["runs"][0]["results"]
    assert results and all(r["ruleId"] == "WP104" for r in results)


def test_cache_status_transitions(tmp_path, capsys):
    """cold on first run, full-hit on an unchanged tree, partial after an edit."""
    cache = str(tmp_path / "cache.json")
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "a.py").write_text(
        "# wp-lint: module=repro.core.a\nx = pow(2, 3)\n", encoding="utf-8"
    )
    (tree / "b.py").write_text(
        "# wp-lint: module=repro.core.b\ny = 1\n", encoding="utf-8"
    )
    argv = [str(tree), "--no-baseline", "--cache-file", cache, "--format", "json"]

    main(argv)
    first = json.loads(capsys.readouterr().out)
    assert first["cache"] == "cold"

    main(argv)
    second = json.loads(capsys.readouterr().out)
    assert second["cache"] == "full-hit"

    (tree / "b.py").write_text(
        "# wp-lint: module=repro.core.b\ny = 2\n", encoding="utf-8"
    )
    main(argv)
    third = json.loads(capsys.readouterr().out)
    assert third["cache"] == "partial-hit:1/2"


def test_write_baseline_then_clean(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    bad = os.path.join(FIXTURES, "wp102_bad.py")
    assert main([bad, "--baseline", baseline, "--no-cache", "--write-baseline"]) == 0
    capsys.readouterr()
    # Same findings, now grandfathered: exit 0, reported as baselined.
    code = main([bad, "--baseline", baseline, "--no-cache", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["findings"] == []
    assert len(payload["baselined"]) > 0


def test_stale_baseline_entries_surface(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    bad = os.path.join(FIXTURES, "wp104_bad.py")
    good = os.path.join(FIXTURES, "wp104_good.py")
    main([bad, "--baseline", baseline, "--no-cache", "--write-baseline"])
    capsys.readouterr()
    code = main([good, "--baseline", baseline, "--no-cache"])
    out = capsys.readouterr().out
    assert code == 0
    assert "stale baseline entry" in out


def test_missing_path_is_a_usage_error(capsys):
    assert main(["definitely/not/a/path.py", "--no-cache"]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("WP101", "WP102", "WP103", "WP104", "WP105"):
        assert code in out


class TestExemptionMap:
    EXEMPT = {"benchmarks/bench.py": frozenset({"WP103"}), "examples": frozenset({"WP111"})}

    def _diag(self, path, code):
        return Diagnostic(path=path, line=1, col=0, code=code, message="m")

    def test_exact_path_and_code_match_is_dropped(self):
        kept, dropped = split_exempt(
            [self._diag("benchmarks/bench.py", "WP103")], self.EXEMPT
        )
        assert kept == [] and len(dropped) == 1

    def test_other_codes_under_the_same_path_are_kept(self):
        kept, dropped = split_exempt(
            [self._diag("benchmarks/bench.py", "WP104")], self.EXEMPT
        )
        assert len(kept) == 1 and dropped == []

    def test_directory_prefix_covers_children_not_siblings(self):
        kept, dropped = split_exempt(
            [
                self._diag("examples/demo.py", "WP111"),
                self._diag("examples_extra/demo.py", "WP111"),
            ],
            self.EXEMPT,
        )
        assert [d.path for d in dropped] == ["examples/demo.py"]
        assert [d.path for d in kept] == ["examples_extra/demo.py"]
