"""CLI behavior and the self-check: the committed tree lints clean."""

from __future__ import annotations

import json
import os

from repro.lint.cli import main

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
SRC = os.path.join(HERE, "..", "..", "src")


def test_self_check_committed_tree_is_clean(capsys):
    """`python -m repro.lint src/` exits 0 with zero findings, no baseline."""
    code = main([SRC, "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["findings"] == []
    assert payload["checked_files"] > 60


def test_bad_fixture_fails_with_exit_1(capsys):
    code = main([os.path.join(FIXTURES, "wp103_bad.py"), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "WP103" in out
    assert out.strip().endswith("file(s)")


def test_json_format_shape(capsys):
    code = main(
        [os.path.join(FIXTURES, "wp104_bad.py"), "--no-baseline", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {f["code"] for f in payload["findings"]} == {"WP104"}
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "code", "message", "fingerprint"}


def test_write_baseline_then_clean(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    bad = os.path.join(FIXTURES, "wp102_bad.py")
    assert main([bad, "--baseline", baseline, "--write-baseline"]) == 0
    capsys.readouterr()
    # Same findings, now grandfathered: exit 0, reported as baselined.
    code = main([bad, "--baseline", baseline, "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["findings"] == []
    assert len(payload["baselined"]) > 0


def test_stale_baseline_entries_surface(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    bad = os.path.join(FIXTURES, "wp104_bad.py")
    good = os.path.join(FIXTURES, "wp104_good.py")
    main([bad, "--baseline", baseline, "--write-baseline"])
    capsys.readouterr()
    code = main([good, "--baseline", baseline])
    out = capsys.readouterr().out
    assert code == 0
    assert "stale baseline entry" in out


def test_missing_path_is_a_usage_error(capsys):
    assert main(["definitely/not/a/path.py"]) == 2
    assert "error" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("WP101", "WP102", "WP103", "WP104", "WP105"):
        assert code in out
