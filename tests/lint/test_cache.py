"""Content-hash cache: full-tree replay, per-file reuse, invalidation."""

from __future__ import annotations

import json

import pytest

import repro.lint.cache as cache_mod
from repro.lint.cache import LintCache, lint_paths_cached, ruleset_version


CLEAN = "# wp-lint: module=repro.core.clean\nx = 1\n"
BAD = "# wp-lint: module=repro.core.dirty\ny = pow(2, 3, 5)\n"  # WP103


@pytest.fixture
def tree(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "clean.py").write_text(CLEAN, encoding="utf-8")
    (root / "dirty.py").write_text(BAD, encoding="utf-8")
    return root


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "cache.json")


class TestFullTreeFastPath:
    def test_cold_then_full_hit_replays_the_same_result(self, tree, cache_path):
        cold, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "cold"

        warm, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "full-hit"
        assert [d.to_json() for d in warm.findings] == [
            d.to_json() for d in cold.findings
        ]
        assert warm.checked_files == cold.checked_files
        assert warm.suppressed == cold.suppressed

    def test_full_hit_does_not_parse_any_file(self, tree, cache_path, monkeypatch):
        lint_paths_cached([str(tree)], LintCache.load(cache_path))

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("full-hit path parsed a file")

        monkeypatch.setattr(cache_mod, "load_source", boom)
        _, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "full-hit"


class TestPartialReuse:
    def test_editing_one_file_reuses_the_other(self, tree, cache_path):
        lint_paths_cached([str(tree)], LintCache.load(cache_path))
        (tree / "clean.py").write_text(CLEAN + "z = 2\n", encoding="utf-8")
        result, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "partial-hit:1/2"
        # The unchanged file's finding is replayed from the cache.
        assert {d.code for d in result.findings} == {"WP103"}

    def test_reverting_the_edit_still_reuses_the_unchanged_file(self, tree, cache_path):
        lint_paths_cached([str(tree)], LintCache.load(cache_path))
        original = (tree / "clean.py").read_text(encoding="utf-8")
        (tree / "clean.py").write_text(original + "z = 2\n", encoding="utf-8")
        lint_paths_cached([str(tree)], LintCache.load(cache_path))
        (tree / "clean.py").write_text(original, encoding="utf-8")
        # Content-keyed, not mtime-keyed: the untouched file replays even
        # though the whole-tree result (one slot, latest tree) was displaced.
        _, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "partial-hit:1/2"
        _, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "full-hit"

    def test_deleted_files_are_pruned_from_the_cache(self, tree, cache_path):
        lint_paths_cached([str(tree)], LintCache.load(cache_path))
        (tree / "dirty.py").unlink()
        result, _ = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert result.findings == []
        with open(cache_path, "r", encoding="utf-8") as fh:
            stored = json.load(fh)
        assert all(path.endswith("clean.py") for path in stored["files"])


class TestInvalidation:
    def test_ruleset_version_change_discards_the_cache(self, tree, cache_path):
        lint_paths_cached([str(tree)], LintCache.load(cache_path))
        with open(cache_path, "r", encoding="utf-8") as fh:
            stored = json.load(fh)
        stored["version"] = "0" * 16  # a different rule set wrote this
        with open(cache_path, "w", encoding="utf-8") as fh:
            json.dump(stored, fh)
        _, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "cold"

    def test_corrupt_cache_degrades_to_cold(self, tree, cache_path):
        with open(cache_path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        result, status = lint_paths_cached([str(tree)], LintCache.load(cache_path))
        assert status == "cold"
        assert {d.code for d in result.findings} == {"WP103"}

    def test_no_cache_reports_disabled(self, tree):
        result, status = lint_paths_cached([str(tree)], None)
        assert status == "disabled"
        assert {d.code for d in result.findings} == {"WP103"}

    def test_ruleset_version_is_stable_within_a_process(self):
        assert ruleset_version() == ruleset_version()
        assert len(ruleset_version()) == 16
