"""Good/bad fixture pairs for every rule: bad fires, good stays silent."""

from __future__ import annotations

import os

import pytest

from repro.lint import lint_paths

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def findings_for(code: str, *names: str):
    result = lint_paths([fixture(name) for name in names])
    return [diag for diag in result.findings if diag.code == code]


class TestWP101TransportDiscipline:
    def test_bad_fires_on_raw_transport_and_send_raw(self):
        found = findings_for("WP101", "wp101_bad.py")
        assert [diag.line for diag in found] == [10, 13]
        assert "transport.request" in found[0].message
        assert "send_raw" in found[1].message

    def test_good_is_silent(self):
        assert findings_for("WP101", "wp101_good.py") == []

    def test_repro_net_itself_is_exempt(self):
        # The real transport layer is full of raw sends by design.
        src = os.path.join(os.path.dirname(FIXTURES), "..", "..", "src")
        result = lint_paths(
            [
                os.path.join(src, "repro", "net", "transport.py"),
                os.path.join(src, "repro", "net", "node.py"),
                os.path.join(src, "repro", "net", "rpc.py"),
            ]
        )
        assert [d for d in result.findings if d.code == "WP101"] == []


class TestWP102Determinism:
    def test_bad_fires_on_every_hazard(self):
        found = findings_for("WP102", "wp102_bad.py")
        assert [diag.line for diag in found] == [10, 14, 18, 18, 22, 23, 25]
        messages = " ".join(diag.message for diag in found)
        assert "random.random" in messages
        assert "time.time" in messages
        assert "datetime.now" in messages
        assert "sorted" in messages

    def test_good_is_silent(self):
        assert findings_for("WP102", "wp102_good.py") == []

    def test_only_guards_repro_packages(self):
        # Without a repro.* module name the determinism rule does not apply.
        from repro.lint import lint_sources

        result = lint_sources(
            [("scratch.py", "import random\nx = random.random()\n", "scratch")]
        )
        assert [d for d in result.findings if d.code == "WP102"] == []


class TestWP103CryptoHygiene:
    def test_bad_fires_on_pow_and_secret_compares(self):
        found = findings_for("WP103", "wp103_bad.py")
        assert [diag.line for diag in found] == [8, 12, 17, 21]
        assert "fastexp" in found[0].message
        assert all("compare_digest" in diag.message for diag in found[1:])

    def test_good_is_silent(self):
        assert findings_for("WP103", "wp103_good.py") == []

    def test_crypto_package_may_use_raw_pow(self):
        from repro.lint import lint_sources

        source = "def f(g, x, p):\n    return pow(g, x, p)\n"
        inside = lint_sources([("fastexp.py", source, "repro.crypto.fastexp")])
        outside = lint_sources([("peer.py", source, "repro.core.peer")])
        assert [d for d in inside.findings if d.code == "WP103"] == []
        assert len([d for d in outside.findings if d.code == "WP103"]) == 1


class TestWP104ExceptionDiscipline:
    def test_bad_fires_on_bare_and_swallowed(self):
        found = findings_for("WP104", "wp104_bad.py")
        assert [diag.line for diag in found] == [11, 18, 25]
        assert "bare" in found[0].message
        assert "ProtocolError" in found[1].message
        assert "NetworkError" in found[2].message

    def test_good_is_silent(self):
        assert findings_for("WP104", "wp104_good.py") == []


class TestWP105WireSchema:
    def test_cross_module_mismatch_both_directions(self):
        found = findings_for("WP105", "wp105_bad_client.py", "wp105_bad_server.py")
        assert len(found) == 2
        by_kind = {diag.message: diag for diag in found}
        sent_msg = next(m for m in by_kind if "fix.no_such_handler" in m)
        dead_msg = next(m for m in by_kind if "fix.never_sent" in m)
        assert "no Node registers a handler" in sent_msg
        assert by_kind[sent_msg].path.endswith("wp105_bad_client.py")
        assert by_kind[sent_msg].line == 16
        assert "no client or facade ever sends it" in dead_msg
        assert by_kind[dead_msg].path.endswith("wp105_bad_server.py")
        assert by_kind[dead_msg].line == 12

    def test_good_pair_is_silent_including_from_imports(self):
        assert (
            findings_for("WP105", "wp105_good_client.py", "wp105_good_server.py") == []
        )

    def test_half_a_program_reports_the_drift(self):
        # Linting only the client half: even the matched kind has no handler.
        found = findings_for("WP105", "wp105_good_client.py")
        assert {("fixok.ping" in d.message or "fixok.store" in d.message) for d in found} == {True}
        assert len(found) == 2


class TestWP106DurableFieldDiscipline:
    def test_bad_fires_on_every_mutation_shape(self):
        found = findings_for("WP106", "wp106_bad.py")
        assert [diag.line for diag in found] == [14, 17, 18, 21, 24, 27]
        messages = " ".join(diag.message for diag in found)
        assert "'deposited'" in messages
        assert "'valid_coins'" in messages
        assert "'owner_coins'" in messages
        assert "'downtime_bindings'" in messages
        assert "rebinding" in messages
        assert "pop()" in messages

    def test_good_is_silent(self):
        assert findings_for("WP106", "wp106_good.py") == []

    def test_store_and_persistence_are_exempt(self):
        from repro.lint import lint_sources

        source = "def f(broker, y, data):\n    broker.deposited[y] = data\n"
        inside = lint_sources([("apply.py", source, "repro.store.apply")])
        persistence = lint_sources([("persistence.py", source, "repro.core.persistence")])
        outside = lint_sources([("broker.py", source, "repro.core.broker")])
        assert [d for d in inside.findings if d.code == "WP106"] == []
        assert [d for d in persistence.findings if d.code == "WP106"] == []
        assert len([d for d in outside.findings if d.code == "WP106"]) == 1


class TestWP107SimSeeding:
    def test_bad_fires_on_global_stream_and_unseeded_ctors(self):
        found = findings_for("WP107", "wp107_bad.py")
        assert [diag.line for diag in found] == [10, 14, 18, 22, 26]
        messages = " ".join(diag.message for diag in found)
        assert "numpy.random.exponential" in messages
        assert "numpy.random.seed" in messages
        assert "default_rng() without a seed" in messages
        assert "RandomState() without a seed" in messages

    def test_good_is_silent(self):
        assert findings_for("WP107", "wp107_good.py") == []

    def test_scope_is_repro_sim_only(self):
        from repro.lint import lint_sources

        source = "import numpy as np\nx = np.random.random()\n"
        inside = lint_sources([("engine.py", source, "repro.sim.engine_scratch")])
        outside = lint_sources([("stats.py", source, "repro.analysis.stats_scratch")])
        assert len([d for d in inside.findings if d.code == "WP107"]) == 1
        assert [d for d in outside.findings if d.code == "WP107"] == []

    def test_seeded_engine_modules_are_clean(self):
        src = os.path.join(os.path.dirname(FIXTURES), "..", "..", "src")
        result = lint_paths(
            [
                os.path.join(src, "repro", "sim", "engine.py"),
                os.path.join(src, "repro", "sim", "simulator.py"),
            ]
        )
        assert [d for d in result.findings if d.code == "WP107"] == []


@pytest.mark.parametrize(
    "bad,good",
    [
        ("wp101_bad.py", "wp101_good.py"),
        ("wp102_bad.py", "wp102_good.py"),
        ("wp103_bad.py", "wp103_good.py"),
        ("wp104_bad.py", "wp104_good.py"),
        ("wp106_bad.py", "wp106_good.py"),
        ("wp107_bad.py", "wp107_good.py"),
        ("wp109_bad.py", "wp109_good.py"),
        ("wp114_bad.py", "wp114_good.py"),
    ],
)
def test_every_bad_fixture_fails_and_good_passes(bad, good):
    code = "WP" + bad[2:5]
    assert findings_for(code, bad), f"{bad} should produce {code} findings"
    assert not findings_for(code, good), f"{good} should be clean of {code}"


class TestWP108FsyncDiscipline:
    def test_bad_fires_on_calls_and_imports(self):
        found = findings_for("WP108", "wp108_bad.py")
        assert [diag.line for diag in found] == [4, 10, 15]
        messages = " ".join(diag.message for diag in found)
        assert "from os import fsync" in messages
        assert "os.fsync()" in messages
        assert "os.fdatasync()" in messages

    def test_good_is_silent(self):
        assert findings_for("WP108", "wp108_good.py") == []

    def test_the_journal_layer_is_exempt(self):
        from repro.lint import lint_sources

        source = "import os\n\ndef sync(fd):\n    os.fsync(fd)\n"
        inside = lint_sources([("journal.py", source, "repro.store.journal")])
        outside = lint_sources([("broker.py", source, "repro.core.broker")])
        assert [d for d in inside.findings if d.code == "WP108"] == []
        assert len([d for d in outside.findings if d.code == "WP108"]) == 1


class TestWP109BrokerConstructionDiscipline:
    def test_bad_fires_on_bare_and_qualified_construction(self):
        found = findings_for("WP109", "wp109_bad.py")
        assert [diag.line for diag in found] == [8, 12]
        assert all("factories" in diag.message for diag in found)

    def test_good_is_silent(self):
        assert findings_for("WP109", "wp109_good.py") == []

    def test_factory_and_recovery_modules_are_exempt(self):
        from repro.lint import lint_sources

        source = "def build(Broker, transport):\n    return Broker(transport)\n"
        factory = lint_sources([("network.py", source, "repro.core.network")])
        recovery = lint_sources([("recovery.py", source, "repro.store.recovery")])
        tests_mod = lint_sources([("test_broker.py", source, "tests.core.test_broker")])
        elsewhere = lint_sources([("peer.py", source, "repro.core.peer")])
        assert [d for d in factory.findings if d.code == "WP109"] == []
        assert [d for d in recovery.findings if d.code == "WP109"] == []
        assert [d for d in tests_mod.findings if d.code == "WP109"] == []
        assert len([d for d in elsewhere.findings if d.code == "WP109"]) == 1

    def test_subclass_names_do_not_fire(self):
        from repro.lint import lint_sources

        source = "def build(PPayBroker, t):\n    return PPayBroker(t)\n"
        result = lint_sources([("x.py", source, "repro.baselines.scratch")])
        assert [d for d in result.findings if d.code == "WP109"] == []


class TestWP110AnonymityTaint:
    def test_bad_fires_on_direct_helper_and_group_seal_flows(self):
        found = findings_for("WP110", "wp110_bad.py")
        assert [diag.line for diag in found] == [8, 12, 16]
        messages = " ".join(diag.message for diag in found)
        assert "holder-envelope field funding_auth" in messages
        assert "group_seal payload" in messages

    def test_good_is_silent(self):
        assert findings_for("WP110", "wp110_good.py") == []

    def test_outside_peer_modules_is_out_of_scope(self):
        from repro.lint import lint_sources

        source = (
            "class X:\n"
            "    def f(self, held):\n"
            "        return self._holder_envelope(held, 'op', who=self.address)\n"
        )
        result = lint_sources([("x.py", source, "repro.sim.driver")])
        assert [d for d in result.findings if d.code == "WP110"] == []


class TestWP111SecretEgress:
    def test_bad_fires_on_every_egress_surface(self):
        found = findings_for("WP111", "wp111_bad.py")
        assert [diag.line for diag in found] == [7, 10, 13, 19, 23]
        messages = " ".join(diag.message for diag in found)
        for surface in (
            "printed output",
            "journal record",
            "exception message",
            "handler reply payload",
            "log message",
        ):
            assert surface in messages

    def test_good_is_silent(self):
        assert findings_for("WP111", "wp111_good.py") == []

    def test_serializer_layer_is_exempt(self):
        from repro.lint import lint_sources

        source = (
            "def record(keypair):\n"
            "    return {'type': 'init', 'x': keypair.x}\n"
        )
        inside = lint_sources([("records.py", source, "repro.store.records")])
        assert [d for d in inside.findings if d.code == "WP111"] == []


class TestWP112JournalBeforeReply:
    def test_bad_fires_on_unjournaled_one_armed_and_dead_code(self):
        found = findings_for("WP112", "wp112_bad.py")
        assert [diag.line for diag in found] == [7, 11, 15, 21, 23]
        messages = " ".join(diag.message for diag in found)
        assert "without a covering journal write" in messages
        assert "unreachable" in messages

    def test_good_is_silent(self):
        assert findings_for("WP112", "wp112_good.py") == []


class TestWP113VerifyBeforeTrust:
    def test_bad_fires_on_handler_and_decode_flows(self):
        found = findings_for("WP113", "wp113_bad.py")
        assert [diag.line for diag in found] == [11, 16]
        assert all("no dominating signature/validation" in d.message for d in found)

    def test_good_is_silent(self):
        assert findings_for("WP113", "wp113_good.py") == []


class TestWP114LivenessDiscipline:
    def test_bad_fires_on_unbounded_rpc_and_sleeps(self):
        found = findings_for("WP114", "wp114_bad.py")
        assert [diag.line for diag in found] == [5, 14, 17, 20]
        messages = " ".join(diag.message for diag in found)
        assert "importing sleep" in messages
        assert "deadline=" in messages
        assert "time.sleep" in messages

    def test_good_is_silent(self):
        assert findings_for("WP114", "wp114_good.py") == []

    def test_repro_net_backoff_helpers_are_exempt(self):
        # The RPC layer itself implements the budget machinery; its
        # seeded-backoff accounting is the sanctioned form.
        from repro.lint import lint_sources

        source = "def probe(rpc, dst):\n    return rpc.call(dst, 'ping', None)\n"
        inside = lint_sources([("rpc.py", source, "repro.net.rpc")])
        outside = lint_sources([("peer.py", source, "repro.core.peer")])
        assert [d for d in inside.findings if d.code == "WP114"] == []
        assert len([d for d in outside.findings if d.code == "WP114"]) == 1
