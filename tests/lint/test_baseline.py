"""Baseline round-trip: write, reload, match, detect staleness."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.diagnostics import Diagnostic

D1 = Diagnostic("src/a.py", 10, 0, "WP103", "variable-time == on secret material")
D2 = Diagnostic("src/b.py", 3, 4, "WP105", "kind 'x' sent but unhandled")


def test_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    assert write_baseline(path, [D1, D2]) == 2
    table = load_baseline(path)
    assert set(table) == {D1.fingerprint, D2.fingerprint}
    new, grandfathered, stale = split_baselined([D1, D2], table)
    assert new == []
    assert sorted(grandfathered) == sorted([D1, D2])
    assert stale == []


def test_baselined_findings_survive_line_shifts(tmp_path):
    path = str(tmp_path / "baseline.json")
    write_baseline(path, [D1])
    moved = Diagnostic(D1.path, D1.line + 40, 8, D1.code, D1.message)
    new, grandfathered, _ = split_baselined([moved], load_baseline(path))
    assert new == []
    assert grandfathered == [moved]


def test_new_findings_are_not_absorbed(tmp_path):
    path = str(tmp_path / "baseline.json")
    write_baseline(path, [D1])
    new, grandfathered, stale = split_baselined([D1, D2], load_baseline(path))
    assert new == [D2]
    assert grandfathered == [D1]
    assert stale == []


def test_stale_entries_are_reported(tmp_path):
    path = str(tmp_path / "baseline.json")
    write_baseline(path, [D1, D2])
    _, _, stale = split_baselined([D1], load_baseline(path))
    assert [entry["fingerprint"] for entry in stale] == [D2.fingerprint]


def test_entries_carry_justifications(tmp_path):
    path = str(tmp_path / "baseline.json")
    write_baseline(path, [D1], justification="pre-dates WP103; scheduled fix")
    with open(path) as fh:
        data = json.load(fh)
    assert data["entries"][0]["justification"] == "pre-dates WP103; scheduled fix"
    assert "line" not in data["entries"][0]  # fingerprints are line-independent


def test_missing_file_is_an_empty_baseline(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == {}


def test_malformed_baseline_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(str(path))
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError):
        load_baseline(str(path))


def test_committed_repo_baseline_is_empty():
    # The tree is clean; debt must not silently accumulate in the baseline.
    import os

    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    table = load_baseline(os.path.join(repo_root, "lint-baseline.json"))
    assert table == {}
