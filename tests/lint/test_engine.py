"""Engine mechanics: module naming, pragmas, parse errors, fingerprints."""

from __future__ import annotations

from repro.lint import lint_sources
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import PARSE_ERROR_CODE, derive_module_name
from repro.lint.pragmas import module_override, scan_pragmas
from repro.lint.registry import get_rule, get_rules


class TestModuleNaming:
    def test_src_layout(self):
        assert derive_module_name("src/repro/core/broker.py") == "repro.core.broker"

    def test_package_init(self):
        assert derive_module_name("src/repro/lint/__init__.py") == "repro.lint"

    def test_last_repro_component_wins(self):
        assert (
            derive_module_name("/home/u/repro/src/repro/net/rpc.py") == "repro.net.rpc"
        )

    def test_fallback_is_the_stem(self):
        assert derive_module_name("scripts/tool.py") == "tool"

    def test_module_directive_overrides_path(self):
        lines = ["# wp-lint: module=repro.core.synthetic", "x = 1"]
        assert module_override(lines) == "repro.core.synthetic"


class TestPragmas:
    BAD_LINE = "        return self.transport.request('a', dst, 'k', p)"

    def _source(self, suffix: str) -> str:
        return (
            "# wp-lint: module=repro.core.pragma_fixture\n"
            "class C:\n"
            "    def f(self, dst, p):\n"
            f"{self.BAD_LINE}{suffix}\n"
        )

    def test_unsuppressed_fires(self):
        result = lint_sources([("x.py", self._source(""))])
        assert any(d.code == "WP101" for d in result.findings)
        assert result.suppressed == 0

    def test_same_line_pragma_suppresses(self):
        result = lint_sources([("x.py", self._source("  # wp-lint: disable=WP101"))])
        assert not any(d.code == "WP101" for d in result.findings)
        assert result.suppressed == 1

    def test_pragma_for_a_different_code_does_not_suppress(self):
        result = lint_sources([("x.py", self._source("  # wp-lint: disable=WP104"))])
        assert any(d.code == "WP101" for d in result.findings)

    def test_multi_code_pragma(self):
        pragmas = scan_pragmas(["x = 1  # wp-lint: disable=WP101, WP105"])
        assert pragmas == {1: frozenset({"WP101", "WP105"})}


class TestMultiLinePragmas:
    """A pragma anywhere on a multi-line statement covers the whole span.

    Findings anchor to a statement's *first* line, but a trailing comment
    is only syntactically possible on its *last* line — so the pragma must
    be widened across the span or it can never suppress these findings.
    """

    MULTI_LINE = (
        "# wp-lint: module=repro.core.pragma_fixture\n"
        "class C:\n"
        "    def f(self, dst, p):\n"
        "        return self.transport.request(\n"
        "            'a',\n"
        "            dst,\n"
        "            'k',\n"
        "            p,\n"
        "        ){suffix}\n"
    )

    def test_pragma_on_the_closing_line_suppresses(self):
        source = self.MULTI_LINE.format(suffix="  # wp-lint: disable=WP101")
        result = lint_sources([("x.py", source)])
        assert not any(d.code == "WP101" for d in result.findings)
        assert result.suppressed == 1

    def test_pragma_on_the_opening_line_still_suppresses(self):
        source = self.MULTI_LINE.replace(
            "self.transport.request(",
            "self.transport.request(  # wp-lint: disable=WP101",
        ).format(suffix="")
        result = lint_sources([("x.py", source)])
        assert not any(d.code == "WP101" for d in result.findings)
        assert result.suppressed == 1

    def test_without_a_pragma_the_multi_line_call_fires(self):
        result = lint_sources([("x.py", self.MULTI_LINE.format(suffix=""))])
        assert any(d.code == "WP101" for d in result.findings)

    def test_compound_statement_header_spans_only_the_header(self):
        # A pragma on the last line of an ``if`` body line must NOT be
        # widened to the whole if-statement: only the multi-line *test*
        # expression shares a span with the header.
        source = (
            "# wp-lint: module=repro.core.pragma_fixture\n"
            "class C:\n"
            "    def f(self, dst, p, flag):\n"
            "        if flag:\n"
            "            return self.transport.request('a', dst, 'k', p)\n"
        )
        result = lint_sources([("x.py", source)])
        assert any(d.code == "WP101" for d in result.findings)


class TestParseErrors:
    def test_syntax_error_becomes_wp100(self):
        result = lint_sources([("broken.py", "def f(:\n")])
        assert len(result.findings) == 1
        diag = result.findings[0]
        assert diag.code == PARSE_ERROR_CODE
        assert "does not parse" in diag.message

    def test_other_files_still_checked(self):
        result = lint_sources(
            [
                ("broken.py", "def f(:\n"),
                (
                    "ok.py",
                    "# wp-lint: module=repro.core.ok\nx = pow(2, 3, 5)\n",
                ),
            ]
        )
        codes = {d.code for d in result.findings}
        assert codes == {PARSE_ERROR_CODE, "WP103"}


class TestDiagnostics:
    def test_fingerprint_ignores_line_numbers(self):
        a = Diagnostic("p.py", 10, 0, "WP101", "msg")
        b = Diagnostic("p.py", 99, 4, "WP101", "msg")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_depends_on_code_path_message(self):
        base = Diagnostic("p.py", 1, 0, "WP101", "msg")
        assert base.fingerprint != Diagnostic("q.py", 1, 0, "WP101", "msg").fingerprint
        assert base.fingerprint != Diagnostic("p.py", 1, 0, "WP102", "msg").fingerprint
        assert base.fingerprint != Diagnostic("p.py", 1, 0, "WP101", "other").fingerprint

    def test_text_format(self):
        diag = Diagnostic("p.py", 3, 7, "WP104", "bare except")
        assert diag.format_text() == "p.py:3:7: WP104 bare except"


class TestRegistry:
    def test_all_fourteen_domain_rules_registered(self):
        codes = [rule.code for rule in get_rules()]
        assert codes == [
            "WP101", "WP102", "WP103", "WP104", "WP105", "WP106", "WP107", "WP108",
            "WP109", "WP110", "WP111", "WP112", "WP113", "WP114",
        ]

    def test_every_rule_has_rationale_and_scope(self):
        for rule in get_rules():
            assert rule.rationale
            assert rule.scope in ("file", "program")
        assert get_rule("WP105").scope == "program"
        for code in ("WP110", "WP111", "WP112", "WP113"):
            assert get_rule(code).scope == "program"
