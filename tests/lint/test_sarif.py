"""SARIF output: structural schema checks for code-scanning upload."""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import get_rules
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif


def _diag(**overrides):
    base = dict(
        path="src/repro/core/peer.py",
        line=12,
        col=4,
        code="WP110",
        message="identity-linkable value reaches an anonymous channel",
    )
    base.update(overrides)
    return Diagnostic(**base)


class TestLogDocument:
    def test_top_level_shape(self):
        log = to_sarif([_diag()])
        assert log["version"] == SARIF_VERSION
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "wp-lint"

    def test_rule_descriptors_cover_every_emittable_code(self):
        log = to_sarif([])
        ids = [rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]]
        expected = ["WP100"] + [rule.code for rule in get_rules()]
        assert ids == expected
        for rule in log["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]

    def test_every_result_rule_id_resolves_to_a_descriptor(self):
        findings = [_diag(), _diag(code="WP100", message="file does not parse: x")]
        log = to_sarif(findings)
        ids = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
        assert all(r["ruleId"] in ids for r in log["runs"][0]["results"])


class TestResults:
    def test_result_shape(self):
        result = to_sarif([_diag()])["runs"][0]["results"][0]
        assert result["ruleId"] == "WP110"
        assert result["level"] == "error"
        assert result["message"]["text"].startswith("identity-linkable")
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/peer.py"
        assert location["region"] == {"startLine": 12, "startColumn": 5}

    def test_uri_is_forward_slashed_and_relative(self):
        result = to_sarif([_diag(path="src\\repro\\x.py")])["runs"][0]["results"][0]
        uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert "\\" not in uri
        assert not uri.startswith("/")

    def test_partial_fingerprint_matches_the_baseline_fingerprint(self):
        diag = _diag()
        result = to_sarif([diag])["runs"][0]["results"][0]
        assert result["partialFingerprints"] == {"wpLint/v1": diag.fingerprint}

    def test_line_zero_is_clamped_to_one(self):
        result = to_sarif([_diag(line=0)])["runs"][0]["results"][0]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
