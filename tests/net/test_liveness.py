"""Liveness primitives: detector arithmetic, leases, breakers, RPC wiring."""

import random

import pytest

from repro.core.clock import Clock
from repro.net.liveness import (
    ALIVE,
    CLOSED,
    DEAD,
    HALF_OPEN,
    LN10,
    OPEN,
    SUSPECT,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    LeaseTable,
    LivenessConfig,
    PhiAccrualDetector,
)
from repro.net.node import Node
from repro.net.rpc import CircuitOpen, RetryPolicy, RpcClient
from repro.net.transport import NodeOffline, Transport


CFG = LivenessConfig(heartbeat_interval=1.0, phi_threshold=4.0, lease_duration=3.0)


class TestLivenessConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LivenessConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            LivenessConfig(phi_threshold=0.0)
        with pytest.raises(ValueError):
            LivenessConfig(window=0)
        with pytest.raises(ValueError):
            LivenessConfig(lease_duration=0.0)
        with pytest.raises(ValueError):
            LivenessConfig(suspect_fraction=1.0)
        with pytest.raises(ValueError):
            LivenessConfig(mean_ceiling=0.5)

    def test_detection_window_formula(self):
        assert CFG.detection_window() == pytest.approx(4.0 * LN10 * 1.0 * 2.0)


class TestPhiAccrualDetector:
    def test_phi_grows_with_silence_and_resets_on_arrival(self):
        det = PhiAccrualDetector(CFG)
        det.expect("s0", 0.0)
        for t in (1.0, 2.0, 3.0):
            det.observe("s0", t)
        assert det.phi("s0", 3.0) == 0.0
        early = det.phi("s0", 4.0)
        late = det.phi("s0", 8.0)
        assert 0.0 < early < late
        det.observe("s0", 9.0)
        assert det.phi("s0", 9.0) == 0.0

    def test_state_quantization(self):
        det = PhiAccrualDetector(CFG)
        det.expect("s0", 0.0)
        det.observe("s0", 1.0)
        # mean = interval = 1.0; phi = elapsed / ln10.
        assert det.state("s0", 1.5) == ALIVE
        suspect_at = 1.0 + 2.0 * LN10 + 0.01  # phi crosses threshold/2
        assert det.state("s0", suspect_at) == SUSPECT
        dead_at = 1.0 + 4.0 * LN10 + 0.01
        assert det.state("s0", dead_at) == DEAD

    def test_mean_is_floored_and_capped(self):
        det = PhiAccrualDetector(CFG)
        det.expect("s0", 0.0)
        # Tiny gaps cannot drive the mean below the configured interval
        # (which would make the detector hair-triggered)...
        for i in range(1, 6):
            det.observe("s0", i * 0.01)
        assert det.mean_interval("s0") == CFG.heartbeat_interval
        # ...and huge gaps cannot inflate it past interval * ceiling (which
        # would break the detection_window guarantee).
        det2 = PhiAccrualDetector(CFG)
        det2.expect("s1", 0.0)
        for i in range(1, 6):
            det2.observe("s1", i * 50.0)
        assert det2.mean_interval("s1") == CFG.heartbeat_interval * CFG.mean_ceiling

    def test_detection_window_is_a_hard_bound(self):
        det = PhiAccrualDetector(CFG)
        det.expect("s0", 0.0)
        for i in range(1, 6):
            det.observe("s0", i * 100.0)  # pathological history
        last = det.last_seen("s0")
        assert det.state("s0", last + CFG.detection_window() + 1e-9) == DEAD

    def test_snapshot_and_merge_freshest_wins(self):
        a = PhiAccrualDetector(CFG)
        b = PhiAccrualDetector(CFG)
        a.observe("s0", 5.0)
        a.observe("s1", 2.0)
        b.observe("s1", 7.0)
        a.merge(b.snapshot())
        assert a.snapshot() == {"s0": 5.0, "s1": 7.0}
        b.merge(a.snapshot())  # older s1 entry must not regress b's view
        assert b.last_seen("s1") == 7.0
        assert b.last_seen("s0") == 5.0

    def test_reset_clears_history(self):
        det = PhiAccrualDetector(CFG)
        det.expect("s0", 0.0)
        for i in range(1, 4):
            det.observe("s0", float(i))
        det.reset("s0", 10.0)
        assert det.phi("s0", 10.0) == 0.0
        assert det.mean_interval("s0") == CFG.heartbeat_interval

    def test_monitored_is_sorted(self):
        det = PhiAccrualDetector(CFG)
        for name in ("s2", "s0", "s1"):
            det.expect(name, 0.0)
        assert det.monitored() == ["s0", "s1", "s2"]


class TestLeaseTable:
    def test_renew_and_expiry(self):
        leases = LeaseTable(duration=3.0)
        assert leases.expired("s0", 0.0)  # never granted = lapsed
        leases.renew("s0", 1.0)
        assert not leases.expired("s0", 3.9)
        assert leases.expired("s0", 4.0)

    def test_renewal_never_shrinks_the_lease(self):
        leases = LeaseTable(duration=3.0)
        leases.renew("s0", 10.0)
        leases.renew("s0", 5.0)  # stale (reordered) renewal
        assert leases.expires_at("s0") == 13.0

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            LeaseTable(duration=0.0)


class TestCircuitBreaker:
    def make(self, **kw):
        cfg = BreakerConfig(**{"failure_threshold": 3, "reset_timeout": 2.0, "probe_jitter": 0.0, **kw})
        return CircuitBreaker(cfg, random.Random(7))

    def test_trips_after_consecutive_failures_only(self):
        brk = self.make()
        brk.record_failure(0.0)
        brk.record_failure(0.0)
        brk.record_success(0.0)  # resets the consecutive count
        brk.record_failure(0.0)
        brk.record_failure(0.0)
        assert brk.state == CLOSED
        brk.record_failure(0.0)
        assert brk.state == OPEN
        assert brk.stats.opens == 1

    def test_open_short_circuits_until_probe_time(self):
        brk = self.make()
        for _ in range(3):
            brk.record_failure(0.0)
        assert not brk.allow(1.0)
        assert brk.stats.short_circuits == 1
        assert brk.allow(2.0)  # probe admitted at retry_at
        assert brk.state == HALF_OPEN
        assert not brk.allow(2.0)  # only one probe per cycle

    def test_half_open_success_recloses(self):
        brk = self.make()
        for _ in range(3):
            brk.record_failure(0.0)
        assert brk.allow(2.0)
        brk.record_success(2.0)
        assert brk.state == CLOSED
        assert brk.allow(2.0)

    def test_half_open_failure_reopens_with_fresh_schedule(self):
        brk = self.make()
        for _ in range(3):
            brk.record_failure(0.0)
        assert brk.allow(2.0)
        brk.record_failure(2.5)
        assert brk.state == OPEN
        assert brk.retry_at == pytest.approx(4.5)
        assert not brk.allow(4.0)

    def test_probe_jitter_is_seeded_and_bounded(self):
        cfg = BreakerConfig(failure_threshold=1, reset_timeout=2.0, probe_jitter=0.5)
        one = CircuitBreaker(cfg, random.Random(42))
        two = CircuitBreaker(cfg, random.Random(42))
        one.record_failure(0.0)
        two.record_failure(0.0)
        assert one.retry_at == two.retry_at  # bit-identical per seed
        assert 2.0 <= one.retry_at <= 3.0


class TestBreakerBoard:
    def test_lazy_per_destination_breakers(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), seed=1)
        assert board.preflight("a", 0.0)
        board.on_failure("a", 0.0)
        assert not board.preflight("a", 0.0)
        assert board.preflight("b", 0.0)  # unrelated destination unaffected
        assert board.open_destinations() == ["a"]
        assert board.states() == {"a": OPEN, "b": CLOSED}


def breaker_rig(failure_threshold=2, reset_timeout=2.0):
    """Transport + clock + echo node + breaker-guarded client node."""
    transport = Transport()
    clock = Clock()
    transport.clock = clock
    server = Node(transport, "server")
    server.on("echo", lambda src, payload: {"ok": True, "payload": payload})
    caller = Node(transport, "caller")
    board = BreakerBoard(
        BreakerConfig(failure_threshold=failure_threshold, reset_timeout=reset_timeout, probe_jitter=0.0),
        seed=3,
    )
    rpc = RpcClient(node=caller, policy=RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.0), breakers=board)
    return transport, clock, server, rpc, board


class TestRpcBreakerIntegration:
    def test_tripped_destination_short_circuits_without_retry_budget(self):
        transport, clock, server, rpc, board = breaker_rig()
        server.go_offline()
        for _ in range(2):
            with pytest.raises(NodeOffline):
                rpc.call("server", "echo", 1, deadline=30.0)
        before_calls = rpc.stats.calls
        before_retries = rpc.stats.retries
        before_backoff = rpc.stats.backoff_accrued
        before_latency = transport.virtual_latency_accrued
        with pytest.raises(CircuitOpen):
            rpc.call("server", "echo", 2, deadline=30.0)
        # Short-circuit consumed nothing: no attempt, no retry, no backoff.
        assert rpc.stats.calls == before_calls
        assert rpc.stats.retries == before_retries
        assert rpc.stats.backoff_accrued == before_backoff
        assert transport.virtual_latency_accrued == before_latency
        assert rpc.stats.short_circuits == 1

    def test_half_open_probe_recloses_after_recovery(self):
        transport, clock, server, rpc, board = breaker_rig()
        server.go_offline()
        for _ in range(2):
            with pytest.raises(NodeOffline):
                rpc.call("server", "echo", 1, deadline=30.0)
        assert board.states()["server"] == OPEN
        server.go_online()
        with pytest.raises(CircuitOpen):
            rpc.call("server", "echo", 2, deadline=30.0)  # still inside reset window
        clock.advance(2.0)
        result = rpc.call("server", "echo", 3, deadline=30.0)  # the half-open probe
        assert result == {"ok": True, "payload": 3}
        assert board.states()["server"] == CLOSED
        assert board.breaker("server").stats.probes == 1

    def test_half_open_probe_failure_reopens(self):
        transport, clock, server, rpc, board = breaker_rig()
        server.go_offline()
        for _ in range(2):
            with pytest.raises(NodeOffline):
                rpc.call("server", "echo", 1, deadline=30.0)
        clock.advance(2.0)
        with pytest.raises(NodeOffline):
            rpc.call("server", "echo", 2, deadline=30.0)  # probe fails
        assert board.states()["server"] == OPEN
        with pytest.raises(CircuitOpen):
            rpc.call("server", "echo", 3, deadline=30.0)
