"""Transport tests: delivery, failure modes, traffic accounting."""

import pytest

from repro.core.clock import Clock
from repro.net.node import Node
from repro.net.transport import (
    FaultPlan,
    LinkPartitioned,
    MessageDropped,
    NetworkError,
    NodeOffline,
    Partition,
    ReplyLost,
    Transport,
    UnknownNode,
)


def make_echo(transport, address):
    node = Node(transport, address)
    node.on("echo", lambda src, payload: {"from": src, "payload": payload})
    return node


class TestDelivery:
    def test_request_response(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        response = t.request("a", "b", "echo", 42)
        assert response == {"from": "a", "payload": 42}

    def test_unknown_destination(self):
        t = Transport()
        make_echo(t, "a")
        with pytest.raises(UnknownNode):
            t.request("a", "ghost", "echo", None)

    def test_offline_destination(self):
        t = Transport()
        make_echo(t, "a")
        b = make_echo(t, "b")
        b.go_offline()
        with pytest.raises(NodeOffline):
            t.request("a", "b", "echo", None)
        b.go_online()
        assert t.request("a", "b", "echo", 1)["payload"] == 1

    def test_missing_handler(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        with pytest.raises(NetworkError):
            t.request("a", "b", "nope", None)

    def test_duplicate_address_rejected(self):
        t = Transport()
        make_echo(t, "a")
        with pytest.raises(ValueError):
            make_echo(t, "a")

    def test_duplicate_handler_rejected(self):
        t = Transport()
        node = make_echo(t, "a")
        with pytest.raises(ValueError):
            node.on("echo", lambda s, p: None)

    def test_handler_exception_propagates(self):
        t = Transport()
        node = Node(t, "x")
        node.on("boom", lambda s, p: (_ for _ in ()).throw(RuntimeError("bang")))
        make_echo(t, "caller")
        with pytest.raises(RuntimeError):
            t.request("caller", "x", "boom", None)


class TestAccounting:
    def test_message_counts(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", "hi")
        assert t.counter("a").messages_sent == 1
        assert t.counter("a").messages_received == 1  # the response
        assert t.counter("b").messages_sent == 1
        assert t.counter("b").messages_received == 1
        assert t.total_messages == 2  # request + response

    def test_byte_counts_positive(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", b"x" * 100)
        assert t.counter("a").bytes_sent >= 100

    def test_reset(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", 1)
        t.reset_counters()
        assert t.total_messages == 0
        assert t.counter("a").messages_sent == 0

    def test_latency_accrual(self):
        t = Transport(per_hop_latency=0.05)
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", 1)
        assert t.virtual_latency_accrued == pytest.approx(0.1)

    def test_is_online(self):
        t = Transport()
        node = make_echo(t, "a")
        assert t.is_online("a")
        node.go_offline()
        assert not t.is_online("a")
        assert not t.is_online("missing")

    def test_addresses_listing(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        assert t.addresses() == ["a", "b"]
        t.unregister("a")
        assert t.addresses() == ["b"]

    def test_reset_clears_dropped_counter(self):
        # Regression: reset_counters used to leave messages_dropped behind.
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.install_faults(FaultPlan(seed=1, request_loss=1.0))
        with pytest.raises(MessageDropped):
            t.request("a", "b", "echo", 1)
        assert t.messages_dropped == 1
        t.reset_counters()
        assert t.messages_dropped == 0


class TestFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(request_loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_jitter=-0.1)

    def test_request_drop_accounts_sender_only(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.install_faults(FaultPlan(seed=1, request_loss=1.0))
        with pytest.raises(MessageDropped):
            t.request("a", "b", "echo", 1)
        assert t.counter("a").messages_sent == 1
        assert t.counter("b").messages_received == 0
        assert t.faults.stats.requests_dropped == 1

    def test_reply_drop_runs_handler_and_accounts_reply_send(self):
        t = Transport()
        make_echo(t, "a")
        b = Node(t, "b")
        served = []
        b.on("echo", lambda src, p: served.append(p) or {"ok": True})
        t.install_faults(FaultPlan(seed=1, response_loss=1.0))
        with pytest.raises(ReplyLost):
            t.request("a", "b", "echo", 7)
        assert served == [7]  # the handler DID run
        assert t.counter("b").messages_sent == 1  # reply left b...
        assert t.counter("a").messages_received == 0  # ...but never reached a
        assert t.faults.stats.replies_dropped == 1

    def test_crash_after_handler_emits_no_reply_bytes(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.install_faults(FaultPlan(seed=1, crash_after_handler=1.0))
        with pytest.raises(ReplyLost):
            t.request("a", "b", "echo", 1)
        # Request accounted both sides; the crashed node never sent a reply.
        assert t.counter("b").messages_sent == 0
        assert t.faults.stats.crash_after_handler == 1

    def test_duplicate_delivery_runs_handler_twice(self):
        t = Transport()
        make_echo(t, "a")
        b = Node(t, "b")
        calls = []
        b.on("echo", lambda src, p: calls.append(p) or {"ok": True})
        t.install_faults(FaultPlan(seed=1, duplicate_rate=1.0))
        t.request("a", "b", "echo", 3)
        assert calls == [3, 3]
        assert t.faults.stats.duplicates_delivered == 1

    def test_jitter_accrues_virtual_latency(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.install_faults(FaultPlan(seed=5, latency_jitter=0.2))
        t.request("a", "b", "echo", 1)
        assert 0.0 < t.virtual_latency_accrued < 0.4
        assert t.faults.stats.jitter_accrued == pytest.approx(t.virtual_latency_accrued)

    def test_partition_window_against_virtual_clock(self):
        t = Transport()
        t.clock = Clock()
        make_echo(t, "a")
        make_echo(t, "broker")
        plan = FaultPlan(seed=1).partition("broker", "*", start=10.0, end=20.0)
        t.install_faults(plan)
        assert t.request("a", "broker", "echo", 1)["payload"] == 1  # before the window
        t.clock.advance(15.0)
        with pytest.raises(LinkPartitioned):
            t.request("a", "broker", "echo", 1)
        with pytest.raises(LinkPartitioned):  # symmetric cut
            t.request("broker", "a", "echo", 1)
        t.clock.advance(10.0)  # past the window
        assert t.request("a", "broker", "echo", 1)["payload"] == 1
        assert plan.stats.partition_blocks == 2

    def test_partition_wildcard_matching(self):
        p = Partition(a="x", b="*")
        assert p.blocks("x", "anyone", now=0.0)
        assert p.blocks("anyone", "x", now=0.0)
        assert not p.blocks("u", "v", now=0.0)

    def test_scripted_drops_consumed_before_random(self):
        plan = FaultPlan(seed=1)  # all random rates zero
        plan.scripted_reply_drops = 2
        assert plan.take_reply_drop()
        assert plan.take_reply_drop()
        assert not plan.take_reply_drop()

    def test_identical_seeds_replay_identically(self):
        def run(seed):
            t = Transport()
            make_echo(t, "a")
            make_echo(t, "b")
            t.install_faults(FaultPlan(seed=seed, request_loss=0.3, response_loss=0.2))
            outcomes = []
            for i in range(50):
                try:
                    t.request("a", "b", "echo", i)
                    outcomes.append("ok")
                except MessageDropped:
                    outcomes.append("req")
                except ReplyLost:
                    outcomes.append("rep")
            return outcomes, t.faults.stats.as_dict()

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_set_loss_legacy_wrapper(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.set_loss(1.0 - 1e-9, seed=1)
        with pytest.raises(MessageDropped):
            t.request("a", "b", "echo", 1)
        t.set_loss(0.0)
        assert t.request("a", "b", "echo", 1)["payload"] == 1
