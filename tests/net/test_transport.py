"""Transport tests: delivery, failure modes, traffic accounting."""

import pytest

from repro.net.node import Node
from repro.net.transport import NetworkError, NodeOffline, Transport, UnknownNode


def make_echo(transport, address):
    node = Node(transport, address)
    node.on("echo", lambda src, payload: {"from": src, "payload": payload})
    return node


class TestDelivery:
    def test_request_response(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        response = t.request("a", "b", "echo", 42)
        assert response == {"from": "a", "payload": 42}

    def test_unknown_destination(self):
        t = Transport()
        make_echo(t, "a")
        with pytest.raises(UnknownNode):
            t.request("a", "ghost", "echo", None)

    def test_offline_destination(self):
        t = Transport()
        make_echo(t, "a")
        b = make_echo(t, "b")
        b.go_offline()
        with pytest.raises(NodeOffline):
            t.request("a", "b", "echo", None)
        b.go_online()
        assert t.request("a", "b", "echo", 1)["payload"] == 1

    def test_missing_handler(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        with pytest.raises(NetworkError):
            t.request("a", "b", "nope", None)

    def test_duplicate_address_rejected(self):
        t = Transport()
        make_echo(t, "a")
        with pytest.raises(ValueError):
            make_echo(t, "a")

    def test_duplicate_handler_rejected(self):
        t = Transport()
        node = make_echo(t, "a")
        with pytest.raises(ValueError):
            node.on("echo", lambda s, p: None)

    def test_handler_exception_propagates(self):
        t = Transport()
        node = Node(t, "x")
        node.on("boom", lambda s, p: (_ for _ in ()).throw(RuntimeError("bang")))
        make_echo(t, "caller")
        with pytest.raises(RuntimeError):
            t.request("caller", "x", "boom", None)


class TestAccounting:
    def test_message_counts(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", "hi")
        assert t.counter("a").messages_sent == 1
        assert t.counter("a").messages_received == 1  # the response
        assert t.counter("b").messages_sent == 1
        assert t.counter("b").messages_received == 1
        assert t.total_messages == 2  # request + response

    def test_byte_counts_positive(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", b"x" * 100)
        assert t.counter("a").bytes_sent >= 100

    def test_reset(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", 1)
        t.reset_counters()
        assert t.total_messages == 0
        assert t.counter("a").messages_sent == 0

    def test_latency_accrual(self):
        t = Transport(per_hop_latency=0.05)
        make_echo(t, "a")
        make_echo(t, "b")
        t.request("a", "b", "echo", 1)
        assert t.virtual_latency_accrued == pytest.approx(0.1)

    def test_is_online(self):
        t = Transport()
        node = make_echo(t, "a")
        assert t.is_online("a")
        node.go_offline()
        assert not t.is_online("a")
        assert not t.is_online("missing")

    def test_addresses_listing(self):
        t = Transport()
        make_echo(t, "a")
        make_echo(t, "b")
        assert t.addresses() == ["a", "b"]
        t.unregister("a")
        assert t.addresses() == ["b"]
