"""RPC layer tests: retry/backoff, idempotency envelopes, replay dedupe."""

import pytest

from repro.net.node import Node
from repro.net.rpc import (
    DEFAULT_POLICY,
    RESILIENT_POLICY,
    ReplayCache,
    RetriesExhausted,
    RetryPolicy,
    RpcClient,
    RpcTimeout,
    new_idempotency_key,
    unwrap_idempotent,
    wrap_idempotent,
)
from repro.net.transport import (
    FaultPlan,
    MessageDropped,
    NodeOffline,
    ReplyLost,
    Transport,
)


def make_counter_node(transport, address):
    """A node whose handler counts its own executions."""
    node = Node(transport, address)
    node.calls = []
    node.on("op", lambda src, payload: node.calls.append(payload) or {"ok": True, "n": len(node.calls)})
    return node


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_backoff_is_bounded_and_grows(self):
        import random

        policy = RetryPolicy(max_attempts=8, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff(n, rng) for n in range(1, 8)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert all(d <= 0.5 for d in delays)
        assert delays[-1] == pytest.approx(0.5)  # capped

    def test_backoff_jitter_stretches_within_bounds(self):
        import random

        policy = RetryPolicy(max_attempts=2, base_delay=1.0, jitter=0.5)
        rng = random.Random(7)
        for _ in range(20):
            assert 1.0 <= policy.backoff(1, rng) <= 1.5


class TestIdempotencyEnvelope:
    def test_round_trip(self):
        key = new_idempotency_key()
        wire = wrap_idempotent({"x": 1}, key)
        got_key, body = unwrap_idempotent(wire)
        assert got_key == key
        assert body == {"x": 1}

    def test_plain_payload_passes_through(self):
        assert unwrap_idempotent({"x": 1}) == (None, {"x": 1})
        assert unwrap_idempotent(b"raw") == (None, b"raw")

    def test_keys_are_unique(self):
        assert len({new_idempotency_key() for _ in range(100)}) == 100


class TestReplayCache:
    def test_store_and_hit(self):
        cache = ReplayCache(capacity=4)
        hit, _ = cache.lookup(("op", "k1"))
        assert not hit
        cache.store(("op", "k1"), {"ok": True})
        hit, value = cache.lookup(("op", "k1"))
        assert hit and value == {"ok": True}
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_is_bounded(self):
        cache = ReplayCache(capacity=3)
        for i in range(5):
            cache.store(("op", f"k{i}"), i)
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.lookup(("op", "k0"))[0] is False  # oldest gone
        assert cache.lookup(("op", "k4"))[0] is True

    def test_lookup_refreshes_recency(self):
        cache = ReplayCache(capacity=2)
        cache.store(("op", "a"), 1)
        cache.store(("op", "b"), 2)
        cache.lookup(("op", "a"))  # a is now most recent
        cache.store(("op", "c"), 3)  # evicts b
        assert cache.lookup(("op", "a"))[0] is True
        assert cache.lookup(("op", "b"))[0] is False


class TestRpcClient:
    def test_binding_validation(self):
        t = Transport()
        node = make_counter_node(t, "a")
        with pytest.raises(ValueError):
            RpcClient()
        with pytest.raises(ValueError):
            RpcClient(node=node, transport=t)

    def test_recovers_from_scripted_reply_loss_without_rerun(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        server = make_counter_node(t, "server")
        plan = FaultPlan(seed=1)
        plan.scripted_reply_drops = 1
        t.install_faults(plan)
        result = caller.rpc.call(
            "server",
            "op",
            {"v": 1},
            idempotency_key=new_idempotency_key(),
            policy=RESILIENT_POLICY,
        )
        assert result == {"ok": True, "n": 1}
        # The first attempt ran the handler; the retry was a cache hit.
        assert len(server.calls) == 1
        assert server.replays_served == 1
        assert caller.rpc.stats.recovered == 1

    def test_recovers_from_scripted_request_loss(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        server = make_counter_node(t, "server")
        plan = FaultPlan(seed=1)
        plan.scripted_request_drops = 2
        t.install_faults(plan)
        result = caller.rpc.call("server", "op", {"v": 1}, policy=RESILIENT_POLICY)
        assert result["ok"]
        assert len(server.calls) == 1  # dropped requests never reached it
        assert caller.rpc.stats.retries == 2

    def test_single_attempt_raises_raw_transport_error(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        plan = FaultPlan(seed=1)
        plan.scripted_request_drops = 1
        t.install_faults(plan)
        with pytest.raises(MessageDropped):
            caller.rpc.call("server", "op", {}, policy=DEFAULT_POLICY)

    def test_exhaustion_reports_attempts_and_cause(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        t.install_faults(FaultPlan(seed=1, request_loss=1.0))
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        with pytest.raises(RetriesExhausted) as exc_info:
            caller.rpc.call("server", "op", {}, policy=policy)
        assert exc_info.value.attempts == 3
        assert isinstance(exc_info.value.last_error, MessageDropped)
        assert caller.rpc.stats.exhausted == 1

    def test_idempotency_envelope_only_when_retrying(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        server = Node(t, "server")
        seen = []
        server.on("op", lambda src, payload: seen.append(payload) or {"ok": True})
        caller.rpc.call("server", "op", {"v": 1}, idempotency_key="k")
        assert seen[-1] == {"v": 1}  # default policy: raw wire format
        caller.rpc.call("server", "op", {"v": 2}, idempotency_key="k2", policy=RESILIENT_POLICY)
        assert seen[-1] == {"v": 2}  # Node.handle unwrapped the envelope
        assert ("op", "k2") in server.replay_cache._entries

    def test_node_offline_not_retried_by_default(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        server = make_counter_node(t, "server")
        server.go_offline()
        with pytest.raises(NodeOffline):
            caller.rpc.call("server", "op", {}, policy=RESILIENT_POLICY)
        assert caller.rpc.stats.retries == 0

    def test_retry_offline_opts_in(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        server = make_counter_node(t, "server")
        server.go_offline()
        policy = RetryPolicy(max_attempts=2, base_delay=0.01, retry_offline=True)
        with pytest.raises(RetriesExhausted):
            caller.rpc.call("server", "op", {}, policy=policy)

    def test_timeout_budget(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        t.install_faults(FaultPlan(seed=1, request_loss=1.0))
        policy = RetryPolicy(max_attempts=10, base_delay=1.0, jitter=0.0)
        with pytest.raises(RpcTimeout) as exc_info:
            caller.rpc.call("server", "op", {}, policy=policy, timeout=2.5)
        assert caller.rpc.stats.timeouts == 1
        assert exc_info.value.attempts >= 1

    def test_backoff_accrues_virtual_latency_not_clock(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        plan = FaultPlan(seed=1)
        plan.scripted_request_drops = 1
        t.install_faults(plan)
        caller.rpc.call("server", "op", {}, policy=RESILIENT_POLICY)
        assert t.virtual_latency_accrued > 0.0
        assert t.virtual_latency_accrued == pytest.approx(caller.rpc.stats.backoff_accrued)

    def test_transport_bound_client_uses_explicit_src(self):
        t = Transport()
        server = Node(t, "server")
        server.on("op", lambda src, payload: {"seen_src": src})
        rpc = RpcClient(transport=t)
        assert rpc.call("server", "op", {}, src="overlay-7") == {"seen_src": "overlay-7"}

    def test_backoff_schedule_deterministic_per_endpoint(self):
        def accrued(run):
            t = Transport()
            caller = make_counter_node(t, "caller")
            make_counter_node(t, "server")
            t.install_faults(FaultPlan(seed=9, request_loss=1.0))
            with pytest.raises(RetriesExhausted):
                caller.rpc.call("server", "op", {}, policy=RetryPolicy(max_attempts=4))
            return caller.rpc.stats.backoff_accrued

        assert accrued(1) == accrued(2)

    def test_duplicate_delivery_deduped_by_replay_cache(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        server = make_counter_node(t, "server")
        t.install_faults(FaultPlan(seed=1, duplicate_rate=1.0))
        caller.rpc.call(
            "server", "op", {"v": 1}, idempotency_key="dup-k", policy=RESILIENT_POLICY
        )
        # The network delivered the request twice; the handler ran once.
        assert len(server.calls) == 1
        assert server.replays_served == 1


class TestDeadlinePropagation:
    """PR 9: per-call deadlines charged in virtual time through retries."""

    def test_deadline_none_is_unbounded(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        assert caller.rpc.call("server", "op", {})["ok"]

    def test_fault_jitter_counts_against_deadline(self):
        # random.Random(0).random() = 0.8444..., so with latency_jitter=10.0
        # the very first hop accrues 8.44s of virtual latency — well past a
        # 1.0s deadline.  The reply still arrives (nothing is dropped), but
        # it arrives *late*: the call must raise rather than silently
        # succeed after its budget.
        t = Transport()
        caller = make_counter_node(t, "caller")
        server = make_counter_node(t, "server")
        t.install_faults(FaultPlan(seed=0, latency_jitter=10.0))
        with pytest.raises(RpcTimeout) as exc_info:
            caller.rpc.call("server", "op", {"v": 1}, deadline=1.0)
        assert "late" in str(exc_info.value)
        assert len(server.calls) == 1  # the handler did run; only the caller gave up
        assert caller.rpc.stats.deadline_exceeded == 1

    def test_generous_deadline_tolerates_jitter(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        t.install_faults(FaultPlan(seed=0, latency_jitter=10.0))
        assert caller.rpc.call("server", "op", {}, deadline=60.0)["ok"]
        assert caller.rpc.stats.deadline_exceeded == 0

    def test_backoff_clamped_to_remaining_budget(self):
        # One scripted request drop forces one retry.  The policy wants a
        # 1.0s backoff but only 0.8s of budget remains, so the delay is
        # clamped and the retry still happens inside the deadline.
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        plan = FaultPlan(seed=1)
        plan.scripted_request_drops = 1
        t.install_faults(plan)
        policy = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0)
        assert caller.rpc.call("server", "op", {}, policy=policy, deadline=0.8)["ok"]
        assert t.virtual_latency_accrued <= 0.8
        assert caller.rpc.stats.retries == 1

    def test_exhausted_budget_stops_retrying(self):
        t = Transport()
        caller = make_counter_node(t, "caller")
        make_counter_node(t, "server")
        t.install_faults(FaultPlan(seed=1, request_loss=1.0))
        policy = RetryPolicy(max_attempts=10, base_delay=1.0, jitter=0.0)
        with pytest.raises(RpcTimeout) as exc_info:
            caller.rpc.call("server", "op", {}, policy=policy, deadline=1.5)
        assert "budget" in str(exc_info.value)
        # Budget admits the first backoff (1.0s) but not the second.
        assert exc_info.value.attempts <= 3
        assert caller.rpc.stats.deadline_exceeded == 1
