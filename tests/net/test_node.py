"""Direct Node base-class tests."""

import pytest

from repro.net.node import Node
from repro.net.transport import NetworkError, Transport


class TestNode:
    def test_registers_on_construction(self):
        transport = Transport()
        node = Node(transport, "n1")
        assert transport.node("n1") is node
        assert node.online

    def test_lifecycle_toggles(self):
        transport = Transport()
        node = Node(transport, "n1")
        node.go_offline()
        assert not node.online and not transport.is_online("n1")
        node.go_online()
        assert node.online

    def test_request_convenience(self):
        transport = Transport()
        a = Node(transport, "a")
        b = Node(transport, "b")
        b.on("double", lambda src, x: x * 2)
        assert a.request("b", "double", 21) == 42
        assert transport.counter("a").messages_sent == 1

    def test_dispatch_unknown_kind(self):
        transport = Transport()
        a = Node(transport, "a")
        with pytest.raises(NetworkError, match="no handler"):
            a.handle("nope", "x", None)

    def test_handler_receives_source(self):
        transport = Transport()
        a = Node(transport, "a")
        b = Node(transport, "b")
        b.on("who", lambda src, _p: src)
        assert a.request("b", "who", None) == "a"

    def test_self_request_allowed(self):
        # Protocol code relies on this (owner renewing its own held coin).
        transport = Transport()
        a = Node(transport, "a")
        a.on("ping", lambda src, p: ("pong", src))
        assert a.request("a", "ping", None) == ("pong", "a")
