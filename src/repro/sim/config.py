"""Simulation configurations (paper Table 1).

Two experiment families:

* **Setup A** — 1000 peers; exponential online sessions with mean µ swept
  from 15 minutes to 32 hours; exponential offline sessions with mean
  ν ∈ {1 h, 2 h, 4 h} (short / median / long downtime); policies I–III ×
  {proactive, lazy} synchronization.  The paper reports the median-downtime
  (ν = 2 h) results, as do our figure benches.
* **Setup B** — system size swept from 100 to 1000 peers at µ = ν = 2 h
  (50% availability).

Every peer generates candidate payments as an independent Poisson process
at 1 per 5 minutes with a uniformly random payee; a candidate becomes an
actual payment iff the payee is online (Section 6.1's thinning — note the
paper thins on the payee's availability only, which is why the actual
per-peer payment rate is α per 5 minutes; we follow that literally).
Renewal period: 3 days.  Run length: 10 simulated days.

Paper-scale runs are expensive in pure Python, so each preset family has a
``small`` variant that keeps every *ratio* the paper's analysis depends on
(duration/renewal-period, session lengths, payment rate) while shrinking the
peer count and horizon; benches use the small variants unless
``WHOPAY_FULL=1`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.clock import DAY, HOUR
from repro.sim.policies import POLICY_I, Policy

MINUTE = 60.0

#: Paper Table 1 µ sweep (15 minutes to 32 hours).
FULL_MU_SWEEP_HOURS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Reduced sweep used by the small presets (same span, fewer points).
SMALL_MU_SWEEP_HOURS = (0.25, 1.0, 2.0, 4.0, 8.0, 32.0)

#: Paper Table 1 Setup B size sweep.
FULL_SIZE_SWEEP = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)

#: Reduced size sweep for the small presets.
SMALL_SIZE_SWEEP = (50, 100, 150, 200, 250)


@dataclass(frozen=True)
class SimConfig:
    """One simulation run's parameters."""

    n_peers: int = 1000
    duration: float = 10 * DAY
    mean_online: float = 2 * HOUR  # µ
    mean_offline: float = 2 * HOUR  # ν
    payment_interval: float = 5 * MINUTE  # candidate Poisson mean gap
    renewal_period: float = 3 * DAY
    policy: Policy = POLICY_I
    sync_mode: str = "proactive"  # or "lazy"
    #: ``None`` = unlimited funds, the paper's implicit model (its purchase
    #: counts grow with availability, and no deposit series appears in any
    #: figure, which is only consistent with purchases never being gated).
    #: A finite balance enables the budget economy: purchases debit, deposits
    #: credit, and policy III's deposit-recycling step actually fires — used
    #: by the ablation benches.
    initial_balance: int | None = None
    coin_value: int = 1
    #: Whether a candidate payment additionally requires the *payer* to be
    #: online.  The paper's text thins candidates by payee availability only
    #: ("the actual payment events form an independent Poisson process
    #: with rate α per 5 minutes"), but its figure shapes — purchases rising
    #: across the whole sweep, downtime transfers/renewals peaking *inside*
    #: the sweep — match the payer-gated model, and an offline payer making
    #: payments is physically odd anyway.  Default True; set False for the
    #: literal-text model (the ablation suite compares both).
    require_payer_online: bool = True
    #: Peer population model.  ``"uniform"`` is the paper's simulation
    #: (identical availability, uniformly random payees) — the model whose
    #: broker load grew linearly, to the authors' surprise.  ``"powerlaw"``
    #: implements their Section 6.2 conjecture: Zipf-distributed activity
    #: weights, payee selection proportional to activity ("peers are more
    #: willing to do business with such super peers"), and availability
    #: rising with activity ("we can expect these peers to … be highly
    #: reliable").  The super-peer ablation bench measures whether the
    #: conjectured sublinear broker load materializes.
    heterogeneity: str = "uniform"
    #: Zipf exponent for the power-law activity weights.
    zipf_exponent: float = 1.0
    #: Availability ceiling reached by the most active peer under
    #: ``"powerlaw"`` (the base availability µ/(µ+ν) is the floor).
    superpeer_max_availability: float = 0.98
    #: Layer cap for the Section 7 layered-coin offline-transfer fallback
    #: ("a maximum number of layers can be imposed"); only consulted by
    #: policies that include the LAYERED_OFFLINE method.
    max_layers: int = 16
    #: Record per-peer served-work and initiated-payment counters (the load
    #: *distribution* behind Figures 4/5's averages).  Off by default — it
    #: adds two Counter updates per operation.
    track_per_peer: bool = False
    #: Per-attempt message loss probability on every link.  The event-level
    #: simulator does not replay individual retransmissions; instead the
    #: expected-attempt factor (:func:`repro.sim.costs.expected_attempts`)
    #: scales communication load, matching the fault-injecting transport's
    #: retry behaviour in expectation.
    message_loss: float = 0.0
    #: Retry budget assumed for the comm-load overhead (mirrors the RPC
    #: layer's resilient policy).
    rpc_max_attempts: int = 6
    #: Model the Section 5.1 real-time detection overhead: every binding
    #: update (issue/transfer/renewal, downtime included) costs one DHT
    #: publish, and every payment acceptance costs one DHT read (the
    #: payee's verify-before-accept).  Off by default — the paper's figures
    #: evaluate the base protocol.
    detection: bool = False
    #: Number of broker crash/restart events to model, spread evenly over the
    #: run (event i of n fires at ``duration * i / (n + 1)``).  Each restart
    #: replays the write-ahead journal accumulated since the last snapshot —
    #: the post-recovery compaction snapshot resets that backlog — and the
    #: replay's signature re-verification is charged to broker CPU load
    #: (:data:`repro.sim.costs.REPLAY_RECORD_COST` per journal record).
    #: 0 (the default) models an uninterrupted broker and leaves every load
    #: figure exactly as before.
    broker_restarts: int = 0
    #: Number of broker federation shards to model (PR 7).  With ``1`` (the
    #: default) every broker op lands on the single broker and all figures
    #: are exactly as before.  With ``M > 1`` the reference engine
    #: attributes each broker operation to the shard owning its anchor key
    #: — purchases to the buyer's account shard, coin ops to the coin's
    #: shard, syncs fan out over the shards owning the peer's coins — so
    #: fig2/fig6-style series regenerate *per shard* (``broker_shard{i}_*``
    #: columns; the fast engines keep aggregate counts only).
    broker_shards: int = 1
    #: Heartbeat period of the PR 9 lease-gated supervisor, in virtual
    #: seconds.  ``0.0`` (the default) models an unsupervised federation —
    #: no heartbeat traffic, no detection columns, every figure exactly as
    #: before.  With a positive interval each shard emits one heartbeat per
    #: period for the whole run; the beats are charged to communication
    #: load and the detection-latency bound implied by the phi threshold is
    #: reported alongside.
    heartbeat_interval: float = 0.0
    #: Phi-accrual threshold the modeled detector runs at (only consulted
    #: when ``heartbeat_interval > 0``).  The closed-form worst-case
    #: detection latency is ``phi · ln 10 · interval · mean_ceiling`` with
    #: the detector's default mean ceiling of 2 (see
    #: :meth:`repro.net.liveness.LivenessConfig.detection_window`).
    detector_phi_threshold: float = 4.0
    seed: int = 20060704  # ICDCS 2006 vintage

    def __post_init__(self) -> None:
        if self.sync_mode not in ("proactive", "lazy"):
            raise ValueError("sync_mode must be 'proactive' or 'lazy'")
        if self.heterogeneity not in ("uniform", "powerlaw"):
            raise ValueError("heterogeneity must be 'uniform' or 'powerlaw'")
        if not 0.0 < self.superpeer_max_availability < 1.0:
            raise ValueError("superpeer_max_availability must be in (0, 1)")
        if self.n_peers < 2:
            raise ValueError("need at least two peers to make payments")
        for name in ("duration", "mean_online", "mean_offline", "payment_interval", "renewal_period"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.message_loss < 1.0:
            raise ValueError("message_loss must be in [0, 1)")
        if self.rpc_max_attempts < 1:
            raise ValueError("rpc_max_attempts must be >= 1")
        if self.broker_restarts < 0:
            raise ValueError("broker_restarts must be >= 0")
        if self.broker_shards < 1:
            raise ValueError("broker_shards must be >= 1")
        if self.heartbeat_interval < 0.0:
            raise ValueError("heartbeat_interval must be >= 0 (0 disables supervision)")
        if self.detector_phi_threshold <= 0.0:
            raise ValueError("detector_phi_threshold must be positive")

    @property
    def availability(self) -> float:
        """α = µ / (µ + ν), the paper's availability indicator."""
        return self.mean_online / (self.mean_online + self.mean_offline)

    def describe(self) -> str:
        """Short human-readable label for tables."""
        return (
            f"N={self.n_peers} µ={self.mean_online / HOUR:g}h ν={self.mean_offline / HOUR:g}h "
            f"policy={self.policy.name} sync={self.sync_mode}"
        )


def expected_event_count(config: SimConfig) -> float:
    """Rough expected number of simulation events for ``config``.

    Candidate payments arrive at an aggregate rate of ``n_peers`` per
    ``payment_interval`` (exactly, in both population models — the power-law
    intervals are normalized to preserve the aggregate rate), and each peer
    toggles at rate ``2 / (µ + ν)``.  Renewals and restarts are a small
    correction and are covered by the initial-event term.  Used to size the
    calendar-queue buckets (:mod:`repro.sim.engine`) and to pick
    event-budgeted horizons for the scaling benchmark.
    """
    n = config.n_peers
    candidates = config.duration * n / config.payment_interval
    toggles = config.duration * 2.0 * n / (config.mean_online + config.mean_offline)
    return candidates + toggles + n


def setup_b_point(
    n_peers: int,
    policy: Policy = POLICY_I,
    sync_mode: str = "proactive",
    event_budget: float | None = None,
) -> SimConfig:
    """One Setup-B-shaped point (µ = ν = 2 h) at an arbitrary system size.

    At paper scale the horizon is the paper's 10 days.  Beyond paper scale a
    fixed-duration run would grow the event count linearly with ``n_peers``
    (10 days at N=10^6 is ~3×10^9 candidate events), so the scaling
    benchmark fixes an *event budget* instead: ``event_budget`` shrinks the
    horizon so the expected event count stays constant across sizes and the
    per-event cost is what varies.  The renewal period is shortened with the
    horizon (keeping the paper's duration/renewal ratio) so renewal traffic
    stays represented.
    """
    base = SimConfig(
        n_peers=n_peers,
        policy=policy,
        sync_mode=sync_mode,
        mean_online=2 * HOUR,
        mean_offline=2 * HOUR,
    )
    if event_budget is None:
        return base
    per_time = expected_event_count(base) / base.duration
    duration = max(event_budget / per_time, 10 * MINUTE)
    if duration >= base.duration:
        return base
    return replace(
        base,
        duration=duration,
        renewal_period=duration * (base.renewal_period / base.duration),
    )


def setup_a_configs(
    policy: Policy = POLICY_I,
    sync_mode: str = "proactive",
    mean_offline_hours: float = 2.0,
    small: bool = False,
) -> list[SimConfig]:
    """The Setup-A µ sweep for one (policy, sync) configuration.

    ``mean_offline_hours`` selects the short (1 h) / median (2 h) / long
    (4 h) downtime family; the paper's figures show the median one.
    """
    base = SimConfig(
        policy=policy,
        sync_mode=sync_mode,
        mean_offline=mean_offline_hours * HOUR,
    )
    if small:
        base = replace(base, n_peers=150, duration=5 * DAY, renewal_period=1.5 * DAY)
        sweep = SMALL_MU_SWEEP_HOURS
    else:
        sweep = FULL_MU_SWEEP_HOURS
    return [replace(base, mean_online=mu * HOUR) for mu in sweep]


def setup_b_configs(
    policy: Policy = POLICY_I,
    sync_mode: str = "proactive",
    small: bool = False,
) -> list[SimConfig]:
    """The Setup-B size sweep at 50% availability (µ = ν = 2 h)."""
    base = SimConfig(
        policy=policy,
        sync_mode=sync_mode,
        mean_online=2 * HOUR,
        mean_offline=2 * HOUR,
    )
    if small:
        base = replace(base, duration=5 * DAY, renewal_period=1.5 * DAY)
        sweep = SMALL_SIZE_SWEEP
    else:
        sweep = FULL_SIZE_SWEEP
    return [replace(base, n_peers=n) for n in sweep]
