"""High-throughput simulation engines (million-peer scaling).

The reference simulator (:mod:`repro.sim.simulator`) is a per-event pure
Python loop: one heap entry per candidate payment, per-object peer/coin
state, and a ``Counter`` update per operation.  That is the *specification*
of the model, but it tops out around paper scale.  This module provides two
further engines that run the same operation-level model:

* :class:`EventSampledSimulation` ("compat") — the reference simulation with
  only the scheduler replaced by a bucketed calendar queue
  (:class:`BucketQueue`).  Every random draw, every state mutation and every
  metric update happens in exactly the reference order, so its results are
  **bit-identical** to the reference engine's for every seed.  It exists to
  prove the scheduler exact and costs nothing to keep proven (the
  equivalence property test sweeps seeds across both engines).
* :class:`FastSimulation` ("fast") — struct-of-arrays state (stdlib
  :mod:`array` / ``bytearray``), batched candidate-payment sampling via the
  Poisson superposition theorem, and bucket-level vectorized thinning with
  an optional numpy accelerator.  It is *statistically* equivalent to the
  reference model (same processes, same mechanics, different but equally
  valid random-stream architecture), bit-identically reproducible per seed,
  and — by construction, see below — produces **identical results with and
  without numpy**.

Why the fast engine cannot be bit-equal to the reference
--------------------------------------------------------
The reference draws its randomness from a single stream in per-event
interleaved order and schedules one candidate-payment event per peer; coin
selection in ``_find_held`` even depends on ``set`` iteration order.  Any
batched sampler necessarily consumes randomness in a different order, so the
fast engine instead targets the *distributional* contract: per-peer Poisson
candidate processes with aggregate rate ``Λ = n / payment_interval`` are
replaced by one global Poisson stream at the same rate with the payer drawn
per event (the superposition theorem), and the global stream is sampled per
bucket as a Poisson count ``K ~ Poisson(Λ · span)`` followed by ``K`` sorted
uniforms on the bucket span (the conditional-uniformity property of the
Poisson process).  Both identities are exact, not approximations.  Coin
selection walks deterministic per-peer lists.  The equivalence gate in
``tests/sim`` checks the compat engine exactly and the fast engine against
golden figure rows within statistical tolerance.

Exact bucket-level thinning
---------------------------
A candidate payment materializes iff the payee (and, by default, the payer)
is online.  Online state changes only at session-toggle events, and every
toggle that can fire inside a bucket is either present in the bucket's entry
list when the bucket opens or is pushed by such a toggle *for the same
peer*.  The set of peers whose online state can change during a bucket is
therefore known at bucket entry ("dirty" peers).  Candidates touching no
dirty peer are thinned in one vectorized pass against the entry-time online
masks — exactly, not approximately — while candidates touching a dirty peer
are evaluated scalar at fire time, interleaved with the queue events in
timestamp order.

numpy-independence
------------------
The accelerated path is restricted to operations that are bitwise-exact
against their scalar equivalents: MT19937 uniform blocks (numpy's
``RandomState`` after a state transplant from ``random.Random`` emits the
identical double stream), elementwise IEEE-754 scale/shift (``start + u *
span``), sorting (same multiset of doubles in, same sequence out),
floor-multiplies ``int(u * k)``, ``searchsorted`` (≡ ``bisect_left``), and
integer/boolean mask arithmetic.  Transcendental transforms stay scalar on
both paths — ``numpy.log`` and ``math.log`` may differ in the last ulp — so
the per-bucket Poisson counts come from a scalar PTRS sampler and the
session-toggle exponential gaps from ``math.log``, neither of which is
per-candidate work.  ``WHOPAY_NUMPY=0`` forces the fallback; the results
are identical either way, which the test suite asserts.
"""

from __future__ import annotations

import bisect
import heapq
import math
import os
import random
from array import array
from collections import Counter
from typing import Any

from repro.sim import policies as pol
from repro.sim.config import SimConfig, expected_event_count
from repro.sim.costs import (
    BROKER_OPS,
    OP_INDEX,
    OP_NAMES,
    REPLAY_RECORD_COST,
    expected_attempts,
)
from repro.sim.metrics import SimMetrics, apply_heartbeat_model
from repro.sim.simulator import (
    RENEWAL_POINT,
    _PAYMENT,
    _RENEWAL,
    _RESTART,
    _TOGGLE,
    SimResult,
    Simulation,
)

try:  # optional accelerator; the pure-Python path is bitwise-identical
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the dev image
    _np = None

#: Engine names accepted by :func:`build_simulation`.
ENGINES = ("reference", "compat", "fast")

#: Calendar-bucket sizing bounds shared by every engine: at least 16 buckets
#: (tiny runs stay exact without degenerate widths), at most 2^17 (a million
#: peers must not allocate a bucket list per handful of events).
MIN_BUCKETS = 16
MAX_BUCKETS = 1 << 17


def bucket_count(expected_events: float, per_bucket: int = 256) -> int:
    """Calendar-queue bucket count for ~``per_bucket`` events per bucket.

    The single sizing rule for both :meth:`BucketQueue.for_config` (compat
    engine: every event is queued) and :class:`FastSimulation` (candidates
    bypass the queue, so it sizes on the queued-event estimate only).
    """
    return min(max(int(expected_events / per_bucket) + 2, MIN_BUCKETS), MAX_BUCKETS)


def _poisson(rnd, lam: float) -> int:
    """One exact Poisson(λ) draw from a U[0,1) source ``rnd``.

    Knuth's product method below λ=10 and Hörmann's PTRS transformed
    rejection above it — the same split numpy's legacy generator uses.  Pure
    scalar ``math`` on both engine paths, so the draw is bitwise identical
    with and without numpy (the sampler runs once per *bucket*, never per
    event, so scalar cost is irrelevant).
    """
    if lam < 10.0:
        enlam = math.exp(-lam)
        k = 0
        prod = rnd()
        while prod > enlam:
            k += 1
            prod *= rnd()
        return k
    loglam = math.log(lam)
    b = 0.931 + 2.53 * math.sqrt(lam)
    a = -0.059 + 0.02483 * b
    invalpha = 1.1239 + 1.1328 / (b - 3.4)
    vr = 0.9277 - 3.6224 / (b - 2.0)
    while True:
        u = rnd() - 0.5
        v = rnd()
        us = 0.5 - abs(u)
        k = math.floor((2.0 * a / us + b) * u + lam + 0.43)
        if us >= 0.07 and v <= vr:
            return int(k)
        if k < 0 or (us < 0.013 and v > us):
            continue
        if (math.log(v) + math.log(invalpha) - math.log(a / (us * us) + b)) <= (
            k * loglam - lam - math.lgamma(k + 1.0)
        ):
            return int(k)

# Flat-array operation indices (module constants so the hot paths do one
# global load instead of a dict hash per operation).
_OP_PURCHASE = OP_INDEX["purchase"]
_OP_ISSUE = OP_INDEX["issue"]
_OP_TRANSFER = OP_INDEX["transfer"]
_OP_DEPOSIT = OP_INDEX["deposit"]
_OP_RENEWAL = OP_INDEX["renewal"]
_OP_DOWNTIME_TRANSFER = OP_INDEX["downtime_transfer"]
_OP_DOWNTIME_RENEWAL = OP_INDEX["downtime_renewal"]
_OP_SYNC = OP_INDEX["sync"]
_OP_CHECK = OP_INDEX["check"]
_OP_LAZY_SYNC = OP_INDEX["lazy_sync"]
_OP_DHT_PUBLISH = OP_INDEX["dht_publish"]
_OP_DHT_READ = OP_INDEX["dht_read"]
_OP_LAYERED = OP_INDEX["layered_transfer"]
_BROKER_OP_IDX = tuple(OP_INDEX[op] for op in BROKER_OPS)


def _resolve_numpy(use_numpy: bool | None):
    """The numpy module to accelerate with, or ``None`` for pure Python."""
    if use_numpy is None:
        env = os.environ.get("WHOPAY_NUMPY", "").strip().lower()
        if env in ("0", "off", "false", "no"):
            return None
        return _np
    return _np if use_numpy else None


class BucketQueue:
    """Calendar-queue scheduler: coarse time buckets, exact event order.

    ``push`` appends into the bucket ``int(time / width)`` in O(1); a bucket
    is heapified once, when the consumer first reaches it, and same-bucket
    pushes after that point go through ``heappush``.  Because every
    dynamically scheduled event lies at or after the current simulation
    time, no push can target an already-drained bucket, so the global pop
    order is exactly the reference heap's ``(time, kind, seq)`` order.
    Events beyond the configured span (renewals scheduled past the horizon)
    are clamped into the last bucket, whose heap keeps them ordered; the run
    loop stops at the first event past the horizon, exactly like the
    reference engine.  Lazy deletion is inherited from the model itself:
    stale renewal entries are recognized and skipped at fire time
    (retired/unissued coins), never re-heapified.
    """

    __slots__ = ("width", "n_buckets", "buckets", "_cursor", "_count", "_live")

    def __init__(self, duration: float, n_buckets: int) -> None:
        self.n_buckets = max(2, n_buckets)
        # The last bucket starts at `duration` and holds the overflow.
        self.width = duration / (self.n_buckets - 1)
        self.buckets: list[list[tuple[float, int, int, int]]] = [
            [] for _ in range(self.n_buckets)
        ]
        self._cursor = 0
        self._count = 0
        self._live = False

    @classmethod
    def for_config(cls, config: SimConfig, per_bucket: int = 256) -> "BucketQueue":
        """Size buckets so ~``per_bucket`` events land in each."""
        return cls(config.duration, bucket_count(expected_event_count(config), per_bucket))

    def push(self, entry: tuple[float, int, int, int]) -> None:
        index = int(entry[0] / self.width)
        if index >= self.n_buckets:
            index = self.n_buckets - 1
        bucket = self.buckets[index]
        if index == self._cursor and self._live:
            heapq.heappush(bucket, entry)
        else:
            bucket.append(entry)
        self._count += 1

    def pop(self) -> tuple[float, int, int, int] | None:
        if not self._count:
            return None
        cursor = self._cursor
        while True:
            bucket = self.buckets[cursor]
            if not self._live:
                heapq.heapify(bucket)
                self._live = True
            if bucket:
                self._count -= 1
                return heapq.heappop(bucket)
            # Drained: release and march on (count > 0 guarantees a hit).
            self.buckets[cursor] = []
            cursor += 1
            self._cursor = cursor
            self._live = False


class EventSampledSimulation(Simulation):
    """The reference simulation on the calendar-queue scheduler.

    Overrides only event storage (``_push``) and the pop loop (``run``);
    every model decision, random draw and metric update is inherited, so
    results are bit-identical to :class:`Simulation` for every seed — the
    property the equivalence test sweeps.
    """

    def __init__(self, config: SimConfig) -> None:
        super().__init__(config)
        self._queue = BucketQueue.for_config(config)

    def _push(self, time: float, kind: int, subject: int) -> None:
        self._seq += 1
        self._queue.push((time, kind, self._seq, subject))

    def run(self) -> SimResult:
        self._initialize()
        duration = self.config.duration
        queue = self._queue
        events = 0
        while True:
            entry = queue.pop()
            if entry is None:
                break
            time, kind, _seq, subject = entry
            if time > duration:
                break
            self.now = time
            events += 1
            if kind == _PAYMENT:
                self._on_payment(subject)
            elif kind == _TOGGLE:
                self._on_toggle(subject)
            elif kind == _RENEWAL:
                self._on_renewal_due(subject)
            else:
                self._on_broker_restart()
        self.metrics.events = events
        return SimResult(
            config=self.config, metrics=self.metrics, final_time=min(self.now, duration)
        )


class _BlockStream:
    """Block-buffered U[0,1) stream, bitwise-identical with or without numpy.

    Seeded via ``random.Random(f"{seed}|{label}")`` (string seeding is
    stable across processes and Python versions).  On the numpy path the
    MT19937 state is transplanted into a ``RandomState``: both generators
    build doubles from the same two 32-bit words, so the streams match
    bitwise and consumption stays aligned.
    """

    __slots__ = ("_rng", "_rs")

    def __init__(self, seed: Any, label: str, np_mod) -> None:
        self._rng = random.Random(f"{seed}|{label}")
        self._rs = None
        if np_mod is not None:
            state = self._rng.getstate()
            key = np_mod.array(state[1][:-1], dtype=np_mod.uint32)
            rs = np_mod.random.RandomState(0)
            rs.set_state(("MT19937", key, state[1][-1]))
            self._rs = rs

    def uniforms(self, count: int):
        """``count`` uniforms as an ndarray (numpy) or list (fallback)."""
        if self._rs is not None:
            return self._rs.random_sample(count)
        rnd = self._rng.random
        return [rnd() for _ in range(count)]


class FastSimulation:
    """Struct-of-arrays bucket engine for very large populations.

    Same model, different mechanics (see the module docstring):

    * candidate payments come from one global Poisson stream (superposition)
      with payer/payee drawn per event from dedicated uniform streams;
    * peer and coin state live in flat ``bytearray``/list columns; wallets
      are per-peer lists with O(1) swap-remove, and owned-coin lists are
      singly-linked over the coin columns with lazy retired-coin compaction;
    * thinning is evaluated per bucket in one vectorized pass for candidates
      that touch no dirty peer (exact — see module docstring) and scalar at
      fire time for the rest;
    * metrics accumulate into flat lists indexed by ``costs.OP_INDEX`` and
      are folded into a :class:`SimMetrics` once, after the run.

    Deliberately mirrored reference quirks: a coin transferred away from a
    peer while its renewal is pending loses its renewal chain (the reference
    discards the pending entry on move and never reschedules); proactive
    rejoins count one ``sync`` even for peers that own nothing; offline
    payers still pay when ``require_payer_online`` is off.
    """

    #: Method-chain opcode per policy preference (dispatch on small ints in
    #: the inlined hot path instead of string compares).
    _METHOD_IDS = {
        pol.TRANSFER_ONLINE: 0,
        pol.TRANSFER_OFFLINE: 1,
        pol.ISSUE_EXISTING: 2,
        pol.PURCHASE_ISSUE: 3,
        pol.DEPOSIT_PURCHASE_ISSUE: 4,
        pol.LAYERED_OFFLINE: 5,
    }

    def __init__(self, config: SimConfig, use_numpy: bool | None = None) -> None:
        self.config = config
        self.metrics = SimMetrics(
            n_peers=config.n_peers,
            msg_overhead=expected_attempts(config.message_loss, config.rpc_max_attempts),
        )
        apply_heartbeat_model(self.metrics, config)
        self.now = 0.0
        self._np = _resolve_numpy(use_numpy)
        self._lazy = config.sync_mode == "lazy"
        self._track = config.track_per_peer
        self._detection = config.detection
        self._gate = config.require_payer_online
        self._coin_value = float(config.coin_value)
        self._max_layers = config.max_layers
        self._renew_delay = RENEWAL_POINT * config.renewal_period

        seed = config.seed
        self._rng_pop = random.Random(f"{seed}|population")
        self._init_stream = _BlockStream(seed, "init", self._np)
        self._rng_toggle = random.Random(f"{seed}|toggle")
        self._rng_retry = random.Random(f"{seed}|payee-retry")
        self._rng_counts = random.Random(f"{seed}|counts")
        self._cand_stream = _BlockStream(seed, "candidates", self._np)
        self._payer_stream = _BlockStream(seed, "payer", self._np)
        self._payee_stream = _BlockStream(seed, "payee", self._np)

        n = config.n_peers
        self._build_population()
        self._cand_gap_mean = config.payment_interval / n  # 1/Λ, both models

        # Peer columns.  Flags live in bytearrays (compact, and `online`
        # doubles as the zero-copy numpy view the thinning masks index);
        # balances in an `array("d")`.  The id columns are plain lists:
        # `array("q")` re-boxes a PyLong on every load, which measures ~2.7×
        # slower than a list load on the wallet-walk hot path.  Wallets are
        # per-peer lists with swap-remove — selection order is deterministic
        # but differs from the reference's set iteration, which is already
        # outside the bitwise contract.
        self._online = bytearray(n)
        self._wallets: list[list[int]] = [[] for _ in range(n)]
        self._owned_head = [-1] * n
        balance = float("inf") if config.initial_balance is None else float(config.initial_balance)
        self._balance = array("d", [balance]) * n
        self._pending: dict[int, list[int]] = {}

        # Coin columns (append-grown).
        self._n_coins = 0
        self._c_owner: list[int] = []
        self._c_holder: list[int] = []
        self._c_dirty = bytearray()
        self._c_check = bytearray()
        self._c_retired = bytearray()
        self._c_layers: list[int] = []
        self._c_onext: list[int] = []
        # Bound append methods: coin creation appends to every column, and
        # the bound form skips one attribute lookup per column per purchase.
        self._ap_owner = self._c_owner.append
        self._ap_holder = self._c_holder.append
        self._ap_dirty = self._c_dirty.append
        self._ap_check = self._c_check.append
        self._ap_retired = self._c_retired.append
        self._ap_layers = self._c_layers.append
        self._ap_onext = self._c_onext.append

        if self._np is not None:
            self._online_np = self._np.frombuffer(self._online, dtype=self._np.uint8)
            self._dirty_np = self._np.zeros(n, dtype=self._np.uint8)
        else:
            self._online_np = None
            self._dirty_np = None

        # Scheduler state.  Candidate payments bypass the queue entirely,
        # renewals live in a plain FIFO (every renewal is scheduled at
        # ``now + 0.9 * renewal_period`` with ``now`` monotone, so the FIFO
        # is always time-sorted without a heap), and the full toggle/restart
        # schedule is precomputed by ``_initialize`` into per-bucket CSR
        # columns — no :class:`BucketQueue` and no event tuples at all; this
        # engine only needs the bucket geometry, sized for the toggle count.
        qevents = (
            n
            + config.broker_restarts
            + config.duration * 2.0 * n / (config.mean_online + config.mean_offline)
        )
        self._n_buckets = max(2, bucket_count(qevents))
        # The last bucket starts exactly at ``duration`` (same geometry as
        # BucketQueue) and catches events at the horizon itself.
        self._width = config.duration / (self._n_buckets - 1)
        # Renewal FIFO as two parallel columns with a head cursor instead of
        # a deque of tuples: appends stay O(1) and time-sorted (every entry
        # is ``now + 0.9 * renewal_period`` with ``now`` monotone), pops are
        # cursor bumps, and no tuple or boxed pair outlives the bucket that
        # consumed it — at N=10^6 the tuple deque alone was tens of MiB.
        # Plain lists beat array('d')/array('q') here: appends skip the
        # box→C conversion and peeks return existing refs, and the boxed
        # overhead is bounded by the live renewal backlog (~tens of MB at
        # N=10^6 against a peak budget in the hundreds).
        self._r_times: list[float] = []
        self._r_cids: list[int] = []
        self._r_head = 0
        self._dirty: dict[int, bool] = {}

        # Flat metric accumulators.
        self._ops = [0] * len(OP_NAMES)
        self._micro_ver = 0
        self._micro_gver = 0
        self._made = 0
        self._failed = 0
        self._by_slot = [0] * len(config.policy.preferences)
        self._coins_created = 0
        self._coins_retired = 0
        self._layered_total = 0
        self._layered_max = 0
        self._per_served: Counter = Counter()
        self._per_payments: Counter = Counter()
        self._restarts = 0
        self._replayed = 0
        self._replay_cost = 0.0
        self._ops_snapshotted = 0
        self._cand_events = 0
        self._qevents = 0
        self._last_cand_t = 0.0
        self._last_queue_t = 0.0

        self._method_ids = tuple(
            self._METHOD_IDS[m] for m in config.policy.preferences
        )
        self._chain = tuple(enumerate(self._method_ids))
        # The merge loop inlines the whole method chain when it is exactly
        # policy I's (online transfer → offline transfer → issue-existing →
        # purchase) and no per-payment bookkeeping beyond the counters is
        # active; every other configuration dispatches through the generic
        # ``_attempt``.
        self._plain = (
            not self._lazy
            and not self._track
            and not self._detection
            and config.broker_restarts == 0
            and self._method_ids == (0, 1, 2, 3)
        )

    # -- population ---------------------------------------------------------

    def _build_population(self) -> None:
        """Identical parameterization to the reference engine's, fed from the
        dedicated population stream (a permutation of the same weight
        multiset, so every aggregate distribution matches)."""
        cfg = self.config
        n = cfg.n_peers
        if cfg.heterogeneity == "uniform":
            self._mean_on = [cfg.mean_online] * n
            self._mean_off = [cfg.mean_offline] * n
            self._avail = [cfg.availability] * n
            self._payee_cum: list[float] | None = None
            self._payee_cum_np = None
            self._payee_total = 0.0
            return
        weights = [1.0 / (rank + 1) ** cfg.zipf_exponent for rank in range(n)]
        self._rng_pop.shuffle(weights)
        w_max = max(weights)
        base = cfg.availability
        cap = max(base, cfg.superpeer_max_availability)
        self._avail = [base + (cap - base) * (w / w_max) for w in weights]
        self._mean_on = [cfg.mean_online] * n
        self._mean_off = [cfg.mean_online * (1.0 - a) / a for a in self._avail]
        cumulative: list[float] = []
        running = 0.0
        for w in weights:
            running += w
            cumulative.append(running)
        self._payee_cum = cumulative
        self._payee_total = running
        self._payee_cum_np = None if self._np is None else self._np.array(cumulative)

    # -- candidate stream ---------------------------------------------------

    def _redraw_payee(self, payer: int) -> int:
        """Scalar collision redraw (power-law mode), dedicated stream."""
        cum = self._payee_cum
        total = self._payee_total
        last = self.config.n_peers - 1
        rnd = self._rng_retry.random
        left = bisect.bisect_left
        while True:
            q = min(left(cum, rnd() * total), last)
            if q != payer:
                return q

    #: Candidate chunk size for the numpy fast path: payer/payee index
    #: columns are built for a run of buckets at a time (one astype /
    #: searchsorted per ~256k candidates instead of per bucket), bounded so
    #: the transient chunk stays a few MiB even at the N=10^6 event budget.
    _CHUNK_CANDIDATES = 1 << 18

    def _advance_chunk(self, b: int) -> None:
        """Build payer/payee index columns for buckets ``[b, b1)``.

        Stream consumption is order-identical to per-bucket draws (the
        uniform streams are sequential, so block size never changes the
        values; collision redraws consume the retry stream in global
        candidate order either way), which keeps the fallback path — which
        still samples per bucket — bitwise in lockstep.
        """
        coff = self._cand_coff
        lo = coff[b]
        b1 = b + 1
        nb = self._n_buckets
        cap = lo + self._CHUNK_CANDIDATES
        while b1 < nb and coff[b1 + 1] <= cap:
            b1 += 1
        total = coff[b1] - lo
        np_mod = self._np
        n = self.config.n_peers
        payer_u = self._payer_stream.uniforms(total)
        payee_u = self._payee_stream.uniforms(total)
        if self._payee_cum is None:
            pr = (payer_u * n).astype(np_mod.int64)
            raw = (payee_u * (n - 1)).astype(np_mod.int64)
            pe = raw + (raw >= pr)
        else:
            wtotal = self._payee_total
            last = n - 1
            pr = np_mod.minimum(
                np_mod.searchsorted(self._payee_cum_np, payer_u * wtotal, side="left"),
                last,
            )
            pe = np_mod.minimum(
                np_mod.searchsorted(self._payee_cum_np, payee_u * wtotal, side="left"),
                last,
            )
            for k in np_mod.nonzero(pe == pr)[0].tolist():
                pe[k] = self._redraw_payee(int(pr[k]))
        self._ck_lo = lo
        self._ck_b1 = b1
        self._ck_pr = pr
        self._ck_pe = pe

    def _sample_bucket(self, b: int, start: float, end: float, dirty: dict[int, bool]):
        """Thin bucket ``b``'s candidate payments (time in [start, end)).

        The window's candidate count is one Poisson(Λ · span) draw (made in
        bucket order by ``_initialize``) and the times are sorted uniforms
        on the span (conditional uniformity — an exact identity, see the
        module docstring); payer and payee marks are i.i.d., so pairing
        them with the order statistics in draw order preserves the marked
        process exactly.  Thinning runs against the bucket-entry online
        masks (exact under the dirty-peer argument) and returns only the
        survivors: ``(total, ct, cp, cq)`` where ``total`` counts every
        candidate in the window (the events denominator) and the parallel
        lists hold fire time, payer, and payee per survivor.

        Times are drawn for the *kept* candidates only: keeping a candidate
        depends solely on its marks (the dirty re-check happens later, but
        dirty membership is itself time-independent), so the kept set is an
        independent random subset of an i.i.d. sample — and such a subset
        is again i.i.d. uniform.  Sorted uniforms for the kept count are
        therefore exactly the kept candidates' order statistics, and the
        rejected majority never costs a time draw or a sort slot.

        A candidate that touches a dirty peer cannot be thinned against the
        entry masks; it is kept with its *payee* encoded as ``-1 - payee``
        so the merge loop re-evaluates it scalar at fire time — the sign
        doubles as the status flag, and because the end-of-bucket sentinel
        also carries a negative payee, clean candidates (the vast majority)
        pay exactly one sign test for sentinel and dirty handling combined.
        Rejected candidates never enter a Python-level loop on the
        accelerated path.
        """
        total = self._cand_counts[b]
        if not total:
            return 0, [], [], []
        span = end - start
        n = self.config.n_peers
        np_mod = self._np
        gate = self._gate
        if np_mod is not None:
            if b >= self._ck_b1:
                self._advance_chunk(b)
            lo = self._cand_coff[b] - self._ck_lo
            pr = self._ck_pr[lo : lo + total]
            pe = self._ck_pe[lo : lo + total]
        else:
            payer_u = self._payer_stream.uniforms(total)
            payee_u = self._payee_stream.uniforms(total)
            if self._payee_cum is None:
                pr = [int(u * n) for u in payer_u]
                pe = []
                append_pe = pe.append
                for k in range(total):
                    q = int(payee_u[k] * (n - 1))
                    if q >= pr[k]:
                        q += 1
                    append_pe(q)
            else:
                wtotal = self._payee_total
                last = n - 1
                cum = self._payee_cum
                left = bisect.bisect_left
                pr = [min(left(cum, u * wtotal), last) for u in payer_u]
                pe = []
                for k in range(total):
                    q = min(left(cum, payee_u[k] * wtotal), last)
                    if q == pr[k]:
                        q = self._redraw_payee(pr[k])
                    pe.append(q)
        ct: list[float] = []
        cp: list[int] = []
        cq: list[int] = []
        if np_mod is not None:
            online_np = self._online_np
            accept = online_np[pe]
            if gate:
                accept = accept & online_np[pr]
            st = accept << 1
            if dirty:
                dirty_np = self._dirty_np
                st[(dirty_np[pr] | dirty_np[pe]) != 0] = 1
            sel = np_mod.nonzero(st)[0]
            if sel.size:
                pes = pe[sel]
                if dirty:
                    pes = np_mod.where(st[sel] == 2, pes, -1 - pes)
                cq = pes.tolist()
                cp = pr[sel].tolist()
        else:
            online = self._online
            if dirty:
                for j in range(total):
                    p = pr[j]
                    q = pe[j]
                    if p in dirty or q in dirty:
                        cp.append(p)
                        cq.append(-1 - q)
                    elif online[q] and (online[p] or not gate):
                        cp.append(p)
                        cq.append(q)
            else:
                for j in range(total):
                    q = pe[j]
                    if online[q]:
                        p = pr[j]
                        if online[p] or not gate:
                            cp.append(p)
                            cq.append(q)
        kept = len(cp)
        if kept:
            # Both paths draw exactly ``kept`` time uniforms, and the kept
            # count is mask-identical between them, so the streams stay in
            # lockstep; sorting the same multiset yields the same sequence.
            us = self._cand_stream.uniforms(kept)
            if np_mod is not None:
                ct = np_mod.sort(start + us * span).tolist()
            else:
                ct = [start + u * span for u in us]
                ct.sort()
            self._last_cand_t = ct[-1]
        return total, ct, cp, cq

    # -- run ----------------------------------------------------------------

    def _initialize(self) -> None:
        # Stationary start, like the reference engine: one availability draw
        # and one residual-session draw per peer, block-drawn from the init
        # stream (identical values to per-call draws — same stream, same
        # order) with the exponential transform kept scalar for bitwise
        # numpy independence.
        #
        # The whole toggle *schedule* is precomputed here.  A peer's session
        # process is an alternating renewal process independent of
        # everything else in the model, so its entire in-horizon toggle
        # sequence can be generated up front (per-peer sequential draws from
        # the toggle stream; the gap mean is the mean of the state the
        # toggle switches *into*, exactly as the old in-loop draw applied
        # it).  The sequences are stably time-sorted and cut into compact
        # per-bucket CSR columns (times, subjects) whose slices the merge
        # loops walk directly.  This removes every RNG draw, ``log``,
        # sequence number, tuple allocation and heap/insort operation from
        # the merge loop's toggle branch — and it stores *nothing* for the
        # out-of-horizon tail, which at N=10^6 (where most peers never
        # toggle inside the short event-budgeted horizon) was the single
        # largest block of peak RSS as one queue tuple per peer.  Broker
        # restarts ride the same columns with the sentinel subject ``n``
        # (ties at equal times keep toggles first, matching the reference's
        # kind order).
        n = self.config.n_peers
        duration = self.config.duration
        us = self._init_stream.uniforms(2 * n)
        if self._np is not None:
            us = us.tolist()
        avail = self._avail
        mean_on = self._mean_on
        mean_off = self._mean_off
        online = self._online
        log = math.log
        rnd = self._rng_toggle.random
        times: list[float] = []
        subjects: list[int] = []
        t_append = times.append
        s_append = subjects.append
        k = 0
        for index in range(n):
            if us[k] < avail[index]:
                online[index] = 1
                s = 1
            else:
                s = 0
            t = -log(1.0 - us[k + 1]) * (mean_on[index] if s else mean_off[index])
            k += 2
            while t <= duration:
                t_append(t)
                s_append(index)
                s = 1 - s
                t += -log(1.0 - rnd()) * (mean_on[index] if s else mean_off[index])
        restarts = self.config.broker_restarts
        for i in range(1, restarts + 1):
            t_append(duration * i / (restarts + 1))
            s_append(n)
        # Sort the whole schedule by time (stable), then cut CSR bucket
        # columns from the sorted arrays.  Stability is the tie rule:
        # restarts are generated after every toggle, so an equal-time
        # toggle/restart pair keeps the toggle first — the reference's kind
        # order — and toggle/toggle ties (probability zero) keep generation
        # order, which merely needs determinism.  Because the sort key is
        # the fire time itself, each bucket's slice is already time-ordered
        # and the merge loops can walk it directly; numpy's stable argsort
        # and Timsort are both stable sorts of the same multiset, so the
        # two paths produce the identical permutation.  Bucket assignment
        # is one IEEE divide + truncation on both, so the offsets agree.
        qwidth = self._width
        qlast = self._n_buckets - 1
        total = len(times)
        np_mod = self._np
        if np_mod is not None:
            ta = np_mod.array(times)
            order = np_mod.argsort(ta, kind="stable")
            ta = ta[order]
            bi = (ta / qwidth).astype(np_mod.int64)
            np_mod.minimum(bi, qlast, out=bi)
            tog_t = array("d")
            tog_t.frombytes(ta.tobytes())
            tog_s = array("i")
            tog_s.frombytes(
                np_mod.array(subjects, dtype=np_mod.int32)[order].tobytes()
            )
            offsets = [0]
            offsets.extend(
                np_mod.cumsum(np_mod.bincount(bi, minlength=qlast + 1)).tolist()
            )
        else:
            order = sorted(range(total), key=times.__getitem__)
            counts = [0] * (qlast + 2)
            tog_t = array("d", bytes(8 * total))
            tog_s = array("i", bytes(4 * total))
            for pos in range(total):
                j = order[pos]
                t = times[j]
                b = int(t / qwidth)
                if b > qlast:
                    b = qlast
                counts[b + 1] += 1
                tog_t[pos] = t
                tog_s[pos] = subjects[j]
            running = 0
            offsets = counts
            for b in range(len(counts)):
                running += counts[b]
                offsets[b] = running
        self._tog_t = tog_t
        self._tog_s = tog_s
        self._tog_off = offsets
        # Candidate-count schedule: one Poisson draw per bucket, consumed in
        # bucket order from the dedicated counts stream — exactly the order
        # the per-bucket sampler used, so the realization is unchanged and
        # the numpy path can batch payer/payee index math across buckets.
        nb = self._n_buckets
        gap = self._cand_gap_mean
        rndc = self._rng_counts.random
        ccounts = [0] * nb
        coff = [0] * (nb + 1)
        running = 0
        for b in range(nb):
            cstart = b * qwidth
            cend = cstart + qwidth
            if cend > duration:
                cend = duration
            if cend > cstart:
                c = _poisson(rndc, (cend - cstart) / gap)
                ccounts[b] = c
                running += c
            coff[b + 1] = running
        self._cand_counts = ccounts
        self._cand_coff = coff
        self._ck_b1 = 0
        self._ck_lo = 0
        self._ck_pr = None
        self._ck_pe = None

    def run(self) -> SimResult:
        """Execute the configured run and return its metrics."""
        self._initialize()
        duration = self.config.duration
        for b in range(self._n_buckets):
            self._run_bucket(b, duration)
        self._fold_metrics()
        final = min(max(self._last_cand_t, self._last_queue_t), duration)
        self.now = final
        return SimResult(config=self.config, metrics=self.metrics, final_time=final)

    def _run_bucket(self, b: int, duration: float) -> None:
        """Process one bucket of the precomputed schedule."""
        off = self._tog_off
        lo = off[b]
        hi = off[b + 1]
        npeers = self.config.n_peers
        if hi > lo:
            # This bucket's toggles/restarts, already time-sorted by
            # ``_initialize`` (ties resolved there; see the sort comment).
            ptimes = self._tog_t[lo:hi].tolist()
            psubs = self._tog_s[lo:hi].tolist()
        else:
            ptimes = []
            psubs = []
        dirty = self._dirty
        for s in psubs:
            if s < npeers:
                dirty[s] = True
        # End-of-schedule sentinel: never fires (it loses every ``rt < ht``
        # race once both are +inf and the candidate sentinel breaks first),
        # but it lets the merge loops read ``ptimes[qi]`` unconditionally.
        ptimes.append(math.inf)
        psubs.append(npeers)
        dirty_np = self._dirty_np
        if dirty_np is not None and dirty:
            for x in dirty:
                dirty_np[x] = 1
        width = self._width
        start = b * width
        end = start + width
        if end > duration:
            end = duration  # no candidates or renewals beyond the horizon
        total, ct, cp, cq = self._sample_bucket(b, start, end, dirty)
        self._cand_events += total
        # Candidates drive the merge: the ``for`` loop iterates them at C
        # speed in time order, draining the schedule events due first
        # between consecutive candidates.  The +inf sentinel candidate
        # drains whatever the bucket still holds past the last survivor.
        # Every stored event is in-horizon by construction (``_initialize``
        # drops the out-of-horizon tail), so no horizon check runs here.
        ct.append(math.inf)
        cp.append(-1)
        cq.append(-1)
        if self._plain:
            self._merge_plain(ptimes, psubs, ct, cp, cq, end)
        else:
            self._merge_generic(ptimes, psubs, ct, cp, cq, end)
        if dirty:
            if dirty_np is not None:
                for x in dirty:
                    dirty_np[x] = 0
            dirty.clear()

    def _merge_plain(self, ptimes, psubs, ct, cp, cq, end: float) -> None:
        """Merge loop specialized for the plain configuration.

        Plain means policy I's method chain, proactive sync, no detection,
        no per-peer tracking, and no broker restarts — the paper's Setup
        A/B defaults.  Everything the generic machinery would do beyond the
        counters is provably dead here, and the loop body says so inline:

        * The owner check is a no-op (proactive) and per-payment tracking
          is off, so payments update only the counters.
        * One wallet scan serves both transfer methods: if no coin's owner
          is online, *every* owner is offline, so the offline method's
          first match is simply the first wallet coin.  The scan tries the
          trailing coin first (a bare ``pop``, no shift — and with ~50%
          availability it wins about half the time); other matches leave
          by swap-remove.  Selection order is deterministic either way,
          and wallet order was never part of the statistical contract.
        * Per-coin dirty/check/retired/layer columns and the owned-coin
          chain are never read (no deposit method → no retirement, no
          detection → no checks, proactive → no lazy marks), so mints skip
          those appends, renewals skip the staleness test, and rejoins
          skip the owned-chain walk entirely.
        * The renewal FIFO length is tracked in a local (``rn``): every
          append site is inline in this loop, so the live ``len()`` reads
          of the generic path collapse to integer bumps.
        """
        online = self._online
        gate = self._gate
        wallets = self._wallets
        owner = self._c_owner
        holder = self._c_holder
        pending = self._pending
        r_times = self._r_times
        r_cids = self._r_cids
        rh = self._r_head
        rn = len(r_times)
        rt_append = r_times.append
        rc_append = r_cids.append
        renew_delay = self._renew_delay
        inf = math.inf
        balance = self._balance
        coin_value = self._coin_value
        n_coins = self._n_coins
        ap_owner = self._ap_owner
        ap_holder = self._ap_holder
        qi = 0
        qevents = 0
        fast_on = 0
        fast_off = 0
        fast_pur = 0
        fast_fail = 0
        renewed = 0
        down_renewed = 0
        syncs = 0
        last_q = -1.0
        ht = ptimes[0]
        rt = r_times[rh] if rh < rn else inf
        if rt > end:
            rt = inf  # due in a later bucket
        next_t = ht if ht < rt else rt
        for t, p, q in zip(ct, cp, cq):
            if next_t < t:
                while True:
                    if rt < ht:
                        # Renewal due (ties go to the toggle columns:
                        # _TOGGLE sorts before _RENEWAL in the reference
                        # order).
                        cid = r_cids[rh]
                        rh += 1
                        last_q = rt
                        qevents += 1
                        h = holder[cid]
                        if online[h]:
                            if online[owner[cid]]:
                                renewed += 1
                            else:
                                down_renewed += 1
                            rt_append(rt + renew_delay)
                            rc_append(cid)
                            rn += 1
                        else:
                            pend = pending.get(h)
                            if pend is None:
                                pending[h] = [cid]
                            else:
                                pend.append(cid)
                        rt = r_times[rh] if rh < rn else inf
                        if rt > end:
                            rt = inf
                    else:
                        # Session toggle: a pure state flip — the next
                        # toggle is already in the precomputed schedule,
                        # and no restarts exist in plain mode.
                        subject = psubs[qi]
                        qi += 1
                        last_q = ht
                        qevents += 1
                        if online[subject]:
                            online[subject] = 0
                        else:
                            online[subject] = 1
                            # Inline proactive rejoin: one sync, then the
                            # pending renewals parked while this holder
                            # was offline replay.
                            syncs += 1
                            pend = pending.pop(subject, None)
                            if pend is not None:
                                rtime = ht + renew_delay
                                for cid in pend:
                                    if holder[cid] == subject:
                                        if online[owner[cid]]:
                                            renewed += 1
                                        else:
                                            down_renewed += 1
                                        rt_append(rtime)
                                        rc_append(cid)
                                        rn += 1
                                # The replay may have repopulated an empty
                                # FIFO within this bucket's span.
                                rt = r_times[rh] if rh < rn else inf
                                if rt > end:
                                    rt = inf
                        ht = ptimes[qi]
                    next_t = ht if ht < rt else rt
                    if next_t >= t:
                        break
            if q < 0:
                # One sign test covers both rare cases: the end-of-bucket
                # sentinel (p < 0 too) and dirty-peer candidates, whose
                # thinning re-evaluates scalar at fire time.
                if p < 0:
                    break  # sentinel: bucket fully drained
                q = -1 - q
                if not (online[q] and (online[p] or not gate)):
                    continue
            w = wallets[p]
            if w:
                # Last-element fast path: with ~50% owner availability the
                # tail coin matches half the time and its swap-remove is a
                # bare pop.  Selection order is deterministic either way
                # (wallet order is not part of the statistical contract).
                c = w[-1]
                if online[owner[c]]:
                    w.pop()
                    holder[c] = q
                    wallets[q].append(c)
                    fast_on += 1
                else:
                    last = len(w) - 1
                    for k in range(last):
                        c = w[k]
                        if online[owner[c]]:
                            w[k] = w[last]
                            w.pop()
                            holder[c] = q
                            wallets[q].append(c)
                            fast_on += 1
                            break
                    else:
                        c = w[0]
                        w[0] = w[last]
                        w.pop()
                        holder[c] = q
                        wallets[q].append(c)
                        fast_off += 1
            else:
                # Purchase + issue (ISSUE_EXISTING can never match — see
                # ``_attempt``): mint the coin directly in its post-issue
                # state.
                bal = balance[p]
                if bal >= coin_value:
                    balance[p] = bal - coin_value
                    c = n_coins
                    n_coins = c + 1
                    ap_owner(p)
                    ap_holder(q)
                    wallets[q].append(c)
                    rt_append(t + renew_delay)
                    rc_append(c)
                    rn += 1
                    fast_pur += 1
                else:
                    fast_fail += 1
        # Renewal-FIFO cursor write-back, with amortized compaction of the
        # consumed prefix (O(1) per element over the run).
        if rh and rh >= 1024 and rh * 2 >= rn:
            del r_times[:rh]
            del r_cids[:rh]
            rh = 0
        self._r_head = rh
        if last_q >= 0.0:
            self._last_queue_t = last_q
        # Only the inline chain mints through the local counter; in the
        # generic mode ``_purchase_issue`` owns ``self._n_coins``.
        self._n_coins = n_coins
        self._qevents += qevents
        ops = self._ops
        made = fast_on + fast_off + fast_pur
        if made:
            self._made += made
            by_slot = self._by_slot
            if fast_on:
                by_slot[0] += fast_on
                ops[_OP_TRANSFER] += fast_on
            if fast_off:
                by_slot[1] += fast_off
                ops[_OP_DOWNTIME_TRANSFER] += fast_off
            if fast_pur:
                by_slot[3] += fast_pur
                ops[_OP_PURCHASE] += fast_pur
                ops[_OP_ISSUE] += fast_pur
                self._coins_created += fast_pur
        if fast_fail:
            self._failed += fast_fail
        if renewed:
            ops[_OP_RENEWAL] += renewed
        if down_renewed:
            ops[_OP_DOWNTIME_RENEWAL] += down_renewed
        if syncs:
            ops[_OP_SYNC] += syncs

    def _merge_generic(self, ptimes, psubs, ct, cp, cq, end: float) -> None:
        """Merge loop for every non-plain configuration.

        Same drain structure as :meth:`_merge_plain`, but payments dispatch
        through the generic ``_attempt`` method chain and renewals/rejoins
        through the full bookkeeping methods (retirement staleness, lazy
        marks, per-peer tracking, detection publishes, restarts).  The
        renewal FIFO length is re-read live because the called methods
        append to it out of the loop's sight.
        """
        online = self._online
        gate = self._gate
        npeers = self.config.n_peers
        holder = self._c_holder
        retired = self._c_retired
        pending = self._pending
        r_times = self._r_times
        r_cids = self._r_cids
        rh = self._r_head
        attempt = self._attempt
        inf = math.inf
        qi = 0
        qevents = 0
        last_q = -1.0
        ht = ptimes[0]
        rt = r_times[rh] if rh < len(r_times) else inf
        if rt > end:
            rt = inf  # due in a later bucket
        next_t = ht if ht < rt else rt
        for t, p, q in zip(ct, cp, cq):
            if next_t < t:
                while True:
                    if rt < ht:
                        # Renewal due (ties go to the toggle columns).
                        # Stale entries for retired coins are dropped
                        # lazily; wallet coins are always issued in this
                        # engine, so no issued check is needed.
                        cid = r_cids[rh]
                        rh += 1
                        last_q = rt
                        qevents += 1
                        if not retired[cid]:
                            h = holder[cid]
                            if online[h]:
                                self.now = rt
                                self._renew(cid)
                            else:
                                pend = pending.get(h)
                                if pend is None:
                                    pending[h] = [cid]
                                else:
                                    pend.append(cid)
                        rt = r_times[rh] if rh < len(r_times) else inf
                        if rt > end:
                            rt = inf
                    else:
                        subject = psubs[qi]
                        qi += 1
                        last_q = ht
                        qevents += 1
                        if subject < npeers:
                            # Session toggle: a pure state flip — the next
                            # toggle is already in the precomputed schedule.
                            if online[subject]:
                                online[subject] = 0
                            else:
                                online[subject] = 1
                                self.now = ht
                                self._on_rejoin(subject)
                                # The pending-renewal replay may have
                                # repopulated an empty FIFO within this
                                # bucket's span.
                                rt = r_times[rh] if rh < len(r_times) else inf
                                if rt > end:
                                    rt = inf
                        else:
                            self.now = ht
                            self._on_broker_restart()
                        ht = ptimes[qi]
                    next_t = ht if ht < rt else rt
                    if next_t >= t:
                        break
            if q < 0:
                if p < 0:
                    break  # sentinel: bucket fully drained
                q = -1 - q
                if not (online[q] and (online[p] or not gate)):
                    continue
            self.now = t
            attempt(p, q)
        if rh and rh >= 1024 and rh * 2 >= len(r_times):
            del r_times[:rh]
            del r_cids[:rh]
            rh = 0
        self._r_head = rh
        if last_q >= 0.0:
            self._last_queue_t = last_q
        self._qevents += qevents

    # -- churn --------------------------------------------------------------

    def _on_rejoin(self, index: int) -> None:
        # One synchronization per join (proactive) or stale-marking (lazy),
        # compacting retired coins out of the owned list while walking it.
        onext = self._c_onext
        retired = self._c_retired
        if not self._lazy:
            self._ops[_OP_SYNC] += 1
            marks = self._c_dirty
            value = 0
        else:
            marks = self._c_check
            value = 1
        cid = self._owned_head[index]
        prev = -1
        while cid >= 0:
            nxt = onext[cid]
            if retired[cid]:
                if prev < 0:
                    self._owned_head[index] = nxt
                else:
                    onext[prev] = nxt
            else:
                marks[cid] = value
                prev = cid
            cid = nxt
        pend = self._pending.pop(index, None)
        if pend is not None:
            holder = self._c_holder
            for cid in pend:
                # Lazily invalidated: the coin may have moved or retired
                # while this peer was offline.
                if not retired[cid] and holder[cid] == index:
                    self._renew(cid)

    # -- broker restarts ----------------------------------------------------

    def _on_broker_restart(self) -> None:
        ops = self._ops
        journaled = 0
        for idx in _BROKER_OP_IDX:
            journaled += ops[idx]
        backlog = journaled - self._ops_snapshotted
        self._restarts += 1
        self._replayed += backlog
        self._replay_cost += backlog * REPLAY_RECORD_COST
        self._ops_snapshotted = journaled

    # -- renewals -----------------------------------------------------------

    def _schedule_renewal(self, cid: int) -> None:
        # Every renewal is scheduled at ``now + 0.9 * renewal_period`` and
        # ``now`` is monotone, so plain appends keep the columns time-sorted.
        self._r_times.append(self.now + self._renew_delay)
        self._r_cids.append(cid)

    def _renew(self, cid: int) -> None:
        owner = self._c_owner[cid]
        if self._online[owner]:
            self._owner_check(cid)
            self._ops[_OP_RENEWAL] += 1
            if self._track:
                self._per_served[owner] += 1
        else:
            self._ops[_OP_DOWNTIME_RENEWAL] += 1
            self._c_dirty[cid] = 1
        if self._detection:
            self._ops[_OP_DHT_PUBLISH] += 1
        self._schedule_renewal(cid)

    def _owner_check(self, cid: int) -> None:
        if self._lazy and self._c_check[cid]:
            self._ops[_OP_CHECK] += 1
            if self._c_dirty[cid]:
                self._ops[_OP_LAZY_SYNC] += 1
                self._c_dirty[cid] = 0
            self._c_check[cid] = 0

    # -- payments -----------------------------------------------------------

    def _attempt(self, payer: int, payee: int) -> None:
        # The policy chain, dispatched on small-int opcodes with the
        # online/offline transfer methods (wallet scan + swap-remove) fully
        # inlined — this is the hottest generic call site.  Wallet coins are
        # always issued and never retired (coins are created issued and
        # deposits remove them), so the scans test only owner availability.
        owner = self._c_owner
        online = self._online
        wallets = self._wallets
        ops = self._ops
        for slot, mid in self._chain:
            if mid <= 1:
                want = 1 - mid  # TRANSFER_ONLINE wants the owner up, OFFLINE down
                w = wallets[payer]
                found = -1
                for k in range(len(w)):
                    cid = w[k]
                    if online[owner[cid]] == want:
                        found = k
                        break
                if found < 0:
                    continue
                if mid == 0:
                    self._owner_check(cid)
                    ops[_OP_TRANSFER] += 1
                    if self._track:
                        self._per_served[owner[cid]] += 1
                else:
                    ops[_OP_DOWNTIME_TRANSFER] += 1
                    self._c_dirty[cid] = 1
                if self._detection:
                    ops[_OP_DHT_PUBLISH] += 1
                    ops[_OP_DHT_READ] += 1
                self._c_layers[cid] = 0
                # Pending-renewal entries are invalidated lazily (holder
                # check at rejoin), matching the reference's eager discard
                # outcome-for-outcome.
                w[found] = w[-1]
                w.pop()
                self._c_holder[cid] = payee
                wallets[payee].append(cid)
            elif mid == 3:
                if not self._purchase_issue(payer, payee):
                    continue
            elif mid == 2:
                # ISSUE_EXISTING: unissued coins exist only transiently
                # inside purchase+issue (in the reference too — _purchase is
                # only ever called by _purchase_issue, which issues the coin
                # immediately), so the method can never find one.
                continue
            elif mid == 4:
                if not self._deposit_purchase_issue(payer, payee):
                    continue
            elif not self._layered_transfer(payer, payee):
                continue
            self._made += 1
            self._by_slot[slot] += 1
            if self._track:
                self._per_payments[payer] += 1
            return
        self._failed += 1

    def _layered_transfer(self, payer: int, payee: int) -> bool:
        max_layers = self._max_layers
        owner = self._c_owner
        online = self._online
        layers = self._c_layers
        w = self._wallets[payer]
        found = -1
        for k in range(len(w)):
            cid = w[k]
            if layers[cid] < max_layers and not online[owner[cid]]:
                found = k
                break
        if found < 0:
            return False
        self._ops[_OP_LAYERED] += 1
        depth = layers[cid]
        if depth:
            self._micro_ver += depth
            self._micro_gver += depth
        depth += 1
        layers[cid] = depth
        self._layered_total += depth
        if depth > self._layered_max:
            self._layered_max = depth
        w[found] = w[-1]
        w.pop()
        self._c_holder[cid] = payee
        self._wallets[payee].append(cid)
        return True

    def _purchase_issue(self, payer: int, payee: int) -> bool:
        # Purchase and issue fused: the reference adds the new coin to the
        # payer's wallet and unissued stack, then immediately pops and issues
        # it to the payee — the transient state is unobservable, so the fast
        # engine creates the coin directly in its post-issue state.
        balance = self._balance[payer]
        if balance < self._coin_value:
            return False
        self._balance[payer] = balance - self._coin_value
        cid = self._n_coins
        self._n_coins = cid + 1
        self._ap_owner(payer)
        self._ap_holder(payee)
        self._ap_dirty(0)
        self._ap_check(0)
        self._ap_retired(0)
        self._ap_layers(0)
        self._ap_onext(self._owned_head[payer])
        self._owned_head[payer] = cid
        self._wallets[payee].append(cid)
        ops = self._ops
        ops[_OP_PURCHASE] += 1
        ops[_OP_ISSUE] += 1
        self._coins_created += 1
        if self._track:
            self._per_served[payer] += 1
        if self._detection:
            ops[_OP_DHT_PUBLISH] += 1
            ops[_OP_DHT_READ] += 1
        self._schedule_renewal(cid)
        return True

    def _deposit_purchase_issue(self, payer: int, payee: int) -> bool:
        owner = self._c_owner
        online = self._online
        w = self._wallets[payer]
        found = -1
        for k in range(len(w)):
            cid = w[k]
            if not online[owner[cid]]:
                found = k
                break
        if found < 0:
            return False
        w[found] = w[-1]
        w.pop()
        self._c_retired[cid] = 1
        self._c_layers[cid] = 0
        # Owner's owned-list entry is compacted lazily at the next walk.
        self._balance[payer] += self._coin_value
        self._ops[_OP_DEPOSIT] += 1
        self._coins_retired += 1
        return self._purchase_issue(payer, payee)

    # -- metrics ------------------------------------------------------------

    def _fold_metrics(self) -> None:
        metrics = self.metrics
        metrics.ops = Counter(
            {name: count for name, count in zip(OP_NAMES, self._ops) if count}
        )
        micro: Counter = Counter()
        if self._micro_ver:
            micro["ver"] = self._micro_ver
        if self._micro_gver:
            micro["gver"] = self._micro_gver
        metrics.extra_peer_micro = micro
        metrics.payments_attempted = self._cand_events
        metrics.payments_made = self._made
        metrics.payments_failed = self._failed
        metrics.payments_by_method = Counter(
            {
                name: count
                for name, count in zip(self.config.policy.preferences, self._by_slot)
                if count
            }
        )
        metrics.coins_created = self._coins_created
        metrics.coins_retired = self._coins_retired
        metrics.layered_depth_total = self._layered_total
        metrics.layered_depth_max = self._layered_max
        metrics.per_peer_served = self._per_served
        metrics.per_peer_payments = self._per_payments
        metrics.broker_restarts = self._restarts
        metrics.snapshots_taken = self._restarts
        metrics.recovery_records_replayed = self._replayed
        metrics.recovery_replay_cost = self._replay_cost
        metrics.events = self._cand_events + self._qevents


def build_simulation(config: SimConfig, engine: str | None = None):
    """Build the requested engine: ``fast``, ``reference`` or ``compat``.

    ``None`` (or the empty string) resolves through the
    ``WHOPAY_SIM_ENGINE`` environment override and then defaults to the
    struct-of-arrays ``fast`` engine — the measurement engine for every
    figure and benchmark.  ``reference`` (the original event loop) and
    ``compat`` (its bit-identical calendar-queue port) survive as
    equivalence oracles and must be requested explicitly.
    """
    if not engine:
        engine = os.environ.get("WHOPAY_SIM_ENGINE") or "fast"
    if engine == "fast":
        return FastSimulation(config)
    if engine == "reference":
        return Simulation(config)
    if engine == "compat":
        return EventSampledSimulation(config)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


