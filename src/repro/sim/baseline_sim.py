"""Baseline load models over the same simulated workload.

The ablation benchmark compares how the *same* payment workload loads the
broker under three protocol families:

* **WhoPay** — the measured :class:`~repro.sim.metrics.SimMetrics` as-is;
* **PPay** — identical operation routing (PPay and WhoPay share the
  owner-mediated architecture) but no group signatures anywhere, so peer
  CPU is cheaper while broker involvement is unchanged — the comparison the
  paper makes in Section 4.3 ("as secure and scalable as … PPay, while
  providing a much higher level of user anonymity");
* **Centralized** (Burk–Pfitzmann / Vo–Hohenberger) — every transfer and
  issue is broker-mediated and there is no owner role at all: no renewals
  via owners, no downtime protocol, no synchronization; every payment is
  one broker round trip.

PPay and the centralized system are *derived views* over the WhoPay
operation counts rather than separate event loops: the workload (who pays
whom when, who is online) is identical by construction, which is exactly
what makes the comparison apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.costs import MICRO_COST
from repro.sim.metrics import SimMetrics


@dataclass(frozen=True)
class LoadSummary:
    """Broker/peer load under one protocol family."""

    system: str
    broker_cpu: float
    peer_cpu_total: float
    broker_comm: float
    peer_comm_total: float

    @property
    def broker_cpu_share(self) -> float:
        """Broker fraction of total CPU load."""
        total = self.broker_cpu + self.peer_cpu_total
        return self.broker_cpu / total if total else 0.0

    @property
    def broker_comm_share(self) -> float:
        """Broker fraction of total communication load."""
        total = self.broker_comm + self.peer_comm_total
        return self.broker_comm / total if total else 0.0


def whopay_load(metrics: SimMetrics) -> LoadSummary:
    """The measured WhoPay loads, packaged for comparison."""
    return LoadSummary(
        system="whopay",
        broker_cpu=metrics.broker_cpu_load(),
        peer_cpu_total=metrics.peer_cpu_load_total(),
        broker_comm=metrics.broker_comm_load(),
        peer_comm_total=metrics.peer_comm_load_total(),
    )


# PPay micro-costs: WhoPay's table with every group signature replaced by a
# regular one on the identity key (PPay signs everything in the clear).
_PPAY_MICRO = {
    "purchase": ({"keygen": 0, "sig": 1, "ver": 1}, {"ver": 1, "sig": 1}, 2, 2),
    "issue": ({"sig": 2, "ver": 2}, {}, 4, 0),
    "transfer": ({"sig": 3, "ver": 3}, {}, 8, 0),
    "deposit": ({"sig": 1}, {"ver": 1, "sig": 1}, 2, 2),
    "renewal": ({"sig": 2, "ver": 2}, {}, 4, 0),
    "downtime_transfer": ({"sig": 1, "ver": 2}, {"ver": 2, "sig": 1}, 8, 2),
    "downtime_renewal": ({"sig": 1, "ver": 1}, {"ver": 2, "sig": 1}, 2, 2),
    "sync": ({"sig": 1, "ver": 1}, {"ver": 1, "sig": 1}, 4, 4),
    "check": ({"ver": 1}, {}, 2, 0),
    "lazy_sync": ({"ver": 1}, {}, 0, 0),
}


def ppay_load(metrics: SimMetrics) -> LoadSummary:
    """The same operation mix priced with PPay's (group-signature-free) costs."""
    broker_cpu = peer_cpu = broker_comm = peer_comm = 0.0
    for op, count in metrics.ops.items():
        peer_micro, broker_micro, peer_msgs, broker_msgs = _PPAY_MICRO[op]
        peer_cpu += count * sum(MICRO_COST[m] * n for m, n in peer_micro.items())
        broker_cpu += count * sum(MICRO_COST[m] * n for m, n in broker_micro.items())
        peer_comm += count * peer_msgs
        broker_comm += count * broker_msgs
    return LoadSummary(
        system="ppay",
        broker_cpu=broker_cpu,
        peer_cpu_total=peer_cpu,
        broker_comm=broker_comm,
        peer_comm_total=peer_comm,
    )


def centralized_load(metrics: SimMetrics) -> LoadSummary:
    """The same *payments* served by a fully centralized transfer system.

    Every payment (whatever method WhoPay used) is one broker-mediated
    transfer: holder envelope in, broker verification + re-bind + signed
    receipt out.  Purchases and deposits stay broker operations; renewals,
    downtime protocols, syncs, and checks do not exist.
    """
    transfer_broker_cpu = MICRO_COST["ver"] + MICRO_COST["gver"] + MICRO_COST["sig"]
    transfer_peer_cpu = (
        MICRO_COST["keygen"] + MICRO_COST["sig"] + MICRO_COST["gsig"] + MICRO_COST["ver"]
    )
    payments = metrics.payments_made
    purchases = metrics.ops.get("purchase", 0)
    deposits = metrics.ops.get("deposit", 0)

    broker_cpu = (
        payments * transfer_broker_cpu
        + purchases * (MICRO_COST["ver"] + MICRO_COST["sig"])
        + deposits * (MICRO_COST["ver"] + MICRO_COST["gver"] + MICRO_COST["sig"])
    )
    peer_cpu = (
        payments * transfer_peer_cpu
        + purchases * (MICRO_COST["keygen"] + MICRO_COST["sig"] + MICRO_COST["ver"])
        + deposits * (MICRO_COST["sig"] + MICRO_COST["gsig"])
    )
    # Per payment: payer<->payee offer (2 peer endpoints x2) + payer<->broker
    # round trip (1 endpoint each side x2 messages).
    broker_comm = payments * 2.0 + purchases * 2.0 + deposits * 2.0
    peer_comm = payments * 6.0 + purchases * 2.0 + deposits * 2.0
    return LoadSummary(
        system="centralized",
        broker_cpu=float(broker_cpu),
        peer_cpu_total=float(peer_cpu),
        broker_comm=broker_comm,
        peer_comm_total=peer_comm,
    )


def compare_systems(metrics: SimMetrics) -> list[LoadSummary]:
    """All three systems' loads for one run, WhoPay first."""
    return [whopay_load(metrics), ppay_load(metrics), centralized_load(metrics)]
