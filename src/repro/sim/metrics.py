"""Load metrics (paper Section 6.2).

:class:`SimMetrics` accumulates one counter per coarse operation, then
derives the quantities the figures plot:

* Figures 2/3 — broker operation counts (purchases, downtime transfers,
  downtime renewals, syncs);
* Figures 4/5 — average-per-peer operation counts (purchases, issues,
  transfers, renewals, downtime ops, checks, syncs);
* Figures 6/7 — broker CPU / communication load (counts × the
  :mod:`repro.sim.costs` weights);
* Figures 8/9 — broker-to-average-peer load ratios;
* Figures 10/11 — broker load *share* vs system size.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.costs import BROKER_OPS, MICRO_COST, OP_COSTS, PEER_OPS


@dataclass
class SimMetrics:
    """Operation counters and derived load figures for one run."""

    n_peers: int
    #: Multiplicative communication overhead from RPC retransmissions
    #: (expected attempts per logical message under the configured loss
    #: rate); 1.0 on loss-free links.  CPU load is unaffected — handlers
    #: run once thanks to idempotency-key dedupe.
    msg_overhead: float = 1.0
    ops: Counter = field(default_factory=Counter)
    #: Depth-dependent micro-operations (layered-chain verifications) that
    #: cannot be priced by a fixed per-op table; peer-side by definition.
    extra_peer_micro: Counter = field(default_factory=Counter)
    payments_attempted: int = 0
    payments_made: int = 0
    payments_failed: int = 0
    payments_by_method: Counter = field(default_factory=Counter)
    coins_created: int = 0
    coins_retired: int = 0
    layered_depth_total: int = 0
    layered_depth_max: int = 0
    #: Optional per-peer work tracking (enabled by SimConfig.track_per_peer):
    #: operations *served* by each peer in its owner role — the paper's
    #: "the more coins a peer issues, the more transfers and renewals he
    #: needs to handle".
    per_peer_served: Counter = field(default_factory=Counter)
    #: Payments initiated per peer (activity measure).
    per_peer_payments: Counter = field(default_factory=Counter)
    #: Broker crash/restart events modeled (SimConfig.broker_restarts).
    broker_restarts: int = 0
    #: Snapshots taken at the broker (one post-recovery compaction per
    #: restart in the current model).
    snapshots_taken: int = 0
    #: Total journal records replayed across all recoveries.
    recovery_records_replayed: int = 0
    #: CPU cost of recovery replay (Table 3 units); folded into
    #: :meth:`broker_cpu_load`.  Zero when no restarts are modeled, so the
    #: durability extension leaves the paper's figures untouched by default.
    recovery_replay_cost: float = 0.0
    #: Total simulation events processed (candidate payments, session
    #: toggles, renewals, broker restarts).  The throughput denominator for
    #: the scaling benchmark's events/sec figures; identical across engines
    #: for equivalent runs.
    events: int = 0
    #: Broker federation shards modeled (SimConfig.broker_shards); the
    #: per-shard counters below stay empty at 1 so the single-broker
    #: figures are untouched.
    broker_shards: int = 1
    #: Per-shard broker operation counters (index = shard); filled by the
    #: reference engine via :meth:`count_broker` when ``broker_shards > 1``.
    shard_ops: list = field(default_factory=list)
    #: Heartbeats emitted by the modeled lease-gated supervisor over the
    #: whole run (SimConfig.heartbeat_interval; 0 when unsupervised).
    #: Closed-form — shards × ⌊duration / interval⌋ — and applied
    #: identically by every engine, so equivalence checks stay exact.
    heartbeats_sent: int = 0
    #: Worst-case failure-detection latency implied by the configured
    #: detector (:meth:`repro.net.liveness.LivenessConfig.detection_window`);
    #: 0 when unsupervised.
    detection_window: float = 0.0

    def __post_init__(self) -> None:
        if self.broker_shards > 1 and not self.shard_ops:
            self.shard_ops = [Counter() for _ in range(self.broker_shards)]

    def count_recovery(self, records_replayed: int, replay_cost: float) -> None:
        """Record one broker restart: journal replay plus compaction snapshot."""
        self.broker_restarts += 1
        self.snapshots_taken += 1
        self.recovery_records_replayed += records_replayed
        self.recovery_replay_cost += replay_cost

    def count_served(self, peer_index: int, times: int = 1) -> None:
        """Record owner-side work served by ``peer_index``."""
        self.per_peer_served[peer_index] += times

    def count_payment_by(self, peer_index: int) -> None:
        """Record a payment initiated by ``peer_index``."""
        self.per_peer_payments[peer_index] += 1

    def served_distribution(self) -> list[int]:
        """Per-peer served-work counts, dense over all peers."""
        return [self.per_peer_served.get(i, 0) for i in range(self.n_peers)]

    def count(self, op: str, times: int = 1) -> None:
        """Record ``times`` occurrences of operation ``op``."""
        if op not in OP_COSTS:
            raise ValueError(f"unknown operation {op!r}")
        self.ops[op] += times

    def count_broker(self, op: str, shard: int = 0, times: int = 1) -> None:
        """Record a broker-side operation, attributed to federation ``shard``."""
        self.count(op, times)
        if self.shard_ops:
            self.shard_ops[shard][op] += times

    def count_micro(self, micro: str, times: int = 1) -> None:
        """Record peer-side micro-operations priced outside the op table."""
        if micro not in MICRO_COST:
            raise ValueError(f"unknown micro-operation {micro!r}")
        self.extra_peer_micro[micro] += times

    # -- figure 2/3: broker operation counts --------------------------------

    def broker_op_counts(self) -> dict[str, int]:
        """Counts of the operations the broker participates in."""
        return {op: self.ops[op] for op in BROKER_OPS}

    def per_shard_op_counts(self) -> list[dict[str, int]]:
        """Figure-2-shaped op counts, one dict per federation shard."""
        return [{op: ops[op] for op in BROKER_OPS} for ops in self.shard_ops]

    def per_shard_cpu_load(self) -> list[float]:
        """Figure-6-shaped CPU load per federation shard (Table 3 units).

        Recovery replay cost is not shard-attributed (restarts are modeled
        against the aggregate), so these sum to :meth:`broker_cpu_load`
        only in runs without modeled restarts.
        """
        return [
            float(sum(OP_COSTS[op].broker_cpu * count for op, count in ops.items()))
            for ops in self.shard_ops
        ]

    # -- figure 4/5: average peer operation counts ------------------------------

    def peer_op_counts_avg(self) -> dict[str, float]:
        """Average per-peer counts of the operations peers participate in."""
        return {op: self.ops[op] / self.n_peers for op in PEER_OPS}

    # -- figure 6/7: broker load ---------------------------------------------------

    def broker_cpu_load(self) -> float:
        """Total broker CPU load in Table 3 units (recovery replay included)."""
        fixed = sum(OP_COSTS[op].broker_cpu * count for op, count in self.ops.items())
        return float(fixed) + self.recovery_replay_cost

    def broker_comm_load(self) -> float:
        """Total broker communication load (message endpoints × retries).

        Supervision heartbeats (request + reply endpoints each) are charged
        here without the retry multiplier — the supervisor deliberately
        never retries a beat, because a missed beat *is* the signal.
        """
        return self.msg_overhead * float(
            sum(OP_COSTS[op].broker_msgs * count for op, count in self.ops.items())
        ) + 2.0 * self.heartbeats_sent

    def peer_cpu_load_total(self) -> float:
        """Total peer-side CPU load across all peers."""
        fixed = sum(OP_COSTS[op].peer_cpu * count for op, count in self.ops.items())
        dynamic = sum(MICRO_COST[m] * count for m, count in self.extra_peer_micro.items())
        return float(fixed + dynamic)

    def peer_comm_load_total(self) -> float:
        """Total peer-side communication load across all peers (× retries)."""
        return self.msg_overhead * float(
            sum(OP_COSTS[op].peer_msgs * count for op, count in self.ops.items())
        )

    # -- figure 8/9: broker / average-peer ratios ------------------------------------

    def cpu_load_ratio(self) -> float:
        """Broker CPU load over average peer CPU load."""
        per_peer = self.peer_cpu_load_total() / self.n_peers
        return self.broker_cpu_load() / per_peer if per_peer else float("inf")

    def comm_load_ratio(self) -> float:
        """Broker communication load over average peer communication load."""
        per_peer = self.peer_comm_load_total() / self.n_peers
        return self.broker_comm_load() / per_peer if per_peer else float("inf")

    # -- figure 10/11: broker share of total system load --------------------------------

    def broker_cpu_share(self) -> float:
        """Broker fraction of total (broker + peers) CPU load."""
        total = self.broker_cpu_load() + self.peer_cpu_load_total()
        return self.broker_cpu_load() / total if total else 0.0

    def broker_comm_share(self) -> float:
        """Broker fraction of total communication load."""
        total = self.broker_comm_load() + self.peer_comm_load_total()
        return self.broker_comm_load() / total if total else 0.0


def apply_heartbeat_model(metrics: SimMetrics, config) -> None:
    """Charge the PR 9 supervisor's heartbeat traffic to ``metrics``.

    Closed-form over the run horizon — one beat per shard per interval —
    so the reference and fast engines stay exactly equivalent, and a
    zero interval (the default) leaves every figure untouched.  The
    detection window comes from the *real* detector's configuration
    arithmetic, not a re-derivation, so the simulated bound is the one the
    chaos suite asserts against.
    """
    if config.heartbeat_interval <= 0.0:
        return
    from repro.net.liveness import LivenessConfig

    shards = max(1, config.broker_shards)
    metrics.heartbeats_sent = shards * int(config.duration / config.heartbeat_interval)
    metrics.detection_window = LivenessConfig(
        heartbeat_interval=config.heartbeat_interval,
        phi_threshold=config.detector_phi_threshold,
    ).detection_window()
