"""The WhoPay operation-level simulator (paper Section 6.1).

Event-driven simulation of the operation mix under churn.  Three event
types drive everything:

* **session toggles** — each peer alternates exponential online (mean µ) and
  offline (mean ν) sessions; rejoining triggers a synchronization
  (proactive mode) or marks the peer's owned coins stale (lazy mode);
* **candidate payments** — per-peer Poisson process, mean gap 5 minutes,
  uniformly random payee; a candidate becomes an actual payment iff the
  payee is online (the paper's thinning — the payer's own state is *not*
  part of the thinning, per the paper's "rate α per 5 minutes" statement);
* **renewals** — every issued coin is renewed at 90% of its renewal period;
  via the owner when online (a peer-served renewal), via the broker
  otherwise (a downtime renewal); a holder that is offline when renewal
  falls due performs it on rejoin.

Payments follow the configured policy's preference order
(:mod:`repro.sim.policies`), with a per-peer account balance gating
purchases: deposits (policy III's offline-coin recycling) replenish it.

The simulator counts coarse operations only; CPU and communication load are
derived afterwards through :mod:`repro.sim.costs` — exactly the paper's
methodology (crypto is benchmarked separately, Table 2).
"""

from __future__ import annotations

import bisect
import heapq
import random
from dataclasses import dataclass, field

from repro.sim import policies as pol
from repro.sim.config import SimConfig
from repro.sim.costs import BROKER_OPS, REPLAY_RECORD_COST, expected_attempts
from repro.sim.metrics import SimMetrics, apply_heartbeat_model

# event kinds (ordered so ties break deterministically)
_TOGGLE = 0
_PAYMENT = 1
_RENEWAL = 2
_RESTART = 3

#: Renew at this fraction of the renewal period after the last renewal.
RENEWAL_POINT = 0.9


class _Coin:
    """One simulated coin."""

    __slots__ = (
        "id", "owner", "holder", "issued", "exp",
        "broker_dirty", "needs_check", "retired", "layers",
    )

    def __init__(self, coin_id: int, owner: int) -> None:
        self.id = coin_id
        self.owner = owner
        self.holder = owner
        self.issued = False
        self.exp = 0.0
        self.broker_dirty = False  # authoritative binding is at the broker
        self.needs_check = False  # owner must consult public state (lazy)
        self.retired = False
        self.layers = 0  # signature layers stacked since the last binding


class _Peer:
    """One simulated peer."""

    __slots__ = ("online", "wallet", "unissued", "owned", "balance", "pending_renewals")

    def __init__(self, balance: float) -> None:
        self.online = True
        self.wallet: set[int] = set()  # coin ids held
        self.unissued: list[int] = []  # owned, never-issued coin ids
        self.owned: set[int] = set()  # owned *and issued* coin ids
        self.balance = balance
        self.pending_renewals: set[int] = set()


@dataclass
class SimResult:
    """Everything a figure bench needs from one run."""

    config: SimConfig
    metrics: SimMetrics
    final_time: float

    @property
    def availability(self) -> float:
        """The run's α = µ/(µ+ν)."""
        return self.config.availability


class Simulation:
    """One simulation run."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.metrics = SimMetrics(
            n_peers=config.n_peers,
            msg_overhead=expected_attempts(config.message_loss, config.rpc_max_attempts),
            broker_shards=config.broker_shards,
        )
        apply_heartbeat_model(self.metrics, config)
        self.now = 0.0
        balance = float("inf") if config.initial_balance is None else config.initial_balance
        self.peers = [_Peer(balance) for _ in range(config.n_peers)]
        self.coins: list[_Coin] = []
        self._heap: list[tuple[float, int, int, int]] = []
        self._seq = 0
        self._lazy = config.sync_mode == "lazy"
        self._track = config.track_per_peer
        self._shards = config.broker_shards
        self._detection = config.detection
        # Broker ops already covered by a snapshot; ops beyond this backlog
        # sit in the write-ahead journal and must be replayed on restart.
        self._ops_snapshotted = 0
        self._build_population()

    def _build_population(self) -> None:
        """Per-peer session/payment parameters (Section 6.2's two models).

        Uniform: every peer has the configured µ/ν and the same candidate
        rate, and payees are uniform — the paper's simulation.  Power-law:
        Zipf activity weights drive (a) the candidate payment rate, (b) the
        payee choice distribution, and (c) availability, which interpolates
        from the base α up to ``superpeer_max_availability`` with weight.
        Mean online session lengths stay at µ; offline means shrink to
        realize the boosted availability.
        """
        cfg = self.config
        n = cfg.n_peers
        if cfg.heterogeneity == "uniform":
            self._mean_online = [cfg.mean_online] * n
            self._mean_offline = [cfg.mean_offline] * n
            self._interval = [cfg.payment_interval] * n
            self._payee_cum: list[float] | None = None
            self._availability = [cfg.availability] * n
            return
        weights = [1.0 / (rank + 1) ** cfg.zipf_exponent for rank in range(n)]
        self.rng.shuffle(weights)  # decouple peer index from rank
        w_max = max(weights)
        base = cfg.availability
        cap = max(base, cfg.superpeer_max_availability)
        self._availability = [
            base + (cap - base) * (w / w_max) for w in weights
        ]
        self._mean_online = [cfg.mean_online] * n
        self._mean_offline = [
            cfg.mean_online * (1.0 - a) / a for a in self._availability
        ]
        # Keep the aggregate candidate rate at n per payment_interval while
        # distributing it by activity weight.
        total_weight = sum(weights)
        self._interval = [
            cfg.payment_interval * total_weight / (w * n) for w in weights
        ]
        cumulative: list[float] = []
        running = 0.0
        for w in weights:
            running += w
            cumulative.append(running)
        self._payee_cum = cumulative

    # -- event plumbing -----------------------------------------------------

    def _push(self, time: float, kind: int, subject: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, kind, self._seq, subject))

    def _exp(self, mean: float) -> float:
        return self.rng.expovariate(1.0 / mean)

    # -- federation shard attribution (PR 7) --------------------------------
    #
    # The event-level model does not hash real key material; a multiplicative
    # (Knuth) mix of the integer id stands in for the consistent-hash ring,
    # giving the same statistically uniform spread the real ShardMap does.

    def _coin_shard(self, coin_id: int) -> int:
        """The federation shard owning coin ``coin_id``."""
        return ((coin_id * 2654435761) & 0xFFFFFFFF) % self._shards

    def _peer_shard(self, index: int) -> int:
        """The federation shard owning peer ``index``'s account."""
        return (((index + 1013904223) * 2654435761) & 0xFFFFFFFF) % self._shards

    # -- setup ------------------------------------------------------------------

    def _initialize(self) -> None:
        for index, peer in enumerate(self.peers):
            # Start in the stationary regime so the run has no warm-up bias.
            peer.online = self.rng.random() < self._availability[index]
            mean = self._mean_online[index] if peer.online else self._mean_offline[index]
            self._push(self._exp(mean), _TOGGLE, index)
            self._push(self._exp(self._interval[index]), _PAYMENT, index)
        restarts = self.config.broker_restarts
        for i in range(1, restarts + 1):
            self._push(self.config.duration * i / (restarts + 1), _RESTART, 0)

    # -- run --------------------------------------------------------------------

    def run(self) -> SimResult:
        """Execute the configured run and return its metrics."""
        self._initialize()
        duration = self.config.duration
        heap = self._heap
        events = 0
        while heap:
            time, kind, _seq, subject = heapq.heappop(heap)
            if time > duration:
                break
            self.now = time
            events += 1
            if kind == _PAYMENT:
                self._on_payment(subject)
            elif kind == _TOGGLE:
                self._on_toggle(subject)
            elif kind == _RENEWAL:
                self._on_renewal_due(subject)
            else:
                self._on_broker_restart()
        self.metrics.events = events
        return SimResult(config=self.config, metrics=self.metrics, final_time=min(self.now, duration))

    # -- churn ------------------------------------------------------------------

    def _on_toggle(self, index: int) -> None:
        peer = self.peers[index]
        if peer.online:
            peer.online = False
            self._push(self.now + self._exp(self._mean_offline[index]), _TOGGLE, index)
        else:
            peer.online = True
            self._push(self.now + self._exp(self._mean_online[index]), _TOGGLE, index)
            self._on_rejoin(index, peer)

    def _on_rejoin(self, index: int, peer: _Peer) -> None:
        # "exactly one synchronization is performed for each peer join event"
        if self._lazy:
            for coin_id in peer.owned:
                self.coins[coin_id].needs_check = True
        elif self._shards == 1:
            self.metrics.count_broker("sync")
            for coin_id in peer.owned:
                self.coins[coin_id].broker_dirty = False
        else:
            # Federated: one sync per shard owning any of the peer's coins
            # (matching Peer.sync_with_broker's fan-out; a coinless peer
            # still pings its account's home shard).
            targets = {self._coin_shard(coin_id) for coin_id in peer.owned}
            for shard in sorted(targets) if targets else (self._peer_shard(index),):
                self.metrics.count_broker("sync", shard)
            for coin_id in peer.owned:
                self.coins[coin_id].broker_dirty = False
        # Catch up on renewals that fell due while offline.
        for coin_id in list(peer.pending_renewals):
            coin = self.coins[coin_id]
            if not coin.retired and coin.holder == index:
                self._renew(coin)
        peer.pending_renewals.clear()

    # -- broker restarts ---------------------------------------------------------

    def _on_broker_restart(self) -> None:
        """Crash + recover the broker: replay the journal since the last
        snapshot, then compact.

        Every broker-side operation appends one journal record under the
        write-ahead discipline, so the replay backlog is the broker op count
        accumulated since the previous snapshot.  Recovery re-verifies each
        record's signature (:data:`REPLAY_RECORD_COST` apiece) and ends with
        a compaction snapshot, which resets the backlog.  Clients ride out
        the outage through idempotent retries, so the operation mix itself
        is unchanged — restarts add CPU load, not failures.
        """
        journaled = sum(self.metrics.ops[op] for op in BROKER_OPS)
        backlog = journaled - self._ops_snapshotted
        self.metrics.count_recovery(backlog, backlog * REPLAY_RECORD_COST)
        self._ops_snapshotted = journaled

    # -- renewals ------------------------------------------------------------------

    def _schedule_renewal(self, coin: _Coin) -> None:
        coin.exp = self.now + self.config.renewal_period
        self._push(self.now + RENEWAL_POINT * self.config.renewal_period, _RENEWAL, coin.id)

    def _on_renewal_due(self, coin_id: int) -> None:
        coin = self.coins[coin_id]
        if coin.retired or not coin.issued:
            return
        holder = self.peers[coin.holder]
        if holder.online:
            self._renew(coin)
        else:
            holder.pending_renewals.add(coin_id)

    def _renew(self, coin: _Coin) -> None:
        owner_peer = self.peers[coin.owner]
        if owner_peer.online:
            self._owner_check(coin)
            self.metrics.count("renewal")
            if self._track:
                self.metrics.count_served(coin.owner)
        else:
            self.metrics.count_broker("downtime_renewal", self._coin_shard(coin.id))
            coin.broker_dirty = True
        self._detection_update()
        self._schedule_renewal(coin)

    def _detection_update(self, reads: int = 0) -> None:
        """Section 5.1 overhead: one publish per binding update, plus the
        payee's verify-before-accept reads."""
        if not self._detection:
            return
        self.metrics.count("dht_publish")
        if reads:
            self.metrics.count("dht_read", reads)

    def _owner_check(self, coin: _Coin) -> None:
        """Lazy-sync check before the owner serves a request for this coin."""
        if self._lazy and coin.needs_check:
            self.metrics.count("check")
            if coin.broker_dirty:
                self.metrics.count("lazy_sync")
                coin.broker_dirty = False
            coin.needs_check = False

    # -- payments --------------------------------------------------------------------

    def _on_payment(self, payer_index: int) -> None:
        cfg = self.config
        self._push(self.now + self._exp(self._interval[payer_index]), _PAYMENT, payer_index)
        self.metrics.payments_attempted += 1
        if cfg.require_payer_online and not self.peers[payer_index].online:
            return  # offline payers make no payments (see SimConfig note)
        payee_index = self._pick_payee(payer_index)
        if not self.peers[payee_index].online:
            return  # candidate did not materialize (paper's thinning)
        for method in cfg.policy.preferences:
            if self._try_method(method, payer_index, payee_index):
                self.metrics.payments_made += 1
                self.metrics.payments_by_method[method] += 1
                if self._track:
                    self.metrics.count_payment_by(payer_index)
                return
        self.metrics.payments_failed += 1

    def _pick_payee(self, payer_index: int) -> int:
        """Uniform payee in the paper's model; weight-proportional under
        the power-law population ("peers are more willing to do business
        with such super peers")."""
        if self._payee_cum is None:
            payee_index = self.rng.randrange(self.config.n_peers - 1)
            if payee_index >= payer_index:
                payee_index += 1
            return payee_index
        total = self._payee_cum[-1]
        while True:
            payee_index = bisect.bisect_left(self._payee_cum, self.rng.random() * total)
            if payee_index != payer_index:
                return min(payee_index, self.config.n_peers - 1)

    def _try_method(self, method: str, payer: int, payee: int) -> bool:
        if method == pol.TRANSFER_ONLINE:
            return self._transfer(payer, payee, owner_online=True)
        if method == pol.TRANSFER_OFFLINE:
            return self._transfer(payer, payee, owner_online=False)
        if method == pol.ISSUE_EXISTING:
            return self._issue_existing(payer, payee)
        if method == pol.PURCHASE_ISSUE:
            return self._purchase_issue(payer, payee)
        if method == pol.DEPOSIT_PURCHASE_ISSUE:
            return self._deposit_purchase_issue(payer, payee)
        if method == pol.LAYERED_OFFLINE:
            return self._layered_transfer(payer, payee)
        raise ValueError(f"unknown method {method!r}")

    def _find_held(self, payer: int, owner_online: bool) -> _Coin | None:
        wallet = self.peers[payer].wallet
        for coin_id in wallet:
            coin = self.coins[coin_id]
            if not coin.issued:
                continue  # owner-held unissued coins are spent via ISSUE only
            if self.peers[coin.owner].online == owner_online:
                return coin
        return None

    def _move_coin(self, coin: _Coin, payer: int, payee: int) -> None:
        self.peers[payer].wallet.discard(coin.id)
        self.peers[payer].pending_renewals.discard(coin.id)
        coin.holder = payee
        self.peers[payee].wallet.add(coin.id)

    def _transfer(self, payer: int, payee: int, owner_online: bool) -> bool:
        coin = self._find_held(payer, owner_online)
        if coin is None:
            return False
        if owner_online:
            self._owner_check(coin)
            self.metrics.count("transfer")
            if self._track:
                self.metrics.count_served(coin.owner)
        else:
            self.metrics.count_broker("downtime_transfer", self._coin_shard(coin.id))
            coin.broker_dirty = True
        self._detection_update(reads=1)  # payee verifies the public binding
        # Owner- or broker-served operations collapse any layered chain into
        # a fresh binding (the depth-dependent verification of the old chain
        # is already accounted when the layers were added/verified).
        coin.layers = 0
        self._move_coin(coin, payer, payee)
        return True

    def _layered_transfer(self, payer: int, payee: int) -> bool:
        """Section 7 fallback: move an offline coin by stacking a layer.

        No broker, no owner — purely payer↔payee.  The payee must verify the
        whole chain (base binding plus every existing layer), so its
        verification cost grows with depth; that dynamic part is recorded as
        extra micro-operations.
        """
        wallet = self.peers[payer].wallet
        coin = None
        for coin_id in wallet:
            candidate = self.coins[coin_id]
            if not candidate.issued or candidate.layers >= self.config.max_layers:
                continue
            if not self.peers[candidate.owner].online:
                coin = candidate
                break
        if coin is None:
            return False
        self.metrics.count("layered_transfer")
        if coin.layers:
            self.metrics.count_micro("ver", coin.layers)
            self.metrics.count_micro("gver", coin.layers)
        coin.layers += 1
        self.metrics.layered_depth_total += coin.layers
        self.metrics.layered_depth_max = max(self.metrics.layered_depth_max, coin.layers)
        self._move_coin(coin, payer, payee)
        return True

    def _issue_existing(self, payer: int, payee: int) -> bool:
        peer = self.peers[payer]
        if not peer.unissued:
            return False
        coin = self.coins[peer.unissued.pop()]
        coin.issued = True
        peer.owned.add(coin.id)
        self.metrics.count("issue")
        if self._track:
            self.metrics.count_served(payer)
        self._detection_update(reads=1)
        self._move_coin(coin, payer, payee)
        self._schedule_renewal(coin)
        return True

    def _purchase(self, payer: int) -> bool:
        peer = self.peers[payer]
        if peer.balance < self.config.coin_value:
            return False
        peer.balance -= self.config.coin_value
        coin = _Coin(len(self.coins), payer)
        self.coins.append(coin)
        peer.wallet.add(coin.id)
        peer.unissued.append(coin.id)
        self.metrics.count_broker("purchase", self._peer_shard(payer))
        self.metrics.coins_created += 1
        return True

    def _purchase_issue(self, payer: int, payee: int) -> bool:
        if not self._purchase(payer):
            return False
        return self._issue_existing(payer, payee)

    def _deposit_purchase_issue(self, payer: int, payee: int) -> bool:
        coin = self._find_held(payer, owner_online=False)
        if coin is None:
            return False
        peer = self.peers[payer]
        peer.wallet.discard(coin.id)
        peer.pending_renewals.discard(coin.id)
        coin.retired = True
        coin.layers = 0
        self.peers[coin.owner].owned.discard(coin.id)
        peer.balance += self.config.coin_value
        self.metrics.count_broker("deposit", self._coin_shard(coin.id))
        self.metrics.coins_retired += 1
        return self._purchase_issue(payer, payee)
