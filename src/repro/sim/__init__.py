"""Operation-level discrete-event simulator (paper Section 6).

The paper evaluates WhoPay by simulating the *operation mix* — not the
cryptography — under peer churn, and then weighting operation counts by the
measured/assumed micro-operation costs of Tables 2 and 3.  This package is
that methodology, faithfully:

* :mod:`repro.sim.config` — the Table 1 setups (A: 1000 peers, µ swept from
  15 min to 32 h; B: 100–1000 peers at 50% availability) plus scaled-down
  presets for CI-speed benchmarking.
* :mod:`repro.sim.policies` — payment-method preference orders: Policy I
  (user-centric), II.a/II.b (middle grounds), III (broker-centric).
* :mod:`repro.sim.costs` — micro-operation counts per coarse operation and
  the Table 3 relative CPU weights; message counts for communication load.
* :mod:`repro.sim.simulator` — the reference event loop: exponential on/off
  sessions, per-peer Poisson candidate payments (1 per 5 min) thinned by
  payee availability, 3-day renewal period, proactive or lazy
  synchronization.
* :mod:`repro.sim.engine` — the scaling engines (``docs/SIMULATOR.md``):
  the bit-identical calendar-queue "compat" engine and the million-peer
  "fast" engine (struct-of-arrays state, batched sampling, optional numpy
  accelerator), selected via :func:`build_simulation`.
* :mod:`repro.sim.metrics` — per-operation counters and the CPU /
  communication load aggregates of Figures 2–11.
* :mod:`repro.sim.runner` — parameter sweeps that produce each figure's
  series (engine selection, process-pool fan-out, profiling hooks).
* :mod:`repro.sim.figures` — one-call regeneration of every figure's data.
* :mod:`repro.sim.baseline_sim` — the same workload driven against PPay and
  a fully centralized system (ablation comparisons).
"""

from repro.sim.config import (
    SimConfig,
    setup_a_configs,
    setup_b_configs,
    setup_b_point,
)
from repro.sim.engine import ENGINES, build_simulation
from repro.sim.metrics import SimMetrics
from repro.sim.policies import POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III, Policy
from repro.sim.runner import (
    run_availability_sweep,
    run_one,
    run_replicated,
    run_scaling_sweep,
    run_sweep_parallel,
)
from repro.sim.simulator import SimResult, Simulation

__all__ = [
    "SimConfig",
    "setup_a_configs",
    "setup_b_configs",
    "setup_b_point",
    "Policy",
    "POLICY_I",
    "POLICY_II_A",
    "POLICY_II_B",
    "POLICY_III",
    "Simulation",
    "SimResult",
    "SimMetrics",
    "ENGINES",
    "build_simulation",
    "run_one",
    "run_replicated",
    "run_availability_sweep",
    "run_scaling_sweep",
    "run_sweep_parallel",
]
