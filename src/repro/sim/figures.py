"""One-call regeneration of every figure's data (paper Section 6.2).

:func:`generate_all` runs the four Setup-A configurations and the four
Setup-B configurations once each and derives the data series behind every
figure (2–11), returning them as a dict and optionally writing one CSV per
figure plus a combined plain-text report.  The CLI exposes this as
``python -m repro figures``.

This module is about *convenience packaging*; the per-figure shape
assertions live in the benchmark suite, which remains the verification
path.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.analysis.tables import format_series_table
from repro.sim.policies import POLICY_I, POLICY_III
from repro.sim.runner import run_availability_sweep, run_scaling_sweep

CONFIGS = (
    ("I", "proactive"),
    ("I", "lazy"),
    ("III", "proactive"),
    ("III", "lazy"),
)

_POLICIES = {"I": POLICY_I, "III": POLICY_III}

#: Figure id -> (x key, [(series label, row key)], which sweep, which configs)
_FIGURES: dict[str, dict[str, Any]] = {
    "fig2": {
        "title": "Broker Load: Policy I + Pro Sync",
        "sweep": "A",
        "config": ("I", "proactive"),
        "series": [
            ("purchases", "broker_purchase"),
            ("downtime_transfers", "broker_downtime_transfer"),
            ("downtime_renewals", "broker_downtime_renewal"),
            ("syncs", "broker_sync"),
        ],
    },
    "fig3": {
        "title": "Broker Load: Policy I + Lazy Sync",
        "sweep": "A",
        "config": ("I", "lazy"),
        "series": [
            ("purchases", "broker_purchase"),
            ("downtime_transfers", "broker_downtime_transfer"),
            ("downtime_renewals", "broker_downtime_renewal"),
        ],
    },
    "fig4": {
        "title": "Average Peer Load: Policy I + Pro Sync",
        "sweep": "A",
        "config": ("I", "proactive"),
        "series": [
            ("purchases", "peer_avg_purchase"),
            ("issues", "peer_avg_issue"),
            ("transfers", "peer_avg_transfer"),
            ("renewals", "peer_avg_renewal"),
            ("downtime_transfers", "peer_avg_downtime_transfer"),
            ("downtime_renewals", "peer_avg_downtime_renewal"),
            ("syncs", "peer_avg_sync"),
        ],
    },
    "fig5": {
        "title": "Average Peer Load: Policy I + Lazy Sync",
        "sweep": "A",
        "config": ("I", "lazy"),
        "series": [
            ("purchases", "peer_avg_purchase"),
            ("issues", "peer_avg_issue"),
            ("transfers", "peer_avg_transfer"),
            ("renewals", "peer_avg_renewal"),
            ("downtime_transfers", "peer_avg_downtime_transfer"),
            ("downtime_renewals", "peer_avg_downtime_renewal"),
            ("checks", "peer_avg_check"),
        ],
    },
    "fig6": {"title": "Broker CPU Load", "sweep": "A", "multi": "broker_cpu"},
    "fig7": {"title": "Broker Communication Load", "sweep": "A", "multi": "broker_comm"},
    "fig8": {"title": "Broker-Peer CPU Load Ratio", "sweep": "A", "multi": "cpu_ratio"},
    "fig9": {"title": "Broker-Peer Communication Load Ratio", "sweep": "A", "multi": "comm_ratio"},
    "fig10": {"title": "Broker CPU Load Scaling", "sweep": "B", "multi": "broker_cpu_share"},
    "fig11": {"title": "Broker Communication Load Scaling", "sweep": "B", "multi": "broker_comm_share"},
}


def generate_all(
    small: bool = True,
    out_dir: str | Path | None = None,
    engine: str | None = None,
) -> dict[str, dict[str, Any]]:
    """Run the sweeps and derive every figure's series.

    Returns ``{figure_id: {"title", "x_label", "x", series...}}``; when
    ``out_dir`` is given, also writes ``<figure>.csv`` per figure and a
    combined ``figures.txt`` report there.  ``engine`` selects the
    simulation engine (see :func:`repro.sim.engine.build_simulation`);
    the default resolves to the fast engine.
    """
    sweeps_a = {
        cfg: run_availability_sweep(_POLICIES[cfg[0]], cfg[1], small=small, engine=engine)
        for cfg in CONFIGS
    }
    sweeps_b = {
        cfg: run_scaling_sweep(_POLICIES[cfg[0]], cfg[1], small=small, engine=engine)
        for cfg in CONFIGS
    }

    figures: dict[str, dict[str, Any]] = {}
    for figure_id, spec in _FIGURES.items():
        if spec["sweep"] == "A":
            x_label = "mu_hours"
            rows_by_config = sweeps_a
        else:
            x_label = "n_peers"
            rows_by_config = sweeps_b
        if "series" in spec:
            rows = rows_by_config[spec["config"]]
            x = [row[x_label] for row in rows]
            series = {label: [row[key] for row in rows] for label, key in spec["series"]}
        else:
            key = spec["multi"]
            reference = rows_by_config[CONFIGS[0]]
            x = [row[x_label] for row in reference]
            series = {
                f"{policy}+{sync[:4]}": [row[key] for row in rows_by_config[(policy, sync)]]
                for policy, sync in CONFIGS
            }
        figures[figure_id] = {"title": spec["title"], "x_label": x_label, "x": x, "series": series}

    if out_dir is not None:
        _write(figures, Path(out_dir))
    return figures


def _write(figures: dict[str, dict[str, Any]], out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    report_parts: list[str] = []
    for figure_id, data in figures.items():
        with open(out_dir / f"{figure_id}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([data["x_label"], *data["series"].keys()])
            for i, x in enumerate(data["x"]):
                writer.writerow([x, *(values[i] for values in data["series"].values())])
        report_parts.append(
            format_series_table(
                data["x_label"], data["x"], data["series"],
                title=f"{figure_id}: {data['title']}",
            )
        )
    (out_dir / "figures.txt").write_text("\n\n".join(report_parts) + "\n")
