"""Operation cost model (paper Tables 2 & 3 and Section 6.2).

The paper converts operation counts into CPU and communication load:

* **CPU** — each coarse operation decomposes into micro-operations (key pair
  generations, signature generations/verifications, group signature
  generations/verifications) whose *relative* costs are Table 3: keygen 1,
  regular sig gen/verify 2, group sig gen/verify 4 (the paper's "wild guess"
  that efficient group signatures cost twice DSA).
* **Communication** — "the communication cost of each operation [is]
  proportional to the number of messages sent/received".

The micro-operation decomposition below is derived from the Section 4.2
protocol descriptions.  The transfer row is pinned to the paper's own
statement ("each transfer involves 1 key pair generation, 4 signature
generations, 4 signature verifications, 1 group signature generation, and 1
group signature verification" for the peers); the other rows follow the same
derivation style.  Broker-side and peer-side costs are kept separate because
the figures plot them separately (broker load: Figures 6/7; peer load and
ratios: Figures 8/9).
"""

from __future__ import annotations

from dataclasses import dataclass

def expected_attempts(loss: float, max_attempts: int) -> float:
    """Expected RPC attempts per logical message under per-attempt loss.

    With independent per-attempt failure probability ``loss`` and up to
    ``max_attempts`` tries, the attempt count is a truncated geometric
    variable with mean ``(1 - loss**n) / (1 - loss)``.  The simulator uses
    this as a multiplicative overhead on communication load: every message
    endpoint in the cost tables is paid once per attempt, so lossy links
    inflate comm load without changing the CPU-side accounting.
    """
    if not 0.0 <= loss < 1.0:
        raise ValueError("loss must be in [0, 1)")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if loss == 0.0:
        return 1.0
    return (1.0 - loss**max_attempts) / (1.0 - loss)


#: Table 3 — relative CPU cost of each micro-operation.
MICRO_COST = {
    "keygen": 1,
    "sig": 2,  # regular signature generation
    "ver": 2,  # regular signature verification
    "gsig": 4,  # group signature generation
    "gver": 4,  # group signature verification
}


@dataclass(frozen=True)
class OpCost:
    """Cost of one coarse operation, split by side.

    ``peer_micro`` / ``broker_micro`` map micro-operation names to counts —
    peer counts are aggregated over *all* peers participating in the
    operation (payer + payee + owner), matching the paper's accounting.
    ``peer_msgs`` / ``broker_msgs`` count message *endpoints* (a message
    between two peers adds 2 to the peer side; a peer↔broker message adds 1
    to each side).
    """

    peer_micro: dict[str, int]
    broker_micro: dict[str, int]
    peer_msgs: int
    broker_msgs: int

    @property
    def peer_cpu(self) -> int:
        """Weighted peer-side CPU cost (Table 3 units)."""
        return sum(MICRO_COST[name] * count for name, count in self.peer_micro.items())

    @property
    def broker_cpu(self) -> int:
        """Weighted broker-side CPU cost (Table 3 units)."""
        return sum(MICRO_COST[name] * count for name, count in self.broker_micro.items())


#: Per-operation cost table.  Derivations (Section 4.2 message flows):
#:
#: purchase         U↔B, 2 msgs.  U: coin keygen, sign request, verify coin.
#:                  B: verify request, sign coin.
#: issue            U↔V, 4 msgs (key+nonce, coin, proof+binding, ack).
#:                  V: holder keygen, gsig on its messages, 3 verifies
#:                  (coin, ownership proof, binding).  U: 3 sigs (coin send,
#:                  proof, binding), 1 gver.
#: transfer         V↔W offer, V↔U request, U↔W complete: 6 msgs.  Pinned to
#:                  the paper's stated totals.
#: deposit          W↔B, 2 msgs.  W: sig + gsig.  B: ver + gver + sig(receipt).
#: renewal          W↔U, 2 msgs.  W: sig + gsig + verify new binding.
#:                  U: ver + gver + sign new binding.
#: downtime_transfer V↔W offer, V↔B request, V↔W relay: 6 msgs (2 at broker).
#:                  Peers: keygen(W) + sig(V) + gsig(V) + 2 vers (V, W check
#:                  the broker binding).  B: 2 vers (request + owner-signed
#:                  proof or state compare) + gver + sig.
#: downtime_renewal V↔B, 2 msgs.  V: sig + gsig + ver.  B: 2 vers + gver + sig.
#: sync             U↔B challenge + response: 4 msgs.  U: sig + ver of the
#:                  returned bindings.  B: ver + sig.
#: check            one DHT read (2 msgs at the peer, none at the broker,
#:                  DHT infrastructure excluded as in the paper): verify the
#:                  published binding.
#: lazy_sync        local adoption of the checked binding: one extra verify.
OP_COSTS: dict[str, OpCost] = {
    "purchase": OpCost(
        peer_micro={"keygen": 1, "sig": 1, "ver": 1},
        broker_micro={"ver": 1, "sig": 1},
        peer_msgs=2,
        broker_msgs=2,
    ),
    "issue": OpCost(
        peer_micro={"keygen": 1, "sig": 3, "ver": 3, "gsig": 1, "gver": 1},
        broker_micro={},
        peer_msgs=8,
        broker_msgs=0,
    ),
    "transfer": OpCost(
        peer_micro={"keygen": 1, "sig": 4, "ver": 4, "gsig": 1, "gver": 1},
        broker_micro={},
        peer_msgs=12,
        broker_msgs=0,
    ),
    "deposit": OpCost(
        peer_micro={"sig": 1, "gsig": 1},
        broker_micro={"ver": 1, "gver": 1, "sig": 1},
        peer_msgs=2,
        broker_msgs=2,
    ),
    "renewal": OpCost(
        peer_micro={"sig": 2, "ver": 2, "gsig": 1, "gver": 1},
        broker_micro={},
        peer_msgs=4,
        broker_msgs=0,
    ),
    "downtime_transfer": OpCost(
        peer_micro={"keygen": 1, "sig": 1, "ver": 2, "gsig": 1},
        broker_micro={"ver": 2, "gver": 1, "sig": 1},
        peer_msgs=10,
        broker_msgs=2,
    ),
    "downtime_renewal": OpCost(
        peer_micro={"sig": 1, "ver": 1, "gsig": 1},
        broker_micro={"ver": 2, "gver": 1, "sig": 1},
        peer_msgs=2,
        broker_msgs=2,
    ),
    "sync": OpCost(
        peer_micro={"sig": 1, "ver": 1},
        broker_micro={"ver": 1, "sig": 1},
        peer_msgs=4,
        broker_msgs=4,
    ),
    "check": OpCost(
        peer_micro={"ver": 1},
        broker_micro={},
        peer_msgs=2,
        broker_msgs=0,
    ),
    "lazy_sync": OpCost(
        peer_micro={"ver": 1},
        broker_micro={},
        peer_msgs=0,
        broker_msgs=0,
    ),
    # Real-time detection (Section 5.1), op-level model.  A publish is one
    # access-controlled DHT put: O(log n) routing messages (modelled at 4
    # endpoint-counts), signature validation at the storing node (attributed
    # to the DHT infrastructure, not the peers, per the paper's trusted-
    # service assumption), plus one push notification to the subscribed
    # holder.  A read is the payee's verify-before-accept fetch: routing
    # plus one signature verification by the reader.
    "dht_publish": OpCost(
        peer_micro={},
        broker_micro={},
        peer_msgs=6,  # 4 routing endpoints + 2 notification endpoints
        broker_msgs=0,
    ),
    "dht_read": OpCost(
        peer_micro={"ver": 1},
        broker_micro={},
        peer_msgs=4,
        broker_msgs=0,
    ),
    # Layered offline transfer (Section 7): the base cost covers the new
    # layer (holder keygen for the recipient, one signature, one group
    # signature) and the direct payer->payee exchange; the payee's chain
    # verification is depth-dependent and accounted dynamically by the
    # simulator via SimMetrics.count_micro (one ver + one gver per existing
    # layer).
    "layered_transfer": OpCost(
        peer_micro={"keygen": 1, "sig": 1, "gsig": 1, "ver": 1, "gver": 1},
        broker_micro={},
        peer_msgs=4,
        broker_msgs=0,
    ),
}

#: Stable enumeration of the coarse operations.  The fast engine
#: (:mod:`repro.sim.engine`) accumulates counts into a flat list indexed by
#: position here instead of hashing operation names per event; the list is
#: folded back into :class:`repro.sim.metrics.SimMetrics` once per run.
OP_NAMES: tuple[str, ...] = tuple(OP_COSTS)

#: Operation name → index into :data:`OP_NAMES`-shaped flat arrays.
OP_INDEX: dict[str, int] = {name: index for index, name in enumerate(OP_NAMES)}

#: Stable enumeration of the Table 3 micro-operations (same purpose).
MICRO_NAMES: tuple[str, ...] = tuple(MICRO_COST)

#: Micro-operation name → index into :data:`MICRO_NAMES`-shaped arrays.
MICRO_INDEX: dict[str, int] = {name: index for index, name in enumerate(MICRO_NAMES)}

#: Operation types that appear in the broker-load figures (2, 3, 6, 7).
BROKER_OPS = ("purchase", "deposit", "downtime_transfer", "downtime_renewal", "sync")

#: CPU cost of replaying one write-ahead-journal record during broker
#: recovery.  Replay applies the recorded mutation (bookkeeping, ~free in
#: Table 3 units) and re-verifies the signature the record carries — coin
#: certificates for mints and top-ups, deposit envelopes, downtime
#: bindings — so each record costs one regular verification.  Batch
#: verification amortizes the modular exponentiations but still pays one
#: per-item check, so the per-record unit cost is the honest model.
REPLAY_RECORD_COST = MICRO_COST["ver"]

#: Operation types that appear in the peer-load figures (4, 5).
PEER_OPS = (
    "purchase",
    "issue",
    "transfer",
    "renewal",
    "downtime_transfer",
    "downtime_renewal",
    "check",
    "lazy_sync",
    "sync",
    "layered_transfer",
    "dht_publish",
    "dht_read",
)
