"""Payment-method preference policies (paper Section 6.1).

Each policy is an ordered tuple of payment methods tried in turn for every
actual payment event:

* ``TRANSFER_ONLINE`` — transfer a held coin whose owner is online, via the
  owner (the cheapest for the broker, the paper's universally-first choice).
* ``TRANSFER_OFFLINE`` — transfer a held coin whose owner is offline, via
  the broker (a downtime transfer).
* ``ISSUE_EXISTING`` — issue a coin the payer owns and has not yet issued.
* ``PURCHASE_ISSUE`` — buy a new coin from the broker, then issue it.
* ``DEPOSIT_PURCHASE_ISSUE`` — deposit a held offline coin at the broker,
  then purchase and issue a new one (policy III's way of converting an
  offline coin into an online one: "doing this effectively moves the
  ownership of the coins from an offline peer to an online peer").

The paper details policies I and III and says II "covers the middle ground"
without specifics; we define the two natural interleavings as II.a and II.b
(recorded as an interpretation in DESIGN.md §1.8).
"""

from __future__ import annotations

from dataclasses import dataclass

TRANSFER_ONLINE = "transfer_online"
TRANSFER_OFFLINE = "transfer_offline"
ISSUE_EXISTING = "issue_existing"
PURCHASE_ISSUE = "purchase_issue"
DEPOSIT_PURCHASE_ISSUE = "deposit_purchase_issue"
#: Section 7's broker-free alternative for offline coins: append a signature
#: layer instead of contacting the broker ("layered coins can be a
#: lightweight alternative to transfer-via-broker when coin owners are
#: offline"), bounded by the configured maximum layer count.
LAYERED_OFFLINE = "layered_offline"

ALL_METHODS = (
    TRANSFER_ONLINE,
    TRANSFER_OFFLINE,
    ISSUE_EXISTING,
    PURCHASE_ISSUE,
    DEPOSIT_PURCHASE_ISSUE,
    LAYERED_OFFLINE,
)


@dataclass(frozen=True)
class Policy:
    """A named payment-method preference order."""

    name: str
    preferences: tuple[str, ...]
    description: str

    def __post_init__(self) -> None:
        for method in self.preferences:
            if method not in ALL_METHODS:
                raise ValueError(f"unknown payment method {method!r}")


#: Policy I — user-centric: "each peer tries to get rid of coins received
#: from other peers as quickly as possible", offline coins go via the broker.
POLICY_I = Policy(
    name="I",
    preferences=(
        TRANSFER_ONLINE,
        TRANSFER_OFFLINE,
        ISSUE_EXISTING,
        PURCHASE_ISSUE,
    ),
    description="user-centric: spend held coins first, offline ones via the broker",
)

#: Policy II.a — middle ground, offline transfers before new purchases.
POLICY_II_A = Policy(
    name="II.a",
    preferences=(
        TRANSFER_ONLINE,
        ISSUE_EXISTING,
        TRANSFER_OFFLINE,
        PURCHASE_ISSUE,
    ),
    description="middle ground: prefer issuing over bothering the broker, but "
    "still move offline coins through the broker before buying new ones",
)

#: Policy II.b — middle ground, new purchases before offline transfers.
POLICY_II_B = Policy(
    name="II.b",
    preferences=(
        TRANSFER_ONLINE,
        ISSUE_EXISTING,
        PURCHASE_ISSUE,
        TRANSFER_OFFLINE,
    ),
    description="middle ground: only touch offline coins when even purchasing "
    "is impossible",
)

#: Policy III — broker-centric: "each peer tries to avoid dealing with the
#: broker as much as possible"; offline coins are deposited and replaced.
POLICY_III = Policy(
    name="III",
    preferences=(
        TRANSFER_ONLINE,
        ISSUE_EXISTING,
        PURCHASE_ISSUE,
        DEPOSIT_PURCHASE_ISSUE,
    ),
    description="broker-centric: avoid the broker; recycle offline coins by "
    "deposit-then-purchase, moving ownership onto online peers",
)

#: Policy I with the Section 7 layered-coin fallback replacing downtime
#: transfers: offline coins move by signature stacking, broker untouched.
POLICY_I_LAYERED = Policy(
    name="I.layered",
    preferences=(
        TRANSFER_ONLINE,
        LAYERED_OFFLINE,
        TRANSFER_OFFLINE,  # only once a coin hits the layer cap
        ISSUE_EXISTING,
        PURCHASE_ISSUE,
    ),
    description="user-centric with layered-coin offline transfers; the "
    "broker handles an offline coin only after the layer cap is reached",
)

POLICIES = {p.name: p for p in (POLICY_I, POLICY_II_A, POLICY_II_B, POLICY_III, POLICY_I_LAYERED)}


def policy_by_name(name: str) -> Policy:
    """Look up a policy ("I", "II.a", "II.b", "III")."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; choose from {sorted(POLICIES)}") from None
