"""Sweep drivers producing the figures' data series (paper Section 6.2).

Each function runs one family of simulations and returns a list of
per-point result rows (plain dicts, ready for table printing or asserting);
the figure benchmarks under ``benchmarks/`` are thin wrappers over these.

Sweep points are independent simulations, so the drivers can fan them out
over a process pool (:func:`run_sweep_parallel`).  Determinism is preserved:
every point carries its own seed inside its :class:`SimConfig`, workers
share no state, and results are returned in submission order — the parallel
path produces bit-identical rows to the sequential one.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Sequence

from repro.core.clock import HOUR
from repro.sim.config import SimConfig, setup_a_configs, setup_b_configs
from repro.sim.policies import Policy
from repro.sim.simulator import Simulation


def run_one(config: SimConfig) -> dict[str, Any]:
    """Run a single configuration and flatten its metrics into a row."""
    result = Simulation(config).run()
    metrics = result.metrics
    row: dict[str, Any] = {
        "mu_hours": config.mean_online / HOUR,
        "nu_hours": config.mean_offline / HOUR,
        "n_peers": config.n_peers,
        "policy": config.policy.name,
        "sync": config.sync_mode,
        "availability": config.availability,
        "payments_made": metrics.payments_made,
        "broker_cpu": metrics.broker_cpu_load(),
        "broker_comm": metrics.broker_comm_load(),
        "cpu_ratio": metrics.cpu_load_ratio(),
        "comm_ratio": metrics.comm_load_ratio(),
        "broker_cpu_share": metrics.broker_cpu_share(),
        "broker_comm_share": metrics.broker_comm_share(),
    }
    for op, count in metrics.broker_op_counts().items():
        row[f"broker_{op}"] = count
    for op, avg in metrics.peer_op_counts_avg().items():
        row[f"peer_avg_{op}"] = avg
    return row


# -- process-pool plumbing ----------------------------------------------------
#
# One executor is created lazily and reused across sweeps (worker startup —
# interpreter fork + module imports — would otherwise dominate short sweeps).
# Simulations are CPU-bound pure Python, so processes, not threads.

_executor: ProcessPoolExecutor | None = None
_executor_workers: int = 0


def default_workers() -> int:
    """Worker count: ``WHOPAY_WORKERS`` env override, else the CPU count."""
    env = os.environ.get("WHOPAY_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _pool(max_workers: int) -> ProcessPoolExecutor:
    """Return the shared executor, (re)building it if the size changed."""
    global _executor, _executor_workers
    if _executor is None or _executor_workers != max_workers:
        if _executor is not None:
            _executor.shutdown(wait=False, cancel_futures=True)
        _executor = ProcessPoolExecutor(max_workers=max_workers)
        _executor_workers = max_workers
    return _executor


def shutdown_pool() -> None:
    """Tear down the shared executor (idempotent; registered at exit)."""
    global _executor, _executor_workers
    if _executor is not None:
        _executor.shutdown(wait=False, cancel_futures=True)
        _executor = None
        _executor_workers = 0


atexit.register(shutdown_pool)


def run_sweep_parallel(
    configs: Iterable[SimConfig],
    max_workers: int | None = None,
) -> list[dict[str, Any]]:
    """Run independent sweep points on a process pool, preserving order.

    Returns exactly what ``[run_one(c) for c in configs]`` would: each point
    is seeded by its config and workers share no state, so rows are
    bit-identical to the sequential runner's.  With one config (or one
    worker available and one config) the pool is skipped entirely.
    """
    configs = list(configs)
    if not configs:
        return []
    workers = min(max_workers or default_workers(), len(configs))
    if workers <= 1 and len(configs) == 1:
        return [run_one(configs[0])]
    # ``map`` yields in submission order regardless of completion order.
    return list(_pool(workers).map(run_one, configs))


def _run_points(configs: Iterable[SimConfig], parallel: bool) -> list[dict[str, Any]]:
    if parallel:
        return run_sweep_parallel(configs)
    return [run_one(config) for config in configs]


# -- replication --------------------------------------------------------------


def _spread(values: Sequence[float], mean: float) -> float | None:
    """Relative spread (max − min)/|mean|, or the explicit degenerate cases.

    * any non-finite value → ``None`` (spread is meaningless);
    * all values equal → ``0.0`` (stable, even when the mean is zero);
    * zero mean with unequal values → ``None`` (no scale to normalize by).
    """
    if any(not math.isfinite(v) for v in values):
        return None
    lo, hi = min(values), max(values)
    if hi == lo:
        return 0.0
    if mean == 0 or not math.isfinite(mean):
        return None
    return (hi - lo) / abs(mean)


def run_replicated(
    config: SimConfig,
    seeds: tuple[int, ...],
    parallel: bool = False,
) -> dict[str, Any]:
    """Run ``config`` under several seeds; report mean and spread per metric.

    Research hygiene for anything you intend to quote: a single-seed number
    carries simulation noise.  Returns the mean row plus, for each numeric
    column, a ``<column>_spread`` entry (max − min across seeds, as a
    fraction of the mean; ``None`` when the column has no meaningful scale —
    see :func:`_spread`) so callers can judge stability.  ``parallel`` fans
    the seeds out over the shared sweep process pool.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from dataclasses import replace

    rows = _run_points((replace(config, seed=seed) for seed in seeds), parallel)
    merged: dict[str, Any] = {}
    for key, value in rows[0].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            merged[key] = value
            continue
        values = [row[key] for row in rows]
        finite = [v for v in values if math.isfinite(v)]
        mean = sum(finite) / len(finite) if finite else math.nan
        merged[key] = mean
        merged[f"{key}_spread"] = _spread(values, mean)
    merged["replications"] = len(seeds)
    return merged


# -- sweep families -----------------------------------------------------------


def run_availability_sweep(
    policy: Policy,
    sync_mode: str,
    small: bool = False,
    mean_offline_hours: float = 2.0,
    parallel: bool = False,
) -> list[dict[str, Any]]:
    """Setup A (Figures 2–9): sweep µ for one (policy, sync) configuration."""
    return _run_points(
        setup_a_configs(
            policy=policy,
            sync_mode=sync_mode,
            mean_offline_hours=mean_offline_hours,
            small=small,
        ),
        parallel,
    )


def run_scaling_sweep(
    policy: Policy,
    sync_mode: str,
    small: bool = False,
    parallel: bool = False,
) -> list[dict[str, Any]]:
    """Setup B (Figures 10–11): sweep the system size at 50% availability."""
    return _run_points(
        setup_b_configs(policy=policy, sync_mode=sync_mode, small=small),
        parallel,
    )
