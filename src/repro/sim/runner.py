"""Sweep drivers producing the figures' data series (paper Section 6.2).

Each function runs one family of simulations and returns a list of
per-point result rows (plain dicts, ready for table printing or asserting);
the figure benchmarks under ``benchmarks/`` are thin wrappers over these.
"""

from __future__ import annotations

from typing import Any

from repro.core.clock import HOUR
from repro.sim.config import SimConfig, setup_a_configs, setup_b_configs
from repro.sim.policies import Policy
from repro.sim.simulator import Simulation


def run_one(config: SimConfig) -> dict[str, Any]:
    """Run a single configuration and flatten its metrics into a row."""
    result = Simulation(config).run()
    metrics = result.metrics
    row: dict[str, Any] = {
        "mu_hours": config.mean_online / HOUR,
        "nu_hours": config.mean_offline / HOUR,
        "n_peers": config.n_peers,
        "policy": config.policy.name,
        "sync": config.sync_mode,
        "availability": config.availability,
        "payments_made": metrics.payments_made,
        "broker_cpu": metrics.broker_cpu_load(),
        "broker_comm": metrics.broker_comm_load(),
        "cpu_ratio": metrics.cpu_load_ratio(),
        "comm_ratio": metrics.comm_load_ratio(),
        "broker_cpu_share": metrics.broker_cpu_share(),
        "broker_comm_share": metrics.broker_comm_share(),
    }
    for op, count in metrics.broker_op_counts().items():
        row[f"broker_{op}"] = count
    for op, avg in metrics.peer_op_counts_avg().items():
        row[f"peer_avg_{op}"] = avg
    return row


def run_replicated(config: SimConfig, seeds: tuple[int, ...]) -> dict[str, Any]:
    """Run ``config`` under several seeds; report mean and spread per metric.

    Research hygiene for anything you intend to quote: a single-seed number
    carries simulation noise.  Returns the mean row plus, for each numeric
    column, a ``<column>_spread`` entry (max − min across seeds, as a
    fraction of the mean) so callers can judge stability.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from dataclasses import replace

    rows = [run_one(replace(config, seed=seed)) for seed in seeds]
    merged: dict[str, Any] = {}
    for key, value in rows[0].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            merged[key] = value
            continue
        values = [row[key] for row in rows]
        mean = sum(values) / len(values)
        merged[key] = mean
        merged[f"{key}_spread"] = (max(values) - min(values)) / mean if mean else 0.0
    merged["replications"] = len(seeds)
    return merged


def run_availability_sweep(
    policy: Policy,
    sync_mode: str,
    small: bool = False,
    mean_offline_hours: float = 2.0,
) -> list[dict[str, Any]]:
    """Setup A (Figures 2–9): sweep µ for one (policy, sync) configuration."""
    return [
        run_one(config)
        for config in setup_a_configs(
            policy=policy,
            sync_mode=sync_mode,
            mean_offline_hours=mean_offline_hours,
            small=small,
        )
    ]


def run_scaling_sweep(
    policy: Policy,
    sync_mode: str,
    small: bool = False,
) -> list[dict[str, Any]]:
    """Setup B (Figures 10–11): sweep the system size at 50% availability."""
    return [
        run_one(config)
        for config in setup_b_configs(policy=policy, sync_mode=sync_mode, small=small)
    ]
