"""Sweep drivers producing the figures' data series (paper Section 6.2).

Each function runs one family of simulations and returns a list of
per-point result rows (plain dicts, ready for table printing or asserting);
the figure benchmarks under ``benchmarks/`` are thin wrappers over these.

Sweep points are independent simulations, so the drivers can fan them out
over a process pool (:func:`run_sweep_parallel`).  Determinism is preserved:
every point carries its own seed inside its :class:`SimConfig`, workers
share no state, and results are returned in submission order — the parallel
path produces bit-identical rows to the sequential one (modulo the
wall-clock timing stamps, see below).

Environment knobs (all optional):

* ``WHOPAY_WORKERS`` — pool size (``auto``/empty → CPU count; malformed
  values warn and fall back instead of killing the sweep);
* ``WHOPAY_SIM_ENGINE`` — default engine for sweep points (``fast``,
  ``reference``, or ``compat``; see :mod:`repro.sim.engine`);
* ``WHOPAY_CHUNK`` — ``pool.map`` chunksize override (default: spread
  points evenly at ~4 chunks per worker);
* ``WHOPAY_PROFILE`` — directory for per-point cProfile dumps.

Every row is stamped with its ``engine`` plus ``wall_s`` /
``events_per_sec`` / ``peak_rss_kb`` timing columns, so committed figure
artifacts are self-describing.  The timing columns are the only
non-deterministic row entries — comparisons that want bit-identical rows
strip :data:`TIMING_COLUMNS` first (the parallel runner's determinism
contract is phrased modulo those columns).
"""

from __future__ import annotations

import atexit
import math
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Any, Iterable, Sequence

from repro.core.clock import HOUR
from repro.sim.config import SimConfig, setup_a_configs, setup_b_configs
from repro.sim.engine import build_simulation
from repro.sim.policies import Policy


#: Per-row wall-clock stamps — the only row entries that vary run to run.
#: Strip these before bitwise row comparisons.
TIMING_COLUMNS = ("wall_s", "events_per_sec", "peak_rss_kb")


def strip_timing(row: dict[str, Any]) -> dict[str, Any]:
    """A copy of ``row`` without :data:`TIMING_COLUMNS` (for bitwise compares)."""
    return {k: v for k, v in row.items() if k not in TIMING_COLUMNS}


def _resolve_engine(engine: str | None) -> str:
    """Explicit argument, else the ``WHOPAY_SIM_ENGINE`` env, else fast."""
    return engine or os.environ.get("WHOPAY_SIM_ENGINE") or "fast"


def _peak_rss_kb() -> int | None:
    """Process peak RSS in KiB, or ``None`` where rusage is unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_one(config: SimConfig, engine: str | None = None) -> dict[str, Any]:
    """Run a single configuration and flatten its metrics into a row.

    ``engine`` picks the simulation engine (default: the fast
    struct-of-arrays engine, overridable via ``WHOPAY_SIM_ENGINE``).
    Every row carries ``engine`` plus the :data:`TIMING_COLUMNS` stamps;
    everything else is a pure function of the config.  With
    ``WHOPAY_PROFILE`` set the point additionally runs under cProfile and
    dumps its stats into that directory.
    """
    import time

    engine = _resolve_engine(engine)
    sim = build_simulation(config, engine)
    profile_dir = os.environ.get("WHOPAY_PROFILE")
    if profile_dir:
        import cProfile

        prof = cProfile.Profile()
        start = time.perf_counter()  # wp-lint: disable=WP102
        prof.enable()
        result = sim.run()
        prof.disable()
        wall = time.perf_counter() - start  # wp-lint: disable=WP102
        os.makedirs(profile_dir, exist_ok=True)
        prof.dump_stats(
            os.path.join(
                profile_dir,
                f"sim_{engine}_n{config.n_peers}_s{config.seed}.prof",
            )
        )
    else:
        start = time.perf_counter()  # wp-lint: disable=WP102
        result = sim.run()
        wall = time.perf_counter() - start  # wp-lint: disable=WP102
    metrics = result.metrics
    row: dict[str, Any] = {
        "engine": engine,
        "mu_hours": config.mean_online / HOUR,
        "nu_hours": config.mean_offline / HOUR,
        "n_peers": config.n_peers,
        "policy": config.policy.name,
        "sync": config.sync_mode,
        "availability": config.availability,
        "events": metrics.events,
        "payments_made": metrics.payments_made,
        "broker_cpu": metrics.broker_cpu_load(),
        "broker_comm": metrics.broker_comm_load(),
        "cpu_ratio": metrics.cpu_load_ratio(),
        "comm_ratio": metrics.comm_load_ratio(),
        "broker_cpu_share": metrics.broker_cpu_share(),
        "broker_comm_share": metrics.broker_comm_share(),
    }
    for op, count in metrics.broker_op_counts().items():
        row[f"broker_{op}"] = count
    # Federation (broker_shards > 1, reference engine): the fig2/fig6
    # series again, but per shard — the load-flattening evidence.
    for shard, ops in enumerate(metrics.per_shard_op_counts()):
        for op, count in ops.items():
            row[f"broker_shard{shard}_{op}"] = count
    for shard, load in enumerate(metrics.per_shard_cpu_load()):
        row[f"broker_shard{shard}_cpu"] = load
    for op, avg in metrics.peer_op_counts_avg().items():
        row[f"peer_avg_{op}"] = avg
    row["wall_s"] = wall
    row["events_per_sec"] = metrics.events / wall if wall > 0 else 0.0
    row["peak_rss_kb"] = _peak_rss_kb()
    return row


# -- process-pool plumbing ----------------------------------------------------
#
# One executor is created lazily and reused across sweeps (worker startup —
# interpreter fork + module imports — would otherwise dominate short sweeps).
# Simulations are CPU-bound pure Python, so processes, not threads.

_executor: ProcessPoolExecutor | None = None
_executor_workers: int = 0


def default_workers() -> int:
    """Worker count: ``WHOPAY_WORKERS`` env override, else the CPU count.

    ``auto`` (case-insensitive) and the empty string mean "use the CPU
    count".  A malformed value is a configuration slip, not a reason to
    kill a sweep that may be hours into a queue — warn and fall back.
    Values below 1 clamp to a single worker.
    """
    env = (os.environ.get("WHOPAY_WORKERS") or "").strip()
    if env and env.lower() != "auto":
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring malformed WHOPAY_WORKERS={env!r} "
                "(expected an integer or 'auto'); using the CPU count",
                RuntimeWarning,
                stacklevel=2,
            )
    return os.cpu_count() or 1


def _default_chunksize(n_points: int, workers: int) -> int:
    """Chunk sweep points so each worker sees ~4 chunks (amortizes IPC
    without serializing the tail); ``WHOPAY_CHUNK`` overrides."""
    env = (os.environ.get("WHOPAY_CHUNK") or "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring malformed WHOPAY_CHUNK={env!r} (expected an integer)",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, n_points // (workers * 4))


def _pool(max_workers: int) -> ProcessPoolExecutor:
    """Return the shared executor, (re)building it if the size changed."""
    global _executor, _executor_workers
    if _executor is None or _executor_workers != max_workers:
        if _executor is not None:
            _executor.shutdown(wait=False, cancel_futures=True)
        _executor = ProcessPoolExecutor(max_workers=max_workers)
        _executor_workers = max_workers
    return _executor


def shutdown_pool() -> None:
    """Tear down the shared executor (idempotent; registered at exit)."""
    global _executor, _executor_workers
    if _executor is not None:
        _executor.shutdown(wait=False, cancel_futures=True)
        _executor = None
        _executor_workers = 0


atexit.register(shutdown_pool)


def run_sweep_parallel(
    configs: Iterable[SimConfig],
    max_workers: int | None = None,
    engine: str | None = None,
    chunksize: int | None = None,
) -> list[dict[str, Any]]:
    """Run independent sweep points on a process pool, preserving order.

    Returns exactly what ``[run_one(c, engine) for c in configs]`` would:
    each point is seeded by its config and workers share no state, so rows
    are bit-identical to the sequential runner's modulo the wall-clock
    :data:`TIMING_COLUMNS` stamps.  With one config (or one
    worker available and one config) the pool is skipped entirely.  Points
    ship to workers in chunks (see :func:`_default_chunksize`) so short
    sweep points don't pay one IPC round-trip each.

    The engine name is resolved *here*, in the parent, so a sweep is pinned
    to one engine even if a worker's environment drifts.
    """
    configs = list(configs)
    if not configs:
        return []
    engine = _resolve_engine(engine)
    workers = min(max_workers or default_workers(), len(configs))
    if workers <= 1 and len(configs) == 1:
        return [run_one(configs[0], engine)]
    chunk = chunksize or _default_chunksize(len(configs), workers)
    # ``map`` yields in submission order regardless of completion order;
    # ``partial`` keeps the callable picklable for the worker processes.
    return list(_pool(workers).map(partial(run_one, engine=engine), configs, chunksize=chunk))


def _run_points(
    configs: Iterable[SimConfig],
    parallel: bool,
    engine: str | None = None,
) -> list[dict[str, Any]]:
    if parallel:
        return run_sweep_parallel(configs, engine=engine)
    engine = _resolve_engine(engine)
    return [run_one(config, engine) for config in configs]


# -- replication --------------------------------------------------------------


def _spread(values: Sequence[float], mean: float) -> float | None:
    """Relative spread (max − min)/|mean|, or the explicit degenerate cases.

    * any non-finite value → ``None`` (spread is meaningless);
    * all values equal → ``0.0`` (stable, even when the mean is zero);
    * zero mean with unequal values → ``None`` (no scale to normalize by).
    """
    if any(not math.isfinite(v) for v in values):
        return None
    lo, hi = min(values), max(values)
    if hi == lo:
        return 0.0
    if mean == 0 or not math.isfinite(mean):
        return None
    return (hi - lo) / abs(mean)


def run_replicated(
    config: SimConfig,
    seeds: tuple[int, ...],
    parallel: bool = False,
    engine: str | None = None,
) -> dict[str, Any]:
    """Run ``config`` under several seeds; report mean and spread per metric.

    Research hygiene for anything you intend to quote: a single-seed number
    carries simulation noise.  Returns the mean row plus, for each numeric
    column, a ``<column>_spread`` entry (max − min across seeds, as a
    fraction of the mean; ``None`` when the column has no meaningful scale —
    see :func:`_spread`) so callers can judge stability.  ``parallel`` fans
    the seeds out over the shared sweep process pool.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from dataclasses import replace

    rows = _run_points((replace(config, seed=seed) for seed in seeds), parallel, engine)
    merged: dict[str, Any] = {}
    for key, value in rows[0].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            merged[key] = value
            continue
        values = [row[key] for row in rows]
        finite = [v for v in values if math.isfinite(v)]
        mean = sum(finite) / len(finite) if finite else math.nan
        merged[key] = mean
        merged[f"{key}_spread"] = _spread(values, mean)
    merged["replications"] = len(seeds)
    return merged


# -- sweep families -----------------------------------------------------------


def run_availability_sweep(
    policy: Policy,
    sync_mode: str,
    small: bool = False,
    mean_offline_hours: float = 2.0,
    parallel: bool = False,
    engine: str | None = None,
) -> list[dict[str, Any]]:
    """Setup A (Figures 2–9): sweep µ for one (policy, sync) configuration."""
    return _run_points(
        setup_a_configs(
            policy=policy,
            sync_mode=sync_mode,
            mean_offline_hours=mean_offline_hours,
            small=small,
        ),
        parallel,
        engine,
    )


def run_scaling_sweep(
    policy: Policy,
    sync_mode: str,
    small: bool = False,
    parallel: bool = False,
    engine: str | None = None,
) -> list[dict[str, Any]]:
    """Setup B (Figures 10–11): sweep the system size at 50% availability."""
    return _run_points(
        setup_b_configs(policy=policy, sync_mode=sync_mode, small=small),
        parallel,
        engine,
    )
