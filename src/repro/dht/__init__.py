"""Distributed hash table substrate (paper Section 5.1).

WhoPay's real-time double-spending detection requires "a trusted,
access-controlled DHT infrastructure" with a put/get interface plus a
register/notify mechanism.  The paper cites Chord/CAN/Pastry/Tapestry for
routing and Bayeux/Scribe for notification and leaves the trusted-DHT design
to future work.  This package builds the whole thing:

* :mod:`repro.dht.chord` — a working Chord ring (consistent hashing,
  successor lists, finger tables, iterative O(log n) lookup, join/leave and
  stabilization) over the in-memory transport.
* :mod:`repro.dht.kademlia` — a second, independent fabric (XOR metric,
  k-buckets, iterative parallel lookups, k-fold replication) exposing the
  same surface, proving the Section 5.1 infrastructure is DHT-agnostic as
  the paper's list of candidate DHTs implies.
* :mod:`repro.dht.binding_store` — the access-control policy on top: a
  value keyed by coin public key is writable only with a valid signature by
  that coin's secret key or by the broker (the downtime rule), with
  monotonic sequence numbers to prevent rollback.
* :mod:`repro.dht.notify` — Scribe/Bayeux-style register/notify: holders
  subscribe to the bindings of the coins they hold and are pushed every
  accepted update (the real-time detection trigger).
"""

from repro.dht.binding_store import BindingRecord, BindingStore, WriteRejected
from repro.dht.chord import ChordNode, ChordRing, key_to_id
from repro.dht.notify import NotificationHub

__all__ = [
    "ChordNode",
    "ChordRing",
    "key_to_id",
    "BindingStore",
    "BindingRecord",
    "WriteRejected",
    "NotificationHub",
]
