"""Register/notify on top of the DHT (paper Section 5.1).

    "To monitor this DHT-based public binding list, peers can either poll
    the bindings of interest periodically or use a register/notify mechanism
    such as Bayeux, Scribe, or CAN-mc."

This module is the Scribe stand-in: a subscriber registers interest in a
coin's binding id; every accepted put for that id is pushed to all online
subscribers as a ``binding.update`` message.  Offline subscribers simply
miss updates (and are expected to re-check when they rejoin — which is what
WhoPay's holder-side monitoring does anyway).

Notifications go through the typed :class:`~repro.core.clients.PeerClient`
facade with a light retry policy: each push carries an idempotency key, so
a duplicated or retried delivery cannot make a holder raise the same
double-spend alarm twice.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.core.clients import PeerClient
from repro.dht.binding_store import BindingStore
from repro.dht.chord import key_to_id
from repro.net.rpc import RetryPolicy
from repro.net.transport import NetworkError, NodeOffline

#: One quick retry per push: notifications are best-effort (a missed one is
#: reconciled at the holder's next sync), but a cheap second attempt rides
#: out most single-message losses.
NOTIFY_POLICY = RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05)


class NotificationHub:
    """Subscription registry + push fan-out for binding updates."""

    def __init__(self, store: BindingStore) -> None:
        self.store = store
        self._subscribers: dict[int, set[str]] = defaultdict(set)
        self.notifications_sent = 0
        self.notifications_failed = 0
        self._client = PeerClient(
            transport=store.ring.transport, src="dht-notify", policy=NOTIFY_POLICY
        )
        for node in store.ring.nodes:
            node.after_put = self._fan_out  # type: ignore[attr-defined]

    def subscribe(self, coin_y: int, subscriber: str) -> None:
        """Register ``subscriber`` (a transport address) for coin updates."""
        self._subscribers[self._key_id(coin_y)].add(subscriber)

    def unsubscribe(self, coin_y: int, subscriber: str) -> None:
        """Remove a registration (no-op if absent)."""
        self._subscribers[self._key_id(coin_y)].discard(subscriber)

    def subscriber_count(self, coin_y: int) -> int:
        """How many addresses watch this coin."""
        return len(self._subscribers[self._key_id(coin_y)])

    def _key_id(self, coin_y: int) -> int:
        return key_to_id(self.store._coin_key_bytes(coin_y))

    def _fan_out(self, key_id: int, value: Any) -> None:
        for subscriber in sorted(self._subscribers.get(key_id, ())):
            if not self.store.ring.transport.is_online(subscriber):
                continue
            try:
                self._client.binding_update(subscriber, value)
                self.notifications_sent += 1
            except (NodeOffline, NetworkError):
                # Best-effort push; the subscriber reconciles on next sync.
                self.notifications_failed += 1
                continue
