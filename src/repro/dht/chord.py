"""Chord: consistent-hashing ring with finger tables.

A faithful, single-process implementation of the Chord protocol (Stoica et
al., SIGCOMM 2001 — the paper's reference [28]): every node owns the arc of
the 160-bit identifier circle between its predecessor and itself; lookups
walk finger tables in O(log n) hops; joins and graceful leaves hand data to
the new owner; ``stabilize``/``fix_fingers`` repair the ring after churn.

Routing happens over :class:`repro.net.transport.Transport` messages, so
lookup hop counts show up in the transport's communication counters like any
other protocol traffic.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.net.node import Node
from repro.net.rpc import RpcClient
from repro.net.transport import NetworkError, NodeOffline, Transport

M = 160  # identifier bits
RING = 1 << M


def key_to_id(key: bytes) -> int:
    """Hash an arbitrary key to a point on the identifier circle."""
    return int.from_bytes(hashlib.sha1(key).digest(), "big") % RING


def _in_interval(x: int, a: int, b: int, inclusive_right: bool = True) -> bool:
    """True iff ``x`` lies on the circular interval (a, b] (or (a, b))."""
    if a == b:
        # Whole circle (single-node ring): everything matches except when the
        # open interval is requested, where only x != a matches.
        return inclusive_right or x != a
    if a < b:
        return (a < x <= b) if inclusive_right else (a < x < b)
    return (x > a or x <= b) if inclusive_right else (x > a or x < b)


#: How many copies of each value exist (owner + replicas on successors).
DEFAULT_REPLICATION = 3

#: Virtual-time budget for one ring RPC (WP114).
CHORD_DEADLINE = 30.0


class ChordNode(Node):
    """One DHT server.

    Storage is a plain dict ``id -> value``; the binding-store policy layer
    (see :mod:`repro.dht.binding_store`) is injected as a ``validator``
    callable so Chord itself stays policy-free.

    Accepted puts are replicated to the next ``replication - 1`` live
    successors, so a *crash* (not just a graceful leave) loses no data: after
    stabilization re-routes the arc to the crashed node's successor, that
    successor already holds the replicas and serves reads seamlessly.
    """

    def __init__(
        self,
        transport: Transport,
        address: str,
        node_id: int | None = None,
        replication: int = DEFAULT_REPLICATION,
    ) -> None:
        super().__init__(transport, address)
        self.replication = max(1, replication)
        self.node_id = node_id if node_id is not None else key_to_id(address.encode())
        self.successor: str = address
        self.predecessor: str | None = None
        self.fingers: list[str] = [address] * M
        self.successor_list: list[str] = []  # fault-tolerance chain (r = 4)
        self.stabilize_failures = 0  # churn-expected stabilize RPC failures
        self.storage: dict[int, Any] = {}
        self.on("chord.find_successor", self._handle_find_successor)
        self.on("chord.get_predecessor", lambda src, _p: self.predecessor)
        self.on("chord.get_successor_list", lambda src, _p: [self.successor, *self.successor_list])
        self.on("chord.notify", self._handle_notify)
        self.on("chord.put", self._handle_put)
        self.on("chord.get", self._handle_get)
        self.on("chord.absorb", self._handle_absorb)

    # -- id helpers ----------------------------------------------------------

    def _id_of(self, address: str) -> int:
        return self.transport.node(address).node_id  # type: ignore[attr-defined]

    # -- routing -------------------------------------------------------------

    def closest_preceding(self, target_id: int) -> str:
        """Best finger strictly between this node and ``target_id``."""
        for finger in reversed(self.fingers):
            if not self.transport.is_online(finger):
                continue
            fid = self._id_of(finger)
            if _in_interval(fid, self.node_id, target_id, inclusive_right=False):
                return finger
        return self.address

    def _handle_find_successor(self, src: str, target_id: int) -> dict[str, Any]:
        succ_id = self._id_of(self.successor)
        if _in_interval(target_id, self.node_id, succ_id, inclusive_right=True):
            return {"done": True, "address": self.successor}
        return {"done": False, "address": self.closest_preceding(target_id)}

    def find_successor(self, target_id: int, max_hops: int = 2 * M) -> str:
        """Iterative lookup: who owns ``target_id``?

        Each hop is a transport request, so routing cost is measured.  Raises
        :class:`NetworkError` if the ring cannot resolve within ``max_hops``
        (a partitioned or unstabilized ring).
        """
        current = self.address
        for _ in range(max_hops):
            if current == self.address:
                answer = self._handle_find_successor(self.address, target_id)
            else:
                answer = self.request(current, "chord.find_successor", target_id)
            if answer["done"]:
                return answer["address"]
            next_hop = answer["address"]
            if next_hop == current:
                # Routing made no progress: fall back to the successor chain.
                succ = self.transport.node(current).successor  # type: ignore[attr-defined]
                if succ == current:
                    return current
                next_hop = succ
            current = next_hop
        raise NetworkError(f"lookup for {target_id:x} exceeded {max_hops} hops")

    # -- ring maintenance ------------------------------------------------------

    def join(self, bootstrap: "ChordNode") -> None:
        """Join the ring known to ``bootstrap``."""
        self.predecessor = None
        self.successor = bootstrap.find_successor(self.node_id)
        if self.successor == self.address:
            self.successor = bootstrap.address

    def stabilize(self) -> None:
        """One round of the Chord stabilization protocol.

        Includes the successor-list failover: when the successor has failed,
        the next live entry of the successor list takes its place — the
        standard Chord resilience mechanism.
        """
        if self.successor != self.address and not self.transport.is_online(self.successor):
            replacement = next(
                (s for s in self.successor_list if s != self.successor and self.transport.is_online(s)),
                self.address,
            )
            self.successor = replacement
        try:
            pred_of_succ = self.request(self.successor, "chord.get_predecessor", None)
        except (NodeOffline, NetworkError):
            return
        if pred_of_succ is not None and self.transport.is_online(pred_of_succ):
            pid = self._id_of(pred_of_succ)
            if _in_interval(pid, self.node_id, self._id_of(self.successor), inclusive_right=False):
                self.successor = pred_of_succ
        try:
            self.request(self.successor, "chord.notify", self.address)
            succ_list = self.request(self.successor, "chord.get_successor_list", None)
            self.successor_list = [s for s in succ_list if s != self.address][:4]
        except (NodeOffline, NetworkError):
            # Expected under churn; the next stabilize round retries.  The
            # counter keeps the failure observable to ring-health checks.
            self.stabilize_failures += 1

    def _handle_notify(self, src: str, candidate: str) -> None:
        if self.predecessor is None or not self.transport.is_online(self.predecessor):
            self.predecessor = candidate
            return None
        cid = self._id_of(candidate)
        if _in_interval(cid, self._id_of(self.predecessor), self.node_id, inclusive_right=False):
            self.predecessor = candidate
        return None

    def fix_fingers(self) -> None:
        """Recompute the whole finger table via lookups."""
        for i in range(M):
            start = (self.node_id + (1 << i)) % RING
            try:
                self.fingers[i] = self.find_successor(start)
            except NetworkError:
                self.fingers[i] = self.successor

    def leave(self) -> None:
        """Graceful departure: hand storage to the successor, go offline."""
        if self.successor != self.address and self.transport.is_online(self.successor):
            self.request(self.successor, "chord.absorb", list(self.storage.items()))
        self.storage.clear()
        self.go_offline()

    def _handle_absorb(self, src: str, items: list) -> None:
        for key_id, value in items:
            self.storage[key_id] = value
        return None

    # -- storage ---------------------------------------------------------------

    def _handle_put(self, src: str, payload: dict) -> dict:
        key_id = payload["key_id"]
        value = payload["value"]
        validator = getattr(self, "put_validator", None)
        if validator is not None:
            verdict = validator(key_id, self.storage.get(key_id), value)
            if verdict is not None:
                return {"ok": False, "reason": verdict}
        self.storage[key_id] = value
        self._replicate(key_id, value)
        hook = getattr(self, "after_put", None)
        if hook is not None:
            hook(key_id, value)
        return {"ok": True, "reason": None}

    def _replicate(self, key_id: int, value: Any) -> None:
        """Push an accepted value to the next ``replication - 1`` successors.

        Validation already happened at the owner, so replicas absorb
        directly.  Offline successors are skipped; the next accepted put (or
        a graceful handoff) repairs their copy.
        """
        pushed = 0
        seen: set[str] = set()
        for successor in [self.successor, *self.successor_list]:
            if pushed >= self.replication - 1:
                break
            if successor == self.address or successor in seen:
                continue
            seen.add(successor)
            if not self.transport.is_online(successor):
                continue
            try:
                self.request(successor, "chord.absorb", [(key_id, value)])
                pushed += 1
            except (NodeOffline, NetworkError):
                continue

    def _handle_get(self, src: str, key_id: int) -> Any:
        return self.storage.get(key_id)


class ChordRing:
    """Builds and maintains a ring of :class:`ChordNode` servers.

    The coordinator exists for tests and experiments: real deployments run
    ``stabilize``/``fix_fingers`` on timers, which a single-process harness
    emulates with :meth:`stabilize_all` rounds.
    """

    def __init__(self, transport: Transport, size: int, prefix: str = "dht") -> None:
        if size < 1:
            raise ValueError("ring needs at least one node")
        self.transport = transport
        # Client-side sends (put/get route on behalf of arbitrary callers)
        # go through a transport-bound RPC client with per-call src.
        self.rpc = RpcClient(transport=transport)
        self.nodes: list[ChordNode] = [
            ChordNode(transport, f"{prefix}-{i}") for i in range(size)
        ]
        first = self.nodes[0]
        for node in self.nodes[1:]:
            node.join(first)
            self.stabilize_all(rounds=2)
        self.stabilize_all(rounds=size)
        self.rebuild_fingers()

    def stabilize_all(self, rounds: int = 1) -> None:
        """Run ``rounds`` stabilization rounds over every online node."""
        for _ in range(rounds):
            for node in self.nodes:
                if node.online:
                    node.stabilize()

    def rebuild_fingers(self) -> None:
        """Recompute every online node's finger table."""
        for node in self.nodes:
            if node.online:
                node.fix_fingers()

    def owner_of(self, key: bytes) -> ChordNode:
        """The node currently responsible for ``key``."""
        entry = next(node for node in self.nodes if node.online)
        address = entry.find_successor(key_to_id(key))
        return self.transport.node(address)  # type: ignore[return-value]

    def put(self, key: bytes, value: Any, src: str = "client") -> dict:
        """Route a put to the owner of ``key``."""
        owner = self.owner_of(key)
        return self.rpc.call(
            owner.address,
            "chord.put",
            {"key_id": key_to_id(key), "value": value},
            src=src,
            deadline=CHORD_DEADLINE,
        )

    def get(self, key: bytes, src: str = "client") -> Any:
        """Route a get to the owner of ``key``."""
        owner = self.owner_of(key)
        return self.rpc.call(
            owner.address, "chord.get", key_to_id(key), src=src, deadline=CHORD_DEADLINE
        )
