"""Kademlia: XOR-metric DHT (Maymounkov & Mazières, 2002).

A second, independently-implemented DHT substrate.  The paper names several
interchangeable DHTs for its Section 5.1 infrastructure (CAN, Chord, Pastry,
Tapestry); this module demonstrates that interchangeability concretely —
:class:`KademliaNetwork` exposes the same ``nodes`` / ``put`` / ``get`` /
``transport`` surface as :class:`~repro.dht.chord.ChordRing`, so the
access-controlled binding store and the notification hub run over either
routing fabric unmodified (see ``tests/dht/test_kademlia.py``).

Faithful core mechanics:

* 160-bit node and key identifiers, XOR distance;
* per-node k-buckets (one per distance prefix), refreshed on every contact;
* iterative, client-driven lookups with parallelism ``alpha``;
* values stored on the ``k`` closest nodes to the key (built-in replication);
* ``find_value`` short-circuits at the first node holding the value.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.net.node import Node
from repro.net.rpc import RpcClient
from repro.net.transport import NetworkError, NodeOffline, Transport

ID_BITS = 160
K_BUCKET_SIZE = 4  # contacts per bucket (k)
ALPHA = 2  # lookup parallelism

#: Virtual-time budget for one DHT RPC (WP114).  Lookups already treat any
#: network failure as "skip this contact", so a deadline overrun degrades
#: to the same fallback instead of stalling the iteration.
KAD_DEADLINE = 30.0


def kad_id(data: bytes) -> int:
    """Map arbitrary bytes to the 160-bit identifier space."""
    return int.from_bytes(hashlib.sha1(data).digest(), "big")


def distance(a: int, b: int) -> int:
    """XOR metric."""
    return a ^ b


class _KademliaNode(Node):
    """One Kademlia server."""

    def __init__(self, transport: Transport, address: str) -> None:
        super().__init__(transport, address)
        self.node_id = kad_id(address.encode())
        # bucket i holds contacts whose distance has bit-length i+1.
        self.buckets: list[list[str]] = [[] for _ in range(ID_BITS)]
        self.storage: dict[int, Any] = {}
        # Liveness probe: part of the DHT's public surface for external
        # tooling; no internal facade sends it, hence the WP105 waiver.
        self.on("kad.ping", lambda src, _p: self._touch(src) or "pong")  # wp-lint: disable=WP105
        self.on("kad.find_node", self._handle_find_node)
        self.on("kad.find_value", self._handle_find_value)
        self.on("kad.store", self._handle_store)

    # -- routing table -----------------------------------------------------

    def _bucket_index(self, other_id: int) -> int:
        d = distance(self.node_id, other_id)
        return d.bit_length() - 1 if d else 0

    def _touch(self, address: str) -> None:
        """Record a live contact (LRU within its bucket)."""
        if address == self.address or address.startswith(("client", "dht-notify")):
            return
        try:
            other = self.transport.node(address)
            other_id = getattr(other, "node_id")
        except Exception:
            return
        bucket = self.buckets[self._bucket_index(other_id)]
        if address in bucket:
            bucket.remove(address)
        bucket.append(address)
        if len(bucket) > K_BUCKET_SIZE:
            bucket.pop(0)  # drop the least-recently seen

    def known_contacts(self) -> list[str]:
        """All contacts across buckets."""
        return [address for bucket in self.buckets for address in bucket]

    def closest_known(self, target_id: int, count: int) -> list[str]:
        """The ``count`` known contacts closest to ``target_id`` (incl. self)."""
        candidates = set(self.known_contacts())
        candidates.add(self.address)
        ordered = sorted(
            candidates,
            key=lambda address: distance(kad_id(address.encode()), target_id),
        )
        return ordered[:count]

    # -- handlers ---------------------------------------------------------------

    def _handle_find_node(self, src: str, target_id: int) -> list[str]:
        self._touch(src)
        return self.closest_known(target_id, K_BUCKET_SIZE)

    def _handle_find_value(self, src: str, key_id: int) -> dict[str, Any]:
        self._touch(src)
        if key_id in self.storage:
            return {"found": True, "value": self.storage[key_id], "closest": []}
        return {"found": False, "value": None, "closest": self.closest_known(key_id, K_BUCKET_SIZE)}

    def _handle_store(self, src: str, payload: dict) -> dict:
        self._touch(src)
        key_id = payload["key_id"]
        value = payload["value"]
        validator = getattr(self, "put_validator", None)
        if validator is not None:
            verdict = validator(key_id, self.storage.get(key_id), value)
            if verdict is not None:
                return {"ok": False, "reason": verdict}
        self.storage[key_id] = value
        if payload.get("notify"):
            hook = getattr(self, "after_put", None)
            if hook is not None:
                hook(key_id, value)
        return {"ok": True, "reason": None}


class KademliaNetwork:
    """A Kademlia deployment with the ChordRing-compatible surface."""

    def __init__(self, transport: Transport, size: int, prefix: str = "kad") -> None:
        if size < 1:
            raise ValueError("network needs at least one node")
        self.transport = transport
        # Client-side lookups/stores run on behalf of arbitrary callers and
        # go through a transport-bound RPC client with per-call src.
        self.rpc = RpcClient(transport=transport)
        self.nodes: list[_KademliaNode] = [
            _KademliaNode(transport, f"{prefix}-{i}") for i in range(size)
        ]
        # Bootstrap: every node learns the first node, then performs a
        # self-lookup to populate its buckets (the standard join procedure).
        seed = self.nodes[0]
        for node in self.nodes[1:]:
            node._touch(seed.address)
            seed._touch(node.address)
        for node in self.nodes:
            self._iterative_find_node(node.address, node.node_id)

    # -- iterative lookup ------------------------------------------------------

    def _iterative_find_node(self, src: str, target_id: int) -> list[str]:
        """Client-driven convergence toward the k closest nodes."""
        start = self.transport.node(src) if src in self.transport.addresses() else self.nodes[0]
        shortlist = getattr(start, "closest_known", self.nodes[0].closest_known)(
            target_id, K_BUCKET_SIZE
        )
        if not shortlist:
            shortlist = [self.nodes[0].address]
        queried: set[str] = set()
        while True:
            candidates = [a for a in shortlist if a not in queried and self.transport.is_online(a)]
            if not candidates:
                break
            progress = False
            for address in candidates[:ALPHA]:
                queried.add(address)
                try:
                    learned = self.rpc.call(
                        address, "kad.find_node", target_id, src=src, deadline=KAD_DEADLINE
                    )
                except (NodeOffline, NetworkError):
                    continue
                for contact in learned:
                    if contact not in shortlist:
                        shortlist.append(contact)
                        progress = True
            shortlist.sort(key=lambda a: distance(kad_id(a.encode()), target_id))
            shortlist = shortlist[: K_BUCKET_SIZE * 2]
            if not progress and all(a in queried or not self.transport.is_online(a) for a in shortlist):
                break
        live = [a for a in shortlist if self.transport.is_online(a)]
        return live[:K_BUCKET_SIZE]

    # -- ChordRing-compatible API -------------------------------------------------

    def put(self, key: bytes, value: Any, src: str = "client") -> dict:
        """Store ``value`` on the k closest nodes to ``key``.

        The validator verdict comes from the closest node (all nodes run the
        same deterministic policy); only the closest node fires the
        notification hook, so subscribers see each update exactly once.
        """
        key_id = kad_id(key)
        closest = self._iterative_find_node(src, key_id)
        if not closest:
            return {"ok": False, "reason": "no live nodes"}
        result: dict | None = None
        for rank, address in enumerate(closest):
            payload = {"key_id": key_id, "value": value, "notify": rank == 0}
            try:
                response = self.rpc.call(
                    address, "kad.store", payload, src=src, deadline=KAD_DEADLINE
                )
            except (NodeOffline, NetworkError):
                continue
            if result is None:
                result = response
            if not response["ok"]:
                break  # deterministic policy: every node would refuse
        return result if result is not None else {"ok": False, "reason": "store failed"}

    def get(self, key: bytes, src: str = "client") -> Any:
        """Iterative find_value for ``key``."""
        key_id = kad_id(key)
        for address in self._iterative_find_node(src, key_id):
            try:
                response = self.rpc.call(
                    address, "kad.find_value", key_id, src=src, deadline=KAD_DEADLINE
                )
            except (NodeOffline, NetworkError):
                continue
            if response["found"]:
                return response["value"]
        return None

    def owner_of(self, key: bytes) -> _KademliaNode:
        """The closest live node to ``key`` (primary storer)."""
        closest = self._iterative_find_node(self.nodes[0].address, kad_id(key))
        return self.transport.node(closest[0])  # type: ignore[return-value]
