"""Access-controlled public coin-binding storage (paper Section 5.1).

The policy the paper specifies:

    "only users who know sk_CU (which, supposedly, is only the owner of the
    coin) can write to the id pk_CU (by providing the right signature, which
    can be published along with the binding to back it up), but anyone can
    read the id pk_CU … the broker should also be allowed to write to any id."

A :class:`BindingRecord` is the published value: the binding payload, the
authorizing signature, and who signed (the coin key itself or the broker).
:class:`BindingStore` wires the policy into a Chord ring as each node's
``put_validator`` and exposes typed publish/fetch helpers.  Rollback
protection: a write with a sequence number not larger than the stored one is
rejected, so a fraudulent owner cannot quietly re-point a coin at an old
holder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.dsa import DsaSignature, dsa_verify
from repro.crypto.keys import PublicKey
from repro.crypto.params import DlogParams
from repro.dht.chord import ChordRing, key_to_id
from repro.messages.codec import decode, encode


class WriteRejected(Exception):
    """A put failed the access-control or monotonicity policy."""


@dataclass(frozen=True)
class BindingRecord:
    """The published state of one coin.

    ``payload`` is the canonical encoding of the binding dict (coin public
    key, holder coin public key, sequence number, expiry); ``signer_y`` is
    the ``y`` value of the signing key — either the coin's own public key
    (owner write) or the broker's (downtime write).
    """

    payload: bytes
    signer_y: int
    sig_r: int
    sig_s: int
    via_broker: bool
    #: Optional batch-verification hint (``g**k mod p``); untrusted metadata,
    #: but it must round-trip so a fetched binding stays byte-identical to
    #: the one the owner handed out (the payee compares encodings).
    sig_c: int | None = None

    def encode(self) -> bytes:
        """Canonical encoding (transport sizing, storage)."""
        return encode(
            {
                "payload": self.payload,
                "signer_y": self.signer_y,
                "sig_r": self.sig_r,
                "sig_s": self.sig_s,
                "sig_c": self.sig_c,
                "via_broker": self.via_broker,
            }
        )

    @classmethod
    def from_encoded(cls, data: bytes) -> "BindingRecord":
        """Inverse of :meth:`encode`."""
        fields = decode(data)
        return cls(
            payload=fields["payload"],
            signer_y=fields["signer_y"],
            sig_r=fields["sig_r"],
            sig_s=fields["sig_s"],
            via_broker=fields["via_broker"],
            sig_c=fields.get("sig_c"),
        )

    def binding(self) -> dict[str, Any]:
        """The decoded binding dict."""
        return decode(self.payload)

    def sequence(self) -> int:
        """The binding's sequence number (monotonicity key)."""
        return self.binding()["seq"]


class BindingStore:
    """The coin-binding service on top of a DHT fabric.

    ``ring`` is any object with the shared DHT surface: ``nodes`` (each
    accepting a ``put_validator``/``after_put`` attribute), ``put(key,
    value, src)``, ``get(key, src)``, and ``transport`` —
    :class:`~repro.dht.chord.ChordRing` and
    :class:`~repro.dht.kademlia.KademliaNetwork` both qualify.
    """

    def __init__(self, ring: "ChordRing | Any", params: DlogParams, broker_key: PublicKey) -> None:
        self.ring = ring
        self.params = params
        self.broker_key = broker_key
        for node in ring.nodes:
            node.put_validator = self._validate  # type: ignore[attr-defined]

    # -- policy -------------------------------------------------------------

    def _validate(self, key_id: int, stored: Any, value: Any) -> str | None:
        """Chord put validator: return a rejection reason or ``None``."""
        try:
            record = BindingRecord.from_encoded(value)
            binding = record.binding()
        except Exception:
            return "malformed binding record"
        coin_y = binding.get("coin_y")
        if not isinstance(coin_y, int):
            return "binding lacks coin key"
        if key_to_id(self._coin_key_bytes(coin_y)) != key_id:
            return "binding published under the wrong DHT key"
        # Access control: the signature must verify under the coin key itself
        # (owner write) or the broker key (downtime write).
        if record.via_broker:
            expected = self.broker_key
            if record.signer_y != expected.y:
                return "broker write not signed by the broker"
        else:
            if record.signer_y != coin_y:
                return "owner write not signed by the coin key"
            expected = PublicKey(params=self.params, y=coin_y)
        signature = DsaSignature(r=record.sig_r, s=record.sig_s)
        if not dsa_verify(expected, record.payload, signature):
            return "bad signature"
        if stored is not None:
            try:
                previous = BindingRecord.from_encoded(stored)
                if record.sequence() <= previous.sequence():
                    return "stale sequence number"
            except Exception:
                pass  # corrupt stored state never blocks a valid overwrite
        return None

    def _coin_key_bytes(self, coin_y: int) -> bytes:
        return b"whopay-binding|" + coin_y.to_bytes((coin_y.bit_length() + 7) // 8 or 1, "big")

    # -- API ------------------------------------------------------------------

    def publish(self, record: BindingRecord, src: str = "client") -> None:
        """Publish a binding; raises :class:`WriteRejected` on policy failure."""
        coin_y = record.binding()["coin_y"]
        result = self.ring.put(self._coin_key_bytes(coin_y), record.encode(), src=src)
        if not result["ok"]:
            raise WriteRejected(result["reason"])

    def fetch(self, coin_y: int, src: str = "client") -> BindingRecord | None:
        """Read the current public binding of coin ``coin_y`` (anyone may)."""
        raw = self.ring.get(self._coin_key_bytes(coin_y), src=src)
        return None if raw is None else BindingRecord.from_encoded(raw)
