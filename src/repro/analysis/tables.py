"""Plain-text table formatting for benchmark output.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output consistent and readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[dict[str, Any]], columns: Sequence[str], title: str | None = None) -> str:
    """Render ``rows`` (dicts) as an aligned text table over ``columns``."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    cells = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells)) for i, col in enumerate(columns)
    ]
    out: list[str] = []
    if title:
        out.append(title)
    header = "  ".join(col.rjust(widths[i]) for i, col in enumerate(columns))
    out.append(header)
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(line[i].rjust(widths[i]) for i in range(len(columns))))
    return "\n".join(out)


def format_series_table(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render one x-column plus one column per named series (figure style)."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, Any] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i]
        rows.append(row)
    return format_table(rows, [x_label, *series.keys()], title=title)
