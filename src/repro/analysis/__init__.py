"""Result formatting and series-shape checks for the benchmark harness."""

from repro.analysis.series import crossover_index, is_decreasing, is_increasing, rises_then_falls
from repro.analysis.stats import gini, pearson, percentile, summarize, top_share
from repro.analysis.tables import format_series_table, format_table

__all__ = [
    "format_table",
    "format_series_table",
    "is_increasing",
    "is_decreasing",
    "rises_then_falls",
    "crossover_index",
    "gini",
    "pearson",
    "top_share",
    "percentile",
    "summarize",
]
