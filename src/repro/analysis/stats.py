"""Distribution statistics for load analysis.

Used by the load-distribution ablation and available to downstream users
inspecting per-peer work (e.g. :meth:`repro.sim.metrics.SimMetrics.
served_distribution`).  Pure-Python implementations, exact definitions.
"""

from __future__ import annotations

import math
from typing import Sequence


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution.

    0 = perfectly equal, →1 = fully concentrated.  Computed from the sorted
    cumulative form; an all-zero (or empty) distribution is defined as 0.
    """
    if any(v < 0 for v in values):
        raise ValueError("gini is defined for non-negative values")
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if n == 0 or total == 0:
        return 0.0
    weighted = sum(i * v for i, v in enumerate(ordered, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0 when either series is constant."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n == 0:
        raise ValueError("series must be non-empty")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    sd_x = math.sqrt(sum((x - mean_x) ** 2 for x in xs))
    sd_y = math.sqrt(sum((y - mean_y) ** 2 for y in ys))
    if sd_x == 0 or sd_y == 0:
        return 0.0
    return cov / (sd_x * sd_y)


def top_share(values: Sequence[float], fraction: float = 0.1) -> float:
    """Share of the total held by the top ``fraction`` of entries.

    ``fraction=0.1`` answers "what do the top 10% carry?".  At least one
    entry is always counted, so tiny populations behave sensibly.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(values, reverse=True)
    total = sum(ordered)
    if not ordered or total == 0:
        return 0.0
    k = max(1, int(len(ordered) * fraction))
    return sum(ordered[:k]) / total


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) by linear interpolation."""
    if not values:
        raise ValueError("empty series")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Five-number-style summary plus concentration measures."""
    if not values:
        raise ValueError("empty series")
    return {
        "min": float(min(values)),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "max": float(max(values)),
        "mean": sum(values) / len(values),
        "gini": gini(values),
        "top10_share": top_share(values, 0.1),
    }
