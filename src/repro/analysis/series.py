"""Shape predicates for reproduced series.

"Reproducing a figure" here means the *shape* holds — who wins, what rises,
where the peak falls — not that absolute numbers match a 2005 testbed.
These predicates are what the benchmark assertions are written in, with a
tolerance knob for simulation noise.
"""

from __future__ import annotations

from typing import Sequence


def is_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if the series never drops by more than ``tolerance`` (relative)."""
    for previous, current in zip(values, values[1:]):
        floor = previous * (1.0 - tolerance) if previous > 0 else previous - tolerance
        if current < floor:
            return False
    return True


def is_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if the series never rises by more than ``tolerance`` (relative)."""
    return is_increasing([-v for v in values], tolerance=0.0) or all(
        current <= previous * (1.0 + tolerance) + (tolerance if previous == 0 else 0)
        for previous, current in zip(values, values[1:])
    )


def rises_then_falls(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if the series peaks strictly inside the range (unimodal shape).

    The paper's downtime transfer/renewal curves have this shape: the two
    competing forces (more payments vs fewer offline owners) trade dominance
    inside the sweep.
    """
    if len(values) < 3:
        return False
    peak = max(range(len(values)), key=lambda i: values[i])
    if peak == 0 or peak == len(values) - 1:
        return False
    return is_increasing(values[: peak + 1], tolerance) and is_decreasing(values[peak:], tolerance)


def crossover_index(a: Sequence[float], b: Sequence[float]) -> int | None:
    """First index where series ``a`` stops being below series ``b``.

    Returns ``None`` if ``a`` stays below ``b`` everywhere (no crossover).
    """
    if len(a) != len(b):
        raise ValueError("series must have equal length")
    for i, (x, y) in enumerate(zip(a, b)):
        if x >= y:
            return i
    return None
