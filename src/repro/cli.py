"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common entry points without writing any code:

* ``sweep``  — run a Setup-A availability sweep (or Setup-B size sweep) for
  one (policy, sync) configuration and print the figure-style table;
* ``run``    — run a single simulation with explicit parameters and print
  its operation counts and load summary;
* ``crypto`` — time the crypto substrate on this host (Table 2 style).

Examples::

    python -m repro sweep --policy I --sync lazy
    python -m repro sweep --setup B --policy III --full
    python -m repro run --peers 200 --days 3 --mu 4 --nu 2 --policy II.a
    python -m repro crypto --bits 1024
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.tables import format_series_table, format_table
from repro.core.clock import DAY, HOUR
from repro.sim.config import SimConfig
from repro.sim.policies import POLICIES, policy_by_name
from repro.sim.runner import run_availability_sweep, run_one, run_scaling_sweep
from repro.sim.simulator import Simulation


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WhoPay reproduction driver (simulation sweeps, single runs, crypto timing)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run a Setup-A (availability) or Setup-B (size) sweep")
    sweep.add_argument("--setup", choices=("A", "B"), default="A")
    sweep.add_argument("--policy", choices=sorted(POLICIES), default="I")
    sweep.add_argument("--sync", choices=("proactive", "lazy"), default="proactive")
    sweep.add_argument("--nu", type=float, default=2.0, help="mean offline hours (Setup A)")
    sweep.add_argument("--full", action="store_true", help="paper scale (1000 peers, 10 days)")
    sweep.add_argument(
        "--parallel",
        action="store_true",
        help="fan sweep points over a process pool (identical rows, less wall-clock)",
    )

    single = sub.add_parser("run", help="run one simulation configuration")
    single.add_argument("--peers", type=int, default=150)
    single.add_argument("--days", type=float, default=5.0)
    single.add_argument("--mu", type=float, default=2.0, help="mean online hours")
    single.add_argument("--nu", type=float, default=2.0, help="mean offline hours")
    single.add_argument("--renewal-days", type=float, default=1.5)
    single.add_argument("--policy", choices=sorted(POLICIES), default="I")
    single.add_argument("--sync", choices=("proactive", "lazy"), default="proactive")
    single.add_argument("--heterogeneity", choices=("uniform", "powerlaw"), default="uniform")
    single.add_argument("--seed", type=int, default=20060704)

    crypto = sub.add_parser("crypto", help="time the crypto substrate (Table 2 style)")
    crypto.add_argument("--bits", type=int, choices=(512, 1024, 2048), default=1024)
    crypto.add_argument("--iterations", type=int, default=50)

    figures = sub.add_parser(
        "figures", help="regenerate every figure's data (CSV + text report)"
    )
    figures.add_argument("--out", default="figures-out", help="output directory")
    figures.add_argument("--full", action="store_true", help="paper scale (slow)")

    return parser


def _cmd_sweep(args: argparse.Namespace) -> int:
    policy = policy_by_name(args.policy)
    if args.setup == "A":
        rows = run_availability_sweep(
            policy,
            args.sync,
            small=not args.full,
            mean_offline_hours=args.nu,
            parallel=args.parallel,
        )
        x_label, x_values = "mu_hours", [r["mu_hours"] for r in rows]
    else:
        rows = run_scaling_sweep(policy, args.sync, small=not args.full, parallel=args.parallel)
        x_label, x_values = "n_peers", [r["n_peers"] for r in rows]
    print(format_series_table(
        x_label,
        x_values,
        {
            "purchases": [r["broker_purchase"] for r in rows],
            "dt_transfers": [r["broker_downtime_transfer"] for r in rows],
            "dt_renewals": [r["broker_downtime_renewal"] for r in rows],
            "syncs": [r["broker_sync"] for r in rows],
            "broker_cpu": [r["broker_cpu"] for r in rows],
            "cpu_ratio": [round(r["cpu_ratio"], 1) for r in rows],
            "broker_share": [round(r["broker_cpu_share"], 4) for r in rows],
        },
        title=f"Setup {args.setup}: policy {policy.name} + {args.sync} sync"
        + ("" if args.full else "  (reduced scale; --full for paper scale)"),
    ))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = SimConfig(
        n_peers=args.peers,
        duration=args.days * DAY,
        mean_online=args.mu * HOUR,
        mean_offline=args.nu * HOUR,
        renewal_period=args.renewal_days * DAY,
        policy=policy_by_name(args.policy),
        sync_mode=args.sync,
        heterogeneity=args.heterogeneity,
        seed=args.seed,
    )
    start = time.perf_counter()
    metrics = Simulation(config).run().metrics
    elapsed = time.perf_counter() - start
    print(f"# {config.describe()}  [simulated {args.days:g} days in {elapsed:.2f}s]")
    print(format_table(
        [{"operation": op, "count": count} for op, count in sorted(metrics.ops.items())],
        ["operation", "count"],
        title="operation counts",
    ))
    print()
    print(format_table(
        [
            {"metric": "payments made", "value": metrics.payments_made},
            {"metric": "payments failed", "value": metrics.payments_failed},
            {"metric": "broker CPU load", "value": metrics.broker_cpu_load()},
            {"metric": "broker/peer CPU ratio", "value": round(metrics.cpu_load_ratio(), 2)},
            {"metric": "broker share of CPU load", "value": round(metrics.broker_cpu_share(), 4)},
            {"metric": "broker share of comm load", "value": round(metrics.broker_comm_share(), 4)},
        ],
        ["metric", "value"],
        title="load summary",
    ))
    return 0


def _cmd_crypto(args: argparse.Namespace) -> int:
    from repro.crypto.dsa import dsa_generate, dsa_sign, dsa_verify
    from repro.crypto.params import PARAMS_1024_160, PARAMS_2048_256, PARAMS_TEST_512

    params = {512: PARAMS_TEST_512, 1024: PARAMS_1024_160, 2048: PARAMS_2048_256}[args.bits]
    iterations = args.iterations

    start = time.perf_counter()
    keypairs = [dsa_generate(params) for _ in range(iterations)]
    keygen_ms = 1000 * (time.perf_counter() - start) / iterations

    keypair = keypairs[0]
    messages = [b"m%d" % i for i in range(iterations)]
    start = time.perf_counter()
    signatures = [dsa_sign(keypair, m) for m in messages]
    sign_ms = 1000 * (time.perf_counter() - start) / iterations

    start = time.perf_counter()
    for message, signature in zip(messages, signatures):
        assert dsa_verify(keypair.public, message, signature)
    verify_ms = 1000 * (time.perf_counter() - start) / iterations

    print(format_table(
        [
            {"operation": f"DSA {args.bits}-bit key generation", "mean_ms": round(keygen_ms, 3)},
            {"operation": f"DSA {args.bits}-bit signature generation", "mean_ms": round(sign_ms, 3)},
            {"operation": f"DSA {args.bits}-bit signature verification", "mean_ms": round(verify_ms, 3)},
        ],
        ["operation", "mean_ms"],
        title=f"measured operation cost ({iterations} iterations; paper Table 2: 7.8 / 13.9 / 12.3 ms)",
    ))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.sim.figures import generate_all

    figures = generate_all(small=not args.full, out_dir=args.out)
    print(f"wrote {len(figures)} figures ({', '.join(figures)}) to {args.out}/")
    print(f"scale: {'paper (1000 peers, 10 days)' if args.full else 'reduced (use --full for paper scale)'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "crypto":
        return _cmd_crypto(args)
    if args.command == "figures":
        return _cmd_figures(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
