"""Public-key certificates (paper Section 4.2, Purchase).

    "He keeps sk_CU to himself and sends pk_CU along with his identity
    (e.g., in the form of a public key certificate) signed by his private
    key to the broker."

The paper assumes a PKI binding user identities to keys; this module is
that PKI: a certificate authority signs ``(subject, public key, validity)``
statements, and anyone holding the CA's key verifies them.  The broker uses
certificates to authenticate purchase/sync requests without pre-registered
key tables, and peers can use them to authenticate coin owners.

Deliberately minimal — one CA, no chains, no revocation lists beyond an
in-CA serial blacklist — because WhoPay needs exactly "a certificate
authority exists"; the protocol security never rests on PKI subtleties.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any

from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.messages.envelope import SignedMessage, seal


class CertificateError(Exception):
    """Certificate issuance/verification failure."""


@dataclass(frozen=True)
class IdentityCertificate:
    """A CA-signed binding of a subject name to a public key."""

    signed: SignedMessage

    @property
    def payload(self) -> dict[str, Any]:
        """Decoded certificate body."""
        return self.signed.payload

    @property
    def subject(self) -> str:
        """The certified identity (a transport address in this system)."""
        return self.payload["subject"]

    @property
    def subject_y(self) -> int:
        """The certified public key value."""
        return self.payload["subject_y"]

    @property
    def serial(self) -> bytes:
        """Unique certificate serial (revocation handle)."""
        return self.payload["serial"]

    @property
    def not_after(self) -> float:
        """Expiry timestamp."""
        return float(self.payload["not_after"])

    def subject_key(self, params: DlogParams) -> PublicKey:
        """The certified key as a verification key."""
        return PublicKey(params=params, y=self.subject_y)

    def verify(self, ca_key: PublicKey, now: float) -> bool:
        """Check the CA signature, shape, and validity window."""
        if self.signed.signer.y != ca_key.y or not self.signed.verify():
            return False
        payload = self.payload
        if not isinstance(payload, dict) or payload.get("kind") != "pki.identity_cert":
            return False
        if not isinstance(payload.get("subject"), str) or not isinstance(payload.get("subject_y"), int):
            return False
        return float(payload["not_before"]) <= now <= float(payload["not_after"])

    def encode(self) -> bytes:
        """Canonical bytes."""
        return self.signed.encode()

    @classmethod
    def from_encoded(cls, data: bytes, params: DlogParams) -> "IdentityCertificate":
        """Rebuild from :meth:`encode` output."""
        from repro.core.protocol import decode_signed

        return cls(signed=decode_signed(data, params))


class CertificateAuthority:
    """The (single) certificate authority."""

    def __init__(self, params: DlogParams, validity: float = 365 * 24 * 3600.0) -> None:
        self.params = params
        self.validity = validity
        self.keypair = KeyPair.generate(params)
        self.issued: dict[bytes, str] = {}  # serial -> subject
        self.revoked: set[bytes] = set()

    @property
    def public_key(self) -> PublicKey:
        """The CA verification key (distributed out of band)."""
        return self.keypair.public

    def issue(self, subject: str, subject_key: PublicKey, now: float) -> IdentityCertificate:
        """Certify that ``subject`` controls ``subject_key``.

        A real CA would demand proof of possession; here the enrollment
        channel (WhoPayNetwork.add_peer) constructs the key locally, which
        serves the same purpose.
        """
        if not self.params.is_element(subject_key.y):
            raise CertificateError("subject key is not a valid group element")
        serial = secrets.token_bytes(12)
        certificate = IdentityCertificate(
            signed=seal(
                self.keypair,
                {
                    "kind": "pki.identity_cert",
                    "subject": subject,
                    "subject_y": subject_key.y,
                    "serial": serial,
                    "not_before": int(now),
                    "not_after": int(now + self.validity),
                },
            )
        )
        self.issued[serial] = subject
        return certificate

    def revoke(self, serial: bytes) -> None:
        """Blacklist a certificate (compromised key, banned user)."""
        if serial not in self.issued:
            raise CertificateError("unknown serial")
        self.revoked.add(serial)

    def is_revoked(self, certificate: IdentityCertificate) -> bool:
        """Online revocation check (an OCSP stand-in)."""
        return certificate.serial in self.revoked
