"""WhoPay: a scalable and anonymous payment system for P2P environments.

A complete, from-scratch reproduction of Wei, Chen, Smith & Vo (ICDCS 2006 /
UCB/CSD-5-1386): the full cryptographic protocol suite, every substrate it
depends on (signatures, group signatures, DHT, indirection overlay,
in-memory network), the baselines it compares against (PPay, centralized
anonymous transfer, layered coins, PayWord), and the operation-level
simulator that regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import PeerConfig, WhoPayNetwork, PARAMS_TEST_512

    net = WhoPayNetwork(params=PARAMS_TEST_512)
    alice = net.add_peer("alice", PeerConfig(balance=10))
    bob = net.add_peer("bob")
    coin = alice.purchase()          # coins are public keys
    alice.issue("bob", coin.coin_y)  # pay by (semi-anonymous) issue
    bob.deposit(coin.coin_y)         # cash out, anonymously

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    Broker,
    BrokerTopology,
    Clock,
    Coin,
    CoinBinding,
    HeldCoin,
    Judge,
    OwnedCoinState,
    Peer,
    PeerConfig,
    WhoPayNetwork,
)
from repro.crypto.params import PARAMS_1024_160, PARAMS_2048_256, PARAMS_TEST_512, DlogParams
from repro.sim import SimConfig, Simulation

__version__ = "1.0.0"

__all__ = [
    "WhoPayNetwork",
    "BrokerTopology",
    "PeerConfig",
    "Peer",
    "Broker",
    "Judge",
    "Clock",
    "Coin",
    "CoinBinding",
    "HeldCoin",
    "OwnedCoinState",
    "DlogParams",
    "PARAMS_TEST_512",
    "PARAMS_1024_160",
    "PARAMS_2048_256",
    "SimConfig",
    "Simulation",
    "__version__",
]
