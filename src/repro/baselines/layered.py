"""Layered coins: offline transfers by signature stacking (paper Section 7).

    "each time a coin is transferred, the current holder of the coin simply
    adds another layer of signature to the coin, which serves as a proof of
    relinquishment.  Group signatures can be used to provide fairness
    without compromising anonymity.  No third party is involved in the
    transfer and thus the scheme is extremely scalable.  This scheme suffers
    two major problems though.  First, coins grow in size after each
    transfer.  Second, double spending is easier to commit and harder to
    defend …  Anyone can double spend in this scheme."

The implementation makes both trade-offs measurable: :meth:`LayeredCoin.size_bytes`
grows linearly per hop (benchmarked in the ablation suite), and a forked
chain is only caught when both forks reach :meth:`LayeredCoinSystem.deposit`,
where first-divergence analysis plus judge opening identifies the forker.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.errors import DoubleSpendDetected, ProtocolError, VerificationFailed
from repro.core.judge import Judge
from repro.crypto.group_signature import GroupMemberKey, GroupSignature, group_sign, group_verify
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.messages.codec import encode
from repro.messages.envelope import SignedMessage, seal

#: Paper: "a maximum number of layers can be imposed" to bound size/risk.
DEFAULT_MAX_LAYERS = 16


@dataclass(frozen=True)
class Layer:
    """One transfer hop: a holder signing the coin over to the next key."""

    statement: SignedMessage  # {coin_y, index, next_holder_y}_sk(layer key)
    group_signature: GroupSignature  # fairness: judge can open the signer
    roster_version: int

    def encode(self) -> bytes:
        """Canonical bytes (what makes coins 'grow in size')."""
        return encode(
            {
                "statement": self.statement.encode(),
                "gs_c1": self.group_signature.ciphertext.c1,
                "gs_c2": self.group_signature.ciphertext.c2,
                "gs_challenges": list(self.group_signature.challenges),
                "gs_responses_r": list(self.group_signature.responses_r),
                "gs_responses_x": list(self.group_signature.responses_x),
                "roster_version": self.roster_version,
            }
        )


@dataclass(frozen=True)
class LayeredCoin:
    """A base certificate plus a stack of transfer layers."""

    base: SignedMessage  # broker-signed {coin_y, value}
    layers: tuple[Layer, ...] = ()

    @property
    def coin_y(self) -> int:
        """The coin's base key."""
        return self.base.payload["coin_y"]

    @property
    def value(self) -> int:
        """Denomination."""
        return self.base.payload["value"]

    @property
    def depth(self) -> int:
        """Number of transfer layers so far."""
        return len(self.layers)

    @property
    def current_holder_y(self) -> int:
        """Key of the party entitled to spend next."""
        if not self.layers:
            return self.coin_y
        return self.layers[-1].statement.payload["next_holder_y"]

    def size_bytes(self) -> int:
        """Wire size — grows with every hop (the paper's first problem)."""
        return len(self.base.encode()) + sum(len(layer.encode()) for layer in self.layers)

    def verify(self, broker_key: PublicKey, judge: Judge, params: DlogParams) -> bool:
        """Validate the full chain: base cert + every layer's two signatures."""
        if self.base.signer.y != broker_key.y or not self.base.verify():
            return False
        expected_signer = self.coin_y
        for index, layer in enumerate(self.layers):
            statement = layer.statement
            if statement.signer.y != expected_signer:
                return False
            if not statement.verify():
                return False
            payload = statement.payload
            if payload["coin_y"] != self.coin_y or payload["index"] != index:
                return False
            gpk = judge.group_public_key_at(layer.roster_version)
            if not group_verify(gpk, statement.encode(), layer.group_signature):
                return False
            expected_signer = payload["next_holder_y"]
        return True


class LayeredCoinSystem:
    """Mint / transfer / deposit driver for layered coins."""

    def __init__(
        self,
        judge: Judge,
        params: DlogParams,
        max_layers: int = DEFAULT_MAX_LAYERS,
    ) -> None:
        self.judge = judge
        self.params = params
        self.max_layers = max_layers
        self.broker_keypair = KeyPair.generate(params)
        self.deposited: dict[int, LayeredCoin] = {}
        self.fraud_events: list[DoubleSpendDetected] = []

    def mint(self, value: int = 1) -> tuple[LayeredCoin, KeyPair]:
        """Mint a coin; the buyer's keypair is the chain root."""
        keypair = KeyPair.generate(self.params)
        base = seal(
            self.broker_keypair,
            {"kind": "layered.coin", "coin_y": keypair.public.y, "value": value},
        )
        return LayeredCoin(base=base), keypair

    def transfer(
        self,
        coin: LayeredCoin,
        holder_keypair: KeyPair,
        holder_member: GroupMemberKey,
        next_holder_y: int,
    ) -> LayeredCoin:
        """Append one layer: sign the coin over to ``next_holder_y``.

        Purely peer-local — no broker, no owner, no DHT.  Raises once the
        layer cap is hit (the paper's mitigation for unbounded growth).
        """
        if coin.depth >= self.max_layers:
            raise ProtocolError(f"coin reached the {self.max_layers}-layer cap")
        if holder_keypair.public.y != coin.current_holder_y:
            raise VerificationFailed("signer is not the current holder")
        statement = seal(
            holder_keypair,
            {
                "kind": "layered.transfer",
                "coin_y": coin.coin_y,
                "index": coin.depth,
                "next_holder_y": next_holder_y,
            },
        )
        gpk = self.judge.group_public_key()
        layer = Layer(
            statement=statement,
            group_signature=group_sign(gpk, holder_member, statement.encode()),
            roster_version=len(gpk.roster),
        )
        return replace(coin, layers=coin.layers + (layer,))

    def deposit(self, coin: LayeredCoin) -> int:
        """Redeem a chain; fork detection happens here and only here.

        A second deposit of the same base coin triggers divergence analysis:
        the first layer index where the two chains name different successors
        identifies the double-spender, whose group signature the judge opens.
        """
        if not coin.verify(self.broker_keypair.public, self.judge, self.params):
            raise VerificationFailed("layered coin fails verification")
        previous = self.deposited.get(coin.coin_y)
        if previous is not None:
            culprit = self._attribute_fork(previous, coin)
            event = DoubleSpendDetected(
                "layered coin deposited twice",
                evidence={"coin_y": coin.coin_y, "culprit": culprit},
            )
            self.fraud_events.append(event)
            raise event
        self.deposited[coin.coin_y] = coin
        return coin.value

    def _attribute_fork(self, first: LayeredCoin, second: LayeredCoin) -> str | None:
        for layer_a, layer_b in zip(first.layers, second.layers):
            if layer_a.statement.payload["next_holder_y"] != layer_b.statement.payload["next_holder_y"]:
                # Same signer key, two different successors: the forker.
                return self.judge.open(layer_a.group_signature)
        # One chain is a prefix of the other: the holder at the fork point
        # both spent onward and deposited — blame the depositor of the
        # shorter chain's tip (they signed nothing, so open the last layer's
        # successor via the longer chain's next signature if present).
        shorter, longer = (
            (first, second) if first.depth <= second.depth else (second, first)
        )
        if shorter.depth < longer.depth:
            return self.judge.open(longer.layers[shorter.depth].group_signature)
        return None
