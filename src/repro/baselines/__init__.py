"""Baseline payment systems the paper compares against or builds on.

* :mod:`repro.baselines.ppay` — PPay (Yang & Garcia-Molina, CCS 2003;
  paper Section 3.1): scalable like WhoPay but with owner *and* holder
  identities exposed in every coin.  The scalability baseline.
* :mod:`repro.baselines.centralized` — a Burk–Pfitzmann / Vo–Hohenberger
  style online-transfer system where every transfer goes through the broker
  (paper Section 7): anonymous and fair but centralized.  The anonymity
  baseline.
* :mod:`repro.baselines.layered` — layered-coin offline transfers (paper
  Section 7): no third party per hop, but coins grow per transfer and
  double-spending is only caught at deposit.
* :mod:`repro.baselines.payword` — PayWord hash-chain credit windows that
  aggregate micropayments into WhoPay payments (paper Section 7, last
  paragraph).
"""

from repro.baselines.centralized import CentralizedBroker, CentralizedPeer
from repro.baselines.layered import LayeredCoin, LayeredCoinSystem
from repro.baselines.payword import PaywordCreditWindow
from repro.baselines.ppay import PPayBroker, PPayPeer

__all__ = [
    "PPayBroker",
    "PPayPeer",
    "CentralizedBroker",
    "CentralizedPeer",
    "LayeredCoin",
    "LayeredCoinSystem",
    "PaywordCreditWindow",
]
