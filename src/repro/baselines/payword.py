"""PayWord credit windows over WhoPay (paper Section 7, last paragraph).

    "we can use a scheme such as PayWord to first aggregate small
    micropayments into bigger payments and carry out the bigger payments
    using WhoPay.  That is, each pair of users maintains a soft credit
    window between themselves and only makes payments when this window
    reaches a threshold value."

:class:`PaywordCreditWindow` is that pairwise window: the payer commits a
signed hash-chain anchor; each micropayment reveals one more chain link
(one SHA-256 — no signatures, no network round trips beyond the token); when
``threshold`` unpaid units accumulate, :meth:`settle` fires real WhoPay
payments and opens a fresh chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ProtocolError, VerificationFailed
from repro.core.peer import Peer
from repro.crypto.hashchain import HashChain, verify_chain_link
from repro.messages.envelope import SignedMessage, seal

#: Default payment-method preference for settlement (paper's policy III order).
SETTLE_PREFERENCES = ("transfer", "issue", "purchase_issue")


@dataclass
class MicropaymentToken:
    """What the payer hands over per micropayment: ``(index, w_index)``."""

    index: int
    link: bytes


class PaywordCreditWindow:
    """A pairwise soft-credit channel settling through WhoPay coins.

    One window per (payer, payee) direction; the payee verifies each token
    in O(delta) hashes and trusts the signed anchor for everything else.
    """

    def __init__(
        self,
        payer: Peer,
        payee: Peer,
        chain_length: int = 100,
        threshold: int = 10,
    ) -> None:
        if threshold < 1 or threshold > chain_length:
            raise ValueError("threshold must be in [1, chain_length]")
        self.payer = payer
        self.payee = payee
        self.chain_length = chain_length
        self.threshold = threshold
        self.micropayments_made = 0
        self.whopay_payments_made = 0
        self._open_chain()

    def _open_chain(self) -> None:
        # Per-chain accounting: both the payee's verified watermark and the
        # settled watermark restart with every fresh chain.
        self.settled_units = 0
        self._chain = HashChain(self.chain_length)
        self._commitment: SignedMessage = seal(
            self.payer.identity,
            {
                "kind": "payword.commitment",
                "payee": self.payee.address,
                "anchor": self._chain.anchor,
                "length": self.chain_length,
            },
        )
        if not self._verify_commitment():
            raise VerificationFailed("payer produced an invalid commitment")
        self._verified_index = 0

    def _verify_commitment(self) -> bool:
        payload = self._commitment.payload
        return (
            self._commitment.verify()
            and payload["payee"] == self.payee.address
            and payload["length"] == self.chain_length
        )

    # -- payer side --------------------------------------------------------

    @property
    def unsettled_units(self) -> int:
        """Micropayment units revealed but not yet settled in coins."""
        return self._verified_index - self.settled_units

    def micropay(self, units: int = 1) -> MicropaymentToken:
        """Spend ``units`` more credit; returns the token for the payee.

        Automatically settles (with real WhoPay payments) whenever the
        revealed-but-unsettled credit reaches the threshold.
        """
        index, link = self._chain.pay(units)
        token = MicropaymentToken(index=index, link=link)
        self.micropayments_made += units
        self._receive(token)
        if self._verified_index - self.settled_units >= self.threshold:
            self.settle()
        return token

    def settle(self) -> int:
        """Convert accumulated credit into WhoPay payments; returns units paid.

        Each threshold-sized block becomes one unit WhoPay payment (the
        "bigger payment").  A fresh chain opens if this one is exhausted.
        """
        owed = self._verified_index - self.settled_units
        blocks = owed // self.threshold
        for _ in range(blocks):
            self.payer.pay(self.payee.address, SETTLE_PREFERENCES)
            self.whopay_payments_made += 1
            self.settled_units += self.threshold
        if self._chain.remaining == 0 and self._verified_index == self.settled_units:
            self._open_chain()
        return blocks * self.threshold

    # -- payee side -----------------------------------------------------------

    def _receive(self, token: MicropaymentToken) -> None:
        payload = self._commitment.payload
        if token.index <= self._verified_index or token.index > payload["length"]:
            raise ProtocolError("token index out of window")
        if not verify_chain_link(payload["anchor"], token.index, token.link):
            raise VerificationFailed("hash-chain token does not verify")
        self._verified_index = token.index
