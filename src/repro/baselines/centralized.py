"""A centralized anonymous transfer system (paper Sections 1, 7).

Models the Burk–Pfitzmann / Vo–Hohenberger lineage WhoPay descends from:
coins are public keys (anonymity), holders sign with coin keys plus group
keys (fairness), **but every transfer goes through the broker** — there are
no peer-served transfers at all.  That central mediation is the scalability
bottleneck WhoPay removes, and the ablation benchmark
(``benchmarks/bench_ablation_baselines.py``) measures it directly: the
broker here handles 100% of transfer load, versus ~5% for WhoPay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.clients import EndpointClient
from repro.core.clock import Clock
from repro.core.errors import (
    DoubleSpendDetected,
    InsufficientFunds,
    NotHolder,
    ProtocolError,
    UnknownCoin,
    VerificationFailed,
)
from repro.core.judge import Judge
from repro.crypto.group_signature import GroupMemberKey
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.messages.envelope import DualSignedMessage, group_seal, seal
from repro.net.node import Node
from repro.net.rpc import RetryPolicy
from repro.net.transport import Transport

PURCHASE = "central.purchase"
TRANSFER = "central.transfer"
DEPOSIT = "central.deposit"
RECEIVE = "central.receive"


class CentralBrokerClient(EndpointClient):
    """Typed facade over the centralized broker's three operations."""

    def __init__(self, node: Node, broker_address: str, policy: RetryPolicy | None = None) -> None:
        super().__init__(node, policy=policy)
        self.broker_address = broker_address

    def purchase(self, signed_request: bytes) -> dict[str, Any]:
        """Mint a coin against the buyer's account."""
        return self._call(self.broker_address, PURCHASE, signed_request, mutating=True)

    def transfer(self, dual_envelope: bytes) -> dict[str, Any]:
        """Re-bind a coin to a new holder key (broker-mediated)."""
        return self._call(self.broker_address, TRANSFER, dual_envelope, mutating=True)

    def deposit(self, dual_envelope: bytes) -> dict[str, Any]:
        """Redeem a coin for account credit."""
        return self._call(self.broker_address, DEPOSIT, dual_envelope, mutating=True)


class CentralPeerClient(EndpointClient):
    """Typed facade over the payee-side receive exchange."""

    def receive(self, payee: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Offer/complete leg of handing a coin to the payee."""
        return self._call(payee, RECEIVE, payload, mutating=True)


@dataclass
class CentralHolding:
    """Holder-side state: coin id, my coin-local keypair, and value."""

    coin_y: int
    holder_keypair: KeyPair
    value: int


class CentralizedBroker(Node):
    """The broker that mediates *every* operation."""

    def __init__(
        self,
        transport: Transport,
        judge: Judge,
        params: DlogParams,
        clock: Clock,
        address: str = "central-broker",
    ) -> None:
        super().__init__(transport, address)
        self.params = params
        self.judge = judge
        self.clock = clock
        self.keypair = KeyPair.generate(params)
        self.accounts: dict[str, tuple[PublicKey, int]] = {}
        # The broker's ledger IS the system state: coin -> current holder key.
        self.bindings: dict[int, int] = {}
        self.values: dict[int, int] = {}
        self.deposited: set[int] = set()
        self.fraud_events: list[DoubleSpendDetected] = []
        self.counts = {"purchases": 0, "transfers": 0, "deposits": 0}
        self._gpk_cache: dict[int, Any] = {}
        self.on(PURCHASE, self._handle_purchase)
        self.on(TRANSFER, self._handle_transfer)
        self.on(DEPOSIT, self._handle_deposit)

    @property
    def public_key(self) -> PublicKey:
        """The broker's verification key."""
        return self.keypair.public

    def open_account(self, name: str, identity: PublicKey, balance: int) -> None:
        """Register a user account."""
        self.accounts[name] = (identity, balance)

    def balance(self, name: str) -> int:
        """Account balance."""
        return self.accounts[name][1]

    def _gpk_at(self, version: int):
        if version not in self._gpk_cache:
            self._gpk_cache[version] = self.judge.group_public_key_at(version)
        return self._gpk_cache[version]

    def _verify_holder(self, envelope: DualSignedMessage, coin_y: int) -> None:
        if not envelope.verify(self._gpk_at(envelope.roster_version)):
            raise VerificationFailed("holder envelope invalid")
        if coin_y not in self.bindings:
            raise UnknownCoin(f"coin {coin_y:#x} not in circulation")
        if coin_y in self.deposited:
            event = DoubleSpendDetected("coin already deposited", evidence={"coin_y": coin_y})
            self.fraud_events.append(event)
            raise event
        if envelope.coin_signer.y != self.bindings[coin_y]:
            raise NotHolder("not signed by the currently bound holder key")

    # -- handlers -----------------------------------------------------------

    def _handle_purchase(self, src: str, data: bytes) -> dict[str, Any]:
        self.counts["purchases"] += 1
        from repro.core.protocol import decode_signed

        signed = decode_signed(data, self.params)
        identity, balance = self.accounts.get(src, (None, 0))
        if identity is None or signed.signer.y != identity.y or not signed.verify():
            raise VerificationFailed("purchase not signed by the account identity")
        coin_y = signed.payload["coin_y"]
        value = signed.payload["value"]
        if balance < value:
            raise InsufficientFunds(src)
        if coin_y in self.bindings:
            raise ProtocolError("coin key collision")
        self.accounts[src] = (identity, balance - value)
        self.bindings[coin_y] = coin_y  # initially bound to itself (the buyer)
        self.values[coin_y] = value
        return {"ok": True}

    def _handle_transfer(self, src: str, data: bytes) -> dict[str, Any]:
        self.counts["transfers"] += 1
        from repro.core.protocol import decode_dual

        envelope = decode_dual(data, self.params)
        payload = envelope.payload
        coin_y = payload["coin_y"]
        new_holder_y = payload["new_holder_y"]
        self._verify_holder(envelope, coin_y)
        if not self.params.is_element(new_holder_y):
            raise ProtocolError("new holder key invalid")
        self.bindings[coin_y] = new_holder_y
        return {"ok": True, "value": self.values[coin_y]}

    def _handle_deposit(self, src: str, data: bytes) -> dict[str, Any]:
        self.counts["deposits"] += 1
        from repro.core.protocol import decode_dual

        envelope = decode_dual(data, self.params)
        payload = envelope.payload
        coin_y = payload["coin_y"]
        self._verify_holder(envelope, coin_y)
        self.deposited.add(coin_y)
        value = self.values[coin_y]
        payout = payload["payout_to"]
        identity, balance = self.accounts.get(payout, (envelope.coin_signer, 0))
        self.accounts[payout] = (identity, balance + value)
        return {"ok": True, "credited": value}


class CentralizedPeer(Node):
    """A user of the centralized system."""

    def __init__(
        self,
        transport: Transport,
        address: str,
        params: DlogParams,
        judge: Judge,
        member_key: GroupMemberKey,
        broker_address: str,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(transport, address)
        self.params = params
        self.judge = judge
        self.member_key = member_key
        self.broker_address = broker_address
        self.identity = KeyPair.generate(params)
        self.wallet: dict[int, CentralHolding] = {}
        self.broker_client = CentralBrokerClient(self, broker_address, policy=retry_policy)
        self.peer_client = CentralPeerClient(self, policy=retry_policy)
        self.on(RECEIVE, self._handle_receive)

    def purchase(self, value: int = 1) -> int:
        """Buy a coin; the buyer is its first holder."""
        coin_keypair = KeyPair.generate(self.params)
        signed = seal(
            self.identity,
            {"kind": "central.purchase", "coin_y": coin_keypair.public.y, "value": value},
        )
        result = self.broker_client.purchase(signed.encode())
        if not result.get("ok"):
            raise ProtocolError("purchase failed")
        coin_y = coin_keypair.public.y
        self.wallet[coin_y] = CentralHolding(
            coin_y=coin_y, holder_keypair=coin_keypair, value=value
        )
        return coin_y

    def transfer(self, payee: str, coin_y: int | None = None) -> int:
        """Pay ``payee`` by re-binding a coin at the broker (anonymous both ways)."""
        if coin_y is None:
            if not self.wallet:
                raise UnknownCoin("wallet empty")
            coin_y = next(iter(self.wallet))
        holding = self.wallet.get(coin_y)
        if holding is None:
            raise NotHolder(f"not holding {coin_y:#x}")
        offer = self.peer_client.receive(payee, {"phase": "offer", "coin_y": coin_y})
        new_holder_y = offer["holder_y"]
        from repro.core.protocol import encode_dual

        envelope = group_seal(
            holding.holder_keypair,
            self.member_key,
            self.judge.group_public_key(),
            {"kind": "central.transfer", "coin_y": coin_y, "new_holder_y": new_holder_y},
        )
        result = self.broker_client.transfer(encode_dual(envelope))
        if not result.get("ok"):
            raise ProtocolError("broker refused the transfer")
        confirm = self.peer_client.receive(
            payee, {"phase": "complete", "coin_y": coin_y, "value": result["value"]}
        )
        if not confirm.get("ok"):
            raise ProtocolError("payee did not confirm")
        del self.wallet[coin_y]
        return coin_y

    def deposit(self, coin_y: int, payout_to: str | None = None) -> int:
        """Deposit a held coin (pseudonymous payout by default)."""
        import secrets as _secrets

        holding = self.wallet.get(coin_y)
        if holding is None:
            raise NotHolder(f"not holding {coin_y:#x}")
        from repro.core.protocol import encode_dual

        payout = payout_to if payout_to is not None else "bearer-" + _secrets.token_hex(8)
        envelope = group_seal(
            holding.holder_keypair,
            self.member_key,
            self.judge.group_public_key(),
            {"kind": "central.deposit", "coin_y": coin_y, "payout_to": payout},
        )
        result = self.broker_client.deposit(encode_dual(envelope))
        del self.wallet[coin_y]
        return result["credited"]

    # -- payee ------------------------------------------------------------------

    def _handle_receive(self, src: str, payload: dict[str, Any]) -> dict[str, Any]:
        if payload["phase"] == "offer":
            keypair = KeyPair.generate(self.params)
            self._pending = (payload["coin_y"], keypair)
            return {"holder_y": keypair.public.y}
        coin_y, keypair = getattr(self, "_pending", (None, None))
        if coin_y != payload["coin_y"] or keypair is None:
            return {"ok": False}
        # Verify against the broker ledger implicitly: the transfer only
        # succeeded if the broker re-bound the coin to our key, and only we
        # know its secret — the payee's acceptance is safe.
        self.wallet[coin_y] = CentralHolding(
            coin_y=coin_y, holder_keypair=keypair, value=payload["value"]
        )
        self._pending = (None, None)
        return {"ok": True}
