"""PPay (paper Section 3.1) — the scalability baseline.

A faithful implementation of the PPay coin lifecycle:

* coins carry a **serial number** and the **owner's identity**:
  ``C = {U, sn}_skU`` signed by the broker;
* assignments name the holder in the clear: ``C_V = {C, V, seq}_skU``;
* transfers route through the owner: ``V → U: {W, C_V}_skV``, then
  ``U → W: C_W = {C, W, seq'}_skU``;
* the downtime protocol lets the broker reassign coins of offline owners and
  owners synchronize on rejoin.

Everything is signed with *identity* keys — which is exactly why PPay has
"very weak, if any, anonymity": the payee knows the payer, the owner knows
both, and every audit trail names everyone.  The WhoPay comparison tests
make that information leak explicit.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Any

from repro.core.clock import DEFAULT_RENEWAL_PERIOD, Clock
from repro.core.errors import (
    CoinExpired,
    DoubleSpendDetected,
    InsufficientFunds,
    NotHolder,
    NotOwner,
    ProtocolError,
    UnknownCoin,
    VerificationFailed,
)
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.messages.envelope import SignedMessage, seal
from repro.core.clients import EndpointClient
from repro.net.node import Node
from repro.net.rpc import RetryPolicy
from repro.net.transport import Transport

# message kinds
PURCHASE = "ppay.purchase"
ASSIGN = "ppay.assign"  # issue and transfer-complete share the assignment shape
TRANSFER_REQUEST = "ppay.transfer_request"
RENEW_REQUEST = "ppay.renew_request"
DEPOSIT = "ppay.deposit"
DOWNTIME_TRANSFER = "ppay.downtime_transfer"
DOWNTIME_RENEWAL = "ppay.downtime_renewal"
SYNC = "ppay.sync"


class PPayBrokerClient(EndpointClient):
    """Typed facade over the PPay broker operations."""

    def __init__(self, node: Node, broker_address: str, policy: RetryPolicy | None = None) -> None:
        super().__init__(node, policy=policy)
        self.broker_address = broker_address

    def purchase(self, signed_request: bytes) -> bytes:
        """Mint a coin; returns the encoded coin certificate."""
        return self._call(self.broker_address, PURCHASE, signed_request, mutating=True)

    def deposit(self, body: dict[str, Any]) -> dict[str, Any]:
        """Redeem a held coin for account credit."""
        return self._call(self.broker_address, DEPOSIT, body, mutating=True)

    def downtime_transfer(self, body: dict[str, Any]) -> bytes:
        """Broker-served transfer; returns the new encoded assignment."""
        return self._call(self.broker_address, DOWNTIME_TRANSFER, body, mutating=True)

    def downtime_renewal(self, body: dict[str, Any]) -> bytes:
        """Broker-served renewal; returns the new encoded assignment."""
        return self._call(self.broker_address, DOWNTIME_RENEWAL, body, mutating=True)

    def sync(self, signed_request: bytes) -> Any:
        """Owner resynchronization; returns the missed-assignment list."""
        return self._call(self.broker_address, SYNC, signed_request, mutating=True)


class PPayPeerClient(EndpointClient):
    """Typed facade over the PPay peer-to-peer exchanges."""

    def assign(self, payee: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Deliver an assignment to its new holder."""
        return self._call(payee, ASSIGN, payload, mutating=True)

    def transfer_request(self, owner: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Ask the owner to reassign a held coin."""
        return self._call(owner, TRANSFER_REQUEST, payload, mutating=True)

    def renew_request(self, owner: str, payload: dict[str, Any]) -> bytes:
        """Ask the owner to renew a held coin's assignment."""
        return self._call(owner, RENEW_REQUEST, payload, mutating=True)


def _decode_signed(data: bytes, params: DlogParams) -> SignedMessage:
    from repro.core.protocol import decode_signed

    return decode_signed(data, params)


@dataclass
class PPayHolding:
    """Holder-side state: the coin cert and my current assignment."""

    coin: SignedMessage  # {owner, sn}_skB
    assignment: SignedMessage  # {C, holder, seq, exp}_skU or _skB
    via_broker: bool

    @property
    def sn(self) -> int:
        """Coin serial number."""
        return self.coin.payload["sn"]

    @property
    def owner(self) -> str:
        """Owner identity (in the clear — PPay's anonymity gap)."""
        return self.coin.payload["owner"]

    @property
    def seq(self) -> int:
        """Assignment sequence number."""
        return self.assignment.payload["seq"]

    @property
    def exp_date(self) -> float:
        """Assignment expiry."""
        return float(self.assignment.payload["exp_date"])


@dataclass
class PPayOwned:
    """Owner-side state for a purchased coin."""

    coin: SignedMessage
    assignment: SignedMessage | None = None
    relinquishments: list[bytes] = field(default_factory=list)


class PPayBroker(Node):
    """The PPay broker."""

    def __init__(
        self,
        transport: Transport,
        params: DlogParams,
        clock: Clock,
        address: str = "ppay-broker",
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
    ) -> None:
        super().__init__(transport, address)
        self.params = params
        self.clock = clock
        self.renewal_period = renewal_period
        self.keypair = KeyPair.generate(params)
        self.accounts: dict[str, tuple[PublicKey, int]] = {}
        self.coins: dict[int, SignedMessage] = {}  # sn -> cert
        self.identities: dict[str, PublicKey] = {}
        self.deposited: dict[int, bytes] = {}
        self.downtime_assignments: dict[int, SignedMessage] = {}
        self.pending_sync: dict[str, set[int]] = {}
        self.fraud_events: list[DoubleSpendDetected] = []
        self.counts: dict[str, int] = {
            "purchases": 0,
            "deposits": 0,
            "downtime_transfers": 0,
            "downtime_renewals": 0,
            "syncs": 0,
        }
        self.on(PURCHASE, self._handle_purchase)
        self.on(DEPOSIT, self._handle_deposit)
        self.on(DOWNTIME_TRANSFER, self._handle_downtime_transfer)
        self.on(DOWNTIME_RENEWAL, self._handle_downtime_renewal)
        self.on(SYNC, self._handle_sync)

    @property
    def public_key(self) -> PublicKey:
        """The broker's verification key."""
        return self.keypair.public

    def open_account(self, name: str, identity: PublicKey, balance: int) -> None:
        """Register a user and fund its account."""
        self.accounts[name] = (identity, balance)
        self.identities[name] = identity

    def balance(self, name: str) -> int:
        """Account balance."""
        return self.accounts[name][1]

    # -- verification -------------------------------------------------------

    def _verify_holding(self, holding_bytes: dict[str, Any], claimed_holder: str) -> PPayHolding:
        coin = _decode_signed(holding_bytes["coin"], self.params)
        assignment = _decode_signed(holding_bytes["assignment"], self.params)
        via_broker = bool(holding_bytes["via_broker"])
        if coin.signer.y != self.public_key.y or not coin.verify():
            raise VerificationFailed("coin certificate invalid")
        sn = coin.payload["sn"]
        if sn not in self.coins:
            raise UnknownCoin(f"unknown serial {sn}")
        if sn in self.deposited:
            event = DoubleSpendDetected(
                "coin already deposited",
                evidence={"sn": sn, "first": self.deposited[sn]},
            )
            self.fraud_events.append(event)
            raise event
        owner = coin.payload["owner"]
        expected_signer = self.public_key if via_broker else self.identities[owner]
        if assignment.signer.y != expected_signer.y or not assignment.verify():
            raise VerificationFailed("assignment signature invalid")
        if assignment.payload["sn"] != sn:
            raise VerificationFailed("assignment is for a different coin")
        if assignment.payload["holder"] != claimed_holder:
            raise NotHolder("assignment names a different holder")
        stored = self.downtime_assignments.get(sn)
        if stored is not None and assignment.payload["seq"] < stored.payload["seq"]:
            raise NotHolder("assignment is stale")
        if self.clock.now() > float(assignment.payload["exp_date"]):
            raise CoinExpired("assignment expired")
        return PPayHolding(coin=coin, assignment=assignment, via_broker=via_broker)

    def _require_identity_signature(self, src: str, signed: SignedMessage) -> None:
        identity = self.identities.get(src)
        if identity is None or signed.signer.y != identity.y or not signed.verify():
            raise VerificationFailed("request not signed by the registered identity")

    # -- handlers ---------------------------------------------------------------

    def _handle_purchase(self, src: str, data: bytes) -> bytes:
        self.counts["purchases"] += 1
        signed = _decode_signed(data, self.params)
        self._require_identity_signature(src, signed)
        value = signed.payload["value"]
        identity, balance = self.accounts[src]
        if balance < value:
            raise InsufficientFunds(src)
        self.accounts[src] = (identity, balance - value)
        sn = secrets.randbits(62)
        coin = seal(self.keypair, {"kind": "ppay.coin", "owner": src, "sn": sn, "value": value})
        self.coins[sn] = coin
        return coin.encode()

    def _handle_deposit(self, src: str, payload: dict[str, Any]) -> dict[str, Any]:
        self.counts["deposits"] += 1
        request = _decode_signed(payload["request"], self.params)
        self._require_identity_signature(src, request)
        holding = self._verify_holding(payload, claimed_holder=src)
        sn = holding.sn
        self.deposited[sn] = payload["request"]
        value = holding.coin.payload["value"]
        identity, balance = self.accounts[src]
        self.accounts[src] = (identity, balance + value)
        self.downtime_assignments.pop(sn, None)
        return {"ok": True, "credited": value}

    def _reassign(self, holding: PPayHolding, new_holder: str) -> SignedMessage:
        assignment = seal(
            self.keypair,
            {
                "kind": "ppay.assignment",
                "sn": holding.sn,
                "holder": new_holder,
                "seq": holding.seq + 1,
                "exp_date": int(self.clock.now() + self.renewal_period),
            },
        )
        self.downtime_assignments[holding.sn] = assignment
        self.pending_sync.setdefault(holding.owner, set()).add(holding.sn)
        return assignment

    def _handle_downtime_transfer(self, src: str, payload: dict[str, Any]) -> bytes:
        self.counts["downtime_transfers"] += 1
        request = _decode_signed(payload["request"], self.params)
        self._require_identity_signature(src, request)
        holding = self._verify_holding(payload, claimed_holder=src)
        return self._reassign(holding, request.payload["new_holder"]).encode()

    def _handle_downtime_renewal(self, src: str, payload: dict[str, Any]) -> bytes:
        self.counts["downtime_renewals"] += 1
        request = _decode_signed(payload["request"], self.params)
        self._require_identity_signature(src, request)
        holding = self._verify_holding(payload, claimed_holder=src)
        return self._reassign(holding, src).encode()

    def _handle_sync(self, src: str, data: bytes) -> list[tuple[int, bytes]]:
        self.counts["syncs"] += 1
        signed = _decode_signed(data, self.params)
        self._require_identity_signature(src, signed)
        changed = self.pending_sync.pop(src, set())
        return [
            (sn, self.downtime_assignments[sn].encode())
            for sn in sorted(changed)
            if sn in self.downtime_assignments
        ]


class PPayPeer(Node):
    """A PPay user agent."""

    def __init__(
        self,
        transport: Transport,
        address: str,
        params: DlogParams,
        clock: Clock,
        broker_address: str,
        broker_key: PublicKey,
        renewal_period: float = DEFAULT_RENEWAL_PERIOD,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(transport, address)
        self.params = params
        self.clock = clock
        self.broker_address = broker_address
        self.broker_key = broker_key
        self.renewal_period = renewal_period
        self.broker_client = PPayBrokerClient(self, broker_address, policy=retry_policy)
        self.peer_client = PPayPeerClient(self, policy=retry_policy)
        self.identity = KeyPair.generate(params)
        self.wallet: dict[int, PPayHolding] = {}
        self.owned: dict[int, PPayOwned] = {}
        self.identities: dict[str, PublicKey] = {}  # peer directory (PKI)
        self.transaction_log: list[dict[str, Any]] = []  # what this peer learns
        self.on(ASSIGN, self._handle_assign)
        self.on(TRANSFER_REQUEST, self._handle_transfer_request)
        self.on(RENEW_REQUEST, self._handle_renew_request)

    # -- directory -----------------------------------------------------------

    def learn_identity(self, address: str, key: PublicKey) -> None:
        """PKI stand-in: record another peer's identity key."""
        self.identities[address] = key

    def _identity_of(self, address: str) -> PublicKey:
        try:
            return self.identities[address]
        except KeyError:
            raise VerificationFailed(f"unknown identity {address!r}") from None

    # -- client operations ----------------------------------------------------

    def purchase(self, value: int = 1) -> int:
        """Buy a coin; returns its serial number."""
        signed = seal(self.identity, {"kind": "ppay.purchase", "value": value})
        coin_bytes = self.broker_client.purchase(signed.encode())
        coin = _decode_signed(coin_bytes, self.params)
        if coin.signer.y != self.broker_key.y or not coin.verify():
            raise VerificationFailed("broker returned an invalid coin")
        sn = coin.payload["sn"]
        self.owned[sn] = PPayOwned(coin=coin)
        return sn

    def _assignment(self, owned: PPayOwned, holder: str, seq: int) -> SignedMessage:
        return seal(
            self.identity,
            {
                "kind": "ppay.assignment",
                "sn": owned.coin.payload["sn"],
                "holder": holder,
                "seq": seq,
                "exp_date": int(self.clock.now() + self.renewal_period),
            },
        )

    def issue(self, payee: str, sn: int | None = None) -> int:
        """Issue an owned coin to ``payee``; returns the serial number."""
        if sn is None:
            unissued = [s for s, o in self.owned.items() if o.assignment is None]
            if not unissued:
                raise UnknownCoin("no unissued PPay coin")
            sn = unissued[0]
        owned = self.owned.get(sn)
        if owned is None:
            raise NotOwner(f"do not own serial {sn}")
        if owned.assignment is not None:
            raise ProtocolError("coin already issued")
        assignment = self._assignment(owned, payee, seq=secrets.randbelow(1 << 30))
        result = self.peer_client.assign(
            payee,
            {"coin": owned.coin.encode(), "assignment": assignment.encode(), "via_broker": False},
        )
        if not result.get("ok"):
            raise ProtocolError(f"payee rejected the issue: {result.get('reason')}")
        owned.assignment = assignment
        return sn

    def transfer(self, payee: str, sn: int | None = None) -> int:
        """Transfer a held coin via its owner (identity-signed, no anonymity)."""
        holding = self._pick(sn, owner_online=True)
        request = seal(
            self.identity,
            {
                "kind": "ppay.transfer_request",
                "sn": holding.sn,
                "new_holder": payee,
                "prev_assignment": holding.assignment.encode(),
            },
        )
        result = self.peer_client.transfer_request(
            holding.owner,
            {
                "request": request.encode(),
                "coin": holding.coin.encode(),
                "assignment": holding.assignment.encode(),
                "via_broker": holding.via_broker,
            },
        )
        if not result.get("ok"):
            raise ProtocolError("owner refused the transfer")
        del self.wallet[holding.sn]
        return holding.sn

    def transfer_via_broker(self, payee: str, sn: int | None = None) -> int:
        """Downtime transfer via the broker."""
        holding = self._pick(sn, owner_online=False)
        request = seal(
            self.identity,
            {"kind": "ppay.downtime_transfer", "sn": holding.sn, "new_holder": payee},
        )
        assignment_bytes = self.broker_client.downtime_transfer(
            {
                "request": request.encode(),
                "coin": holding.coin.encode(),
                "assignment": holding.assignment.encode(),
                "via_broker": holding.via_broker,
            }
        )
        result = self.peer_client.assign(
            payee,
            {"coin": holding.coin.encode(), "assignment": assignment_bytes, "via_broker": True},
        )
        if not result.get("ok"):
            raise ProtocolError("payee rejected the downtime transfer")
        del self.wallet[holding.sn]
        return holding.sn

    def renew(self, sn: int) -> None:
        """Renew a held coin via the owner, or the broker when offline."""
        holding = self.wallet.get(sn)
        if holding is None:
            raise NotHolder(f"not holding serial {sn}")
        body = {
            "coin": holding.coin.encode(),
            "assignment": holding.assignment.encode(),
            "via_broker": holding.via_broker,
        }
        if self.transport.is_online(holding.owner):
            request = seal(self.identity, {"kind": "ppay.renew_request", "sn": sn})
            body["request"] = request.encode()
            assignment_bytes = self.peer_client.renew_request(holding.owner, body)
            via_broker = False
        else:
            request = seal(self.identity, {"kind": "ppay.downtime_renewal", "sn": sn})
            body["request"] = request.encode()
            assignment_bytes = self.broker_client.downtime_renewal(body)
            via_broker = True
        assignment = _decode_signed(assignment_bytes, self.params)
        holding.assignment = assignment
        holding.via_broker = via_broker

    def deposit(self, sn: int) -> int:
        """Deposit a held coin; credit goes to this peer's named account."""
        holding = self.wallet.get(sn)
        if holding is None:
            raise NotHolder(f"not holding serial {sn}")
        request = seal(self.identity, {"kind": "ppay.deposit", "sn": sn})
        result = self.broker_client.deposit(
            {
                "request": request.encode(),
                "coin": holding.coin.encode(),
                "assignment": holding.assignment.encode(),
                "via_broker": holding.via_broker,
            }
        )
        del self.wallet[sn]
        return result["credited"]

    def sync_with_broker(self) -> int:
        """Owner synchronization after rejoining."""
        signed = seal(self.identity, {"kind": "ppay.sync"})
        updates = self.broker_client.sync(signed.encode())
        for sn, assignment_bytes in updates:
            owned = self.owned.get(sn)
            if owned is not None:
                owned.assignment = _decode_signed(assignment_bytes, self.params)
        return len(updates)

    def _pick(self, sn: int | None, owner_online: bool) -> PPayHolding:
        if sn is not None:
            holding = self.wallet.get(sn)
            if holding is None:
                raise NotHolder(f"not holding serial {sn}")
            return holding
        for holding in self.wallet.values():
            if self.transport.is_online(holding.owner) == owner_online:
                return holding
        raise UnknownCoin("no suitable PPay coin in the wallet")

    # -- handlers --------------------------------------------------------------

    def _handle_assign(self, src: str, payload: dict[str, Any]) -> dict[str, Any]:
        coin = _decode_signed(payload["coin"], self.params)
        assignment = _decode_signed(payload["assignment"], self.params)
        via_broker = bool(payload["via_broker"])
        if coin.signer.y != self.broker_key.y or not coin.verify():
            return {"ok": False, "reason": "bad coin certificate"}
        owner = coin.payload["owner"]
        expected = self.broker_key if via_broker else self._identity_of(owner)
        if assignment.signer.y != expected.y or not assignment.verify():
            return {"ok": False, "reason": "bad assignment signature"}
        if assignment.payload["holder"] != self.address:
            return {"ok": False, "reason": "assignment names someone else"}
        if assignment.payload["sn"] != coin.payload["sn"]:
            return {"ok": False, "reason": "assignment/coin mismatch"}
        holding = PPayHolding(coin=coin, assignment=assignment, via_broker=via_broker)
        self.wallet[holding.sn] = holding
        # PPay's information leak, recorded explicitly: the payee learns the
        # payer (message source) and the coin owner, in the clear.
        self.transaction_log.append(
            {"event": "received", "sn": holding.sn, "payer": src, "owner": owner}
        )
        return {"ok": True, "reason": None}

    def _handle_transfer_request(self, src: str, payload: dict[str, Any]) -> dict[str, Any]:
        request = _decode_signed(payload["request"], self.params)
        if request.signer.y != self._identity_of(src).y or not request.verify():
            raise VerificationFailed("transfer request not signed by the payer")
        sn = request.payload["sn"]
        owned = self.owned.get(sn)
        if owned is None:
            raise NotOwner(f"do not own serial {sn}")
        if owned.assignment is None:
            raise ProtocolError("coin was never issued")
        if owned.assignment.payload["holder"] != src:
            raise NotHolder("payer is not the current holder")
        owned.relinquishments.append(payload["request"])
        new_holder = request.payload["new_holder"]
        assignment = self._assignment(owned, new_holder, owned.assignment.payload["seq"] + 1)
        # The owner learns payer AND payee — PPay's anonymity gap, logged.
        self.transaction_log.append(
            {"event": "handled_transfer", "sn": sn, "payer": src, "payee": new_holder}
        )
        result = self.peer_client.assign(
            new_holder,
            {"coin": owned.coin.encode(), "assignment": assignment.encode(), "via_broker": False},
        )
        if not result.get("ok"):
            owned.relinquishments.pop()
            return {"ok": False, "reason": result.get("reason")}
        owned.assignment = assignment
        return {"ok": True, "reason": None}

    def _handle_renew_request(self, src: str, payload: dict[str, Any]) -> bytes:
        request = _decode_signed(payload["request"], self.params)
        if request.signer.y != self._identity_of(src).y or not request.verify():
            raise VerificationFailed("renew request not signed by the holder")
        sn = request.payload["sn"]
        owned = self.owned.get(sn)
        if owned is None:
            raise NotOwner(f"do not own serial {sn}")
        if owned.assignment is None or owned.assignment.payload["holder"] != src:
            raise NotHolder("requester is not the current holder")
        assignment = self._assignment(owned, src, owned.assignment.payload["seq"] + 1)
        owned.assignment = assignment
        return assignment.encode()
