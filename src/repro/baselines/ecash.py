"""Chaum-style blind-signature e-cash (the paper's Section 1 lineage).

The classical centralized anonymous payment design that predates WhoPay:

* **withdraw** — the client mints a random serial, blinds it, pays the mint,
  and gets a blind signature; unblinding yields a coin ``(serial,
  signature)`` the mint cannot link to the withdrawal;
* **spend** — the coin is handed to a merchant, who can verify it offline;
* **deposit** — the mint checks the signature and a double-spend ledger of
  seen serials.

Strengths: unconditional payer anonymity (information-theoretic — the mint's
view is independent of the coin).  Weaknesses, which are exactly WhoPay's
motivations: every withdraw/deposit hits the mint (no scalability), coins
are not transferable without going back to the mint, and there is **no
fairness** — a double spender's identity is unrecoverable, the loss is just
eaten (detectable, not punishable).  The comparison tests make each of
these explicit.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.core.errors import DoubleSpendDetected, InsufficientFunds, VerificationFailed
from repro.crypto.blind import blind, sign_blinded, unblind, verify_unblinded
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, rsa_generate


@dataclass(frozen=True)
class EcashCoin:
    """A bearer token: random serial + mint signature on it."""

    serial: bytes
    signature: int
    value: int

    def message(self) -> bytes:
        """What the mint's signature covers."""
        return b"ecash-coin|" + self.value.to_bytes(8, "big") + b"|" + self.serial


class EcashMint:
    """The central mint (broker analogue)."""

    def __init__(self, modulus_bits: int = 512, coin_value: int = 1) -> None:
        self._keypair: RsaKeyPair = rsa_generate(modulus_bits)
        self.coin_value = coin_value
        self.accounts: dict[str, int] = {}
        self.seen_serials: dict[bytes, bytes] = {}  # serial -> depositor tag
        self.withdrawals = 0
        self.deposits = 0
        self.fraud_events: list[DoubleSpendDetected] = []

    @property
    def public_key(self) -> RsaPublicKey:
        """The mint's verification key (system-wide known)."""
        return self._keypair.public

    def open_account(self, name: str, balance: int) -> None:
        """Fund a named account."""
        self.accounts[name] = balance

    def balance(self, name: str) -> int:
        """Account balance."""
        return self.accounts.get(name, 0)

    def sign_withdrawal(self, account: str, blinded: int) -> int:
        """Debit the account and blind-sign whatever the client sent.

        The mint sees only the blinded value — it cannot recognize the coin
        at deposit time.  That blindness is also why the signature *is* the
        money: the debit happens here, unconditionally.
        """
        balance = self.accounts.get(account)
        if balance is None or balance < self.coin_value:
            raise InsufficientFunds(account)
        self.accounts[account] = balance - self.coin_value
        self.withdrawals += 1
        return sign_blinded(self._keypair, blinded)

    def deposit(self, coin: EcashCoin, payout_account: str) -> int:
        """Verify and retire a coin; credit the payout account."""
        self.deposits += 1
        if coin.value != self.coin_value:
            raise VerificationFailed("wrong denomination")
        if not verify_unblinded(self.public_key, coin.message(), coin.signature):
            raise VerificationFailed("coin signature invalid")
        if coin.serial in self.seen_serials:
            event = DoubleSpendDetected(
                "e-cash serial already deposited",
                evidence={
                    "serial": coin.serial,
                    "first_payee": self.seen_serials[coin.serial],
                    "second_payee": payout_account,
                    # NOTE the gap vs WhoPay: there is no identity to open.
                    "culprit": None,
                },
            )
            self.fraud_events.append(event)
            raise event
        self.seen_serials[coin.serial] = payout_account.encode()
        self.accounts[payout_account] = self.accounts.get(payout_account, 0) + coin.value
        return coin.value


class EcashClient:
    """A user of the mint."""

    def __init__(self, name: str, mint: EcashMint) -> None:
        self.name = name
        self.mint = mint
        self.wallet: list[EcashCoin] = []

    def withdraw(self) -> EcashCoin:
        """Withdraw one coin anonymously (the mint never sees the serial)."""
        serial = secrets.token_bytes(16)
        value = self.mint.coin_value
        message = b"ecash-coin|" + value.to_bytes(8, "big") + b"|" + serial
        blinded, state = blind(self.mint.public_key, message)
        blind_signature = self.mint.sign_withdrawal(self.name, blinded)
        signature = unblind(self.mint.public_key, state, blind_signature)
        if not verify_unblinded(self.mint.public_key, message, signature):
            raise VerificationFailed("mint produced an invalid blind signature")
        coin = EcashCoin(serial=serial, signature=signature, value=value)
        self.wallet.append(coin)
        return coin

    def pay(self, merchant: "EcashClient") -> EcashCoin:
        """Hand a coin to a merchant (who verifies it offline)."""
        if not self.wallet:
            raise InsufficientFunds("empty wallet")
        coin = self.wallet.pop()
        if not verify_unblinded(self.mint.public_key, coin.message(), coin.signature):
            raise VerificationFailed("refusing an invalid coin")
        merchant.wallet.append(coin)
        return coin

    def deposit_all(self) -> int:
        """Deposit every held coin to this client's account."""
        total = 0
        while self.wallet:
            total += self.mint.deposit(self.wallet.pop(), self.name)
        return total
