"""Network-level anonymity substrate (paper Section 4.3).

    "In many situations network level identities (e.g., IP addresses) can
    convey a lot of information and are hence worth hiding as well.  There
    have been many studies in this area, most of which, such as Onion
    Routing [22] and Tarzan [12], involve hiding end points IP addresses by
    using third party proxies.  In this paper, we will assume such
    mechanisms will be adopted whenever network level anonymity is desired."

Rather than assume it, this package builds it:

* :mod:`repro.anonymity.cipher` — Diffie–Hellman key agreement over the
  shared Schnorr groups plus an authenticated stream cipher (hash-counter
  keystream + HMAC), the hop-layer encryption onion routing needs.
* :mod:`repro.anonymity.onion` — onion relays and client circuits: the
  sender wraps a request in per-hop encryption layers; each relay peels one
  layer and forwards; responses are wrapped layer-by-layer on the way back.
  The destination sees the exit relay, the entry relay sees the sender, and
  no single relay sees both ends.

``repro.anonymity.onion.anonymize_node`` reroutes any protocol node's
outbound requests through a circuit, so a WhoPay peer can hide its transport
address from payees, owners, and the broker with one call.
"""

from repro.anonymity.cipher import CipherError, derive_shared_key, open_box, seal_box
from repro.anonymity.onion import OnionCircuit, OnionOverlay, anonymize_node
from repro.anonymity.pseudonym import bearer_account, funding_voucher

__all__ = [
    "derive_shared_key",
    "seal_box",
    "open_box",
    "CipherError",
    "OnionOverlay",
    "OnionCircuit",
    "anonymize_node",
    "bearer_account",
    "funding_voucher",
]
