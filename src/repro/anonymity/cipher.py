"""Hop-layer encryption: DH key agreement + authenticated stream cipher.

Built strictly from the primitives already in the repository (the Schnorr
groups and SHA-256): a Diffie–Hellman shared secret per (client, relay)
pair, a hash-counter keystream XORed over the plaintext, and an encrypt-
then-MAC HMAC tag.  Research-grade like the rest of ``repro.crypto`` — the
structure is sound (unique nonce per box, independent encryption and MAC
subkeys, constant-time tag comparison), the primitives are textbook.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.crypto import fastexp, primitives
from repro.crypto.keys import KeyPair, PublicKey

NONCE_SIZE = 16
TAG_SIZE = 16


class CipherError(Exception):
    """Authenticated decryption failed (wrong key or tampered box)."""


def derive_shared_key(mine: KeyPair, theirs: PublicKey) -> bytes:
    """Classic DH: hash of ``theirs.y ** mine.x mod p``; 32 bytes."""
    params = mine.params
    if not params.is_element(theirs.y):
        raise ValueError("peer public key is not a subgroup element")
    shared_point = fastexp.mod_pow(theirs.y, mine.x, params.p, order=params.q)
    return hashlib.sha256(b"onion-dh-v1|" + primitives.int_to_bytes(shared_point)).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(key + b"|enc|" + nonce + counter.to_bytes(8, "big")).digest()
        counter += 1
    return bytes(out[:length])


def _mac(key: bytes, nonce: bytes, ciphertext: bytes) -> bytes:
    return hmac.new(key + b"|mac", nonce + ciphertext, hashlib.sha256).digest()[:TAG_SIZE]


def seal_box(key: bytes, plaintext: bytes) -> bytes:
    """Authenticated encryption: ``nonce || ciphertext || tag``."""
    nonce = secrets.token_bytes(NONCE_SIZE)
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, _keystream(key, nonce, len(plaintext))))
    return nonce + ciphertext + _mac(key, nonce, ciphertext)


def open_box(key: bytes, box: bytes) -> bytes:
    """Inverse of :func:`seal_box`; raises :class:`CipherError` on failure."""
    if len(box) < NONCE_SIZE + TAG_SIZE:
        raise CipherError("box too short")
    nonce = box[:NONCE_SIZE]
    ciphertext = box[NONCE_SIZE:-TAG_SIZE]
    tag = box[-TAG_SIZE:]
    if not hmac.compare_digest(tag, _mac(key, nonce, ciphertext)):
        raise CipherError("authentication tag mismatch")
    return bytes(a ^ b for a, b in zip(ciphertext, _keystream(key, nonce, len(ciphertext))))
