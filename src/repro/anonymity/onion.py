"""Onion routing over the in-memory transport.

The classic construction (Reed/Syverson/Goldschlag — the paper's reference
[22]), adapted to the synchronous request/response transport:

* every relay publishes a static DH public key;
* the client picks a circuit of relays, mints one *ephemeral* DH keypair
  per hop, and derives a per-hop layer key (forward secrecy: circuits never
  reuse ephemerals);
* the request is wrapped innermost-out: layer *i* encrypts ``{next hop,
  inner box}`` under hop *i*'s key and prepends the hop's ephemeral public
  value so the relay can derive the same key;
* each relay peels one layer and forwards; the exit relay performs the
  actual protocol request; each relay seals the response back under its
  layer key, so the client unwraps the layers in circuit order.

Who learns what: the destination sees the exit relay's address; the entry
relay sees the client but only the next relay; no single relay sees both
endpoints (with ≥ 2 hops).  The anonymity tests assert these properties on
actual transcripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.anonymity.cipher import CipherError, derive_shared_key, open_box, seal_box
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams
from repro.messages.codec import decode, encode
from repro.net.node import Node
from repro.net.rpc import RpcClient
from repro.net.transport import NetworkError, Transport

RELAY_KIND = "onion.relay"

#: Virtual-time budget for one full circuit round trip (WP114).  Onion hops
#: accrue latency at every relay, so this is the most generous deadline in
#: the tree — it exists to cut off runaway jitter, not to shape routing.
RELAY_DEADLINE = 120.0


class _OnionRelay(Node):
    """One onion router."""

    def __init__(self, transport: Transport, address: str, params: DlogParams) -> None:
        super().__init__(transport, address)
        self.params = params
        self.keypair = KeyPair.generate(params)
        self.relayed = 0
        self.on(RELAY_KIND, self._handle_relay)

    def _handle_relay(self, src: str, payload: dict) -> bytes:
        ephemeral = PublicKey(params=self.params, y=payload["eph_y"])
        key = derive_shared_key(self.keypair, ephemeral)
        try:
            inner = decode(open_box(key, payload["box"]))
        except CipherError as exc:
            raise NetworkError(f"{self.address}: bad onion layer: {exc}") from exc
        self.relayed += 1
        if inner["hop"] == "relay":
            response = self.request(
                inner["next"], RELAY_KIND, {"eph_y": inner["eph_y"], "box": inner["box"]}
            )
        else:  # exit hop: perform the real protocol request
            result = self.request(inner["next"], inner["kind"], decode(inner["payload"]))
            response = encode(result)
        # Wrap the response under this hop's key for the trip back.
        return seal_box(key, response)


@dataclass(frozen=True)
class OnionCircuit:
    """Client-side view of an established circuit."""

    relays: tuple[str, ...]
    layer_keys: tuple[bytes, ...]
    ephemeral_ys: tuple[int, ...]


class OnionOverlay:
    """Relay pool + client API."""

    def __init__(self, transport: Transport, params: DlogParams, size: int = 3, prefix: str = "onion") -> None:
        if size < 1:
            raise ValueError("need at least one relay")
        self.transport = transport
        # Circuit entry sends carry the client's src address explicitly.
        self.rpc = RpcClient(transport=transport)
        self.params = params
        self.relays = [_OnionRelay(transport, f"{prefix}-{i}", params) for i in range(size)]
        self._directory = {relay.address: relay.keypair.public for relay in self.relays}

    def relay_addresses(self) -> list[str]:
        """All relay addresses (the public directory)."""
        return list(self._directory)

    def build_circuit(self, hops: list[str] | None = None) -> OnionCircuit:
        """Derive per-hop keys for a circuit through ``hops`` (default: all).

        Fresh ephemerals every call — building a new circuit unlinks the
        client from its previous traffic.
        """
        if hops is None:
            hops = self.relay_addresses()
        if not hops:
            raise ValueError("circuit needs at least one hop")
        keys = []
        ephemerals = []
        for address in hops:
            relay_key = self._directory.get(address)
            if relay_key is None:
                raise ValueError(f"unknown relay {address!r}")
            ephemeral = KeyPair.generate(self.params)
            keys.append(derive_shared_key(ephemeral, relay_key))
            ephemerals.append(ephemeral.public.y)
        return OnionCircuit(
            relays=tuple(hops), layer_keys=tuple(keys), ephemeral_ys=tuple(ephemerals)
        )

    def send(self, src: str, circuit: OnionCircuit, dst: str, kind: str, payload: Any) -> Any:
        """Send a request to ``dst`` through ``circuit``; returns the response.

        ``payload`` (and the response) must be codec values — which every
        WhoPay protocol payload is.
        """
        # Innermost: the exit hop's instruction.
        inner: dict[str, Any] = {
            "hop": "exit",
            "next": dst,
            "kind": kind,
            "payload": encode(payload),
        }
        box = seal_box(circuit.layer_keys[-1], encode(inner))
        # Wrap outward: hop i forwards to hop i+1.
        for i in range(len(circuit.relays) - 2, -1, -1):
            inner = {
                "hop": "relay",
                "next": circuit.relays[i + 1],
                "eph_y": circuit.ephemeral_ys[i + 1],
                "box": box,
            }
            box = seal_box(circuit.layer_keys[i], encode(inner))
        wire = self.rpc.call(
            circuit.relays[0],
            RELAY_KIND,
            {"eph_y": circuit.ephemeral_ys[0], "box": box},
            src=src,
            deadline=RELAY_DEADLINE,
        )
        # Unwrap the response layers in circuit order.
        for key in circuit.layer_keys:
            wire = open_box(key, wire)
        return decode(wire)


def anonymize_node(node: Node, overlay: OnionOverlay, circuit: OnionCircuit | None = None) -> OnionCircuit:
    """Reroute ``node``'s outbound requests through an onion circuit.

    Overrides the node's ``send_raw`` — the single transport touchpoint
    under the RPC layer — so *everything* the node sends (direct
    ``request`` calls, typed client facades, and every RPC retry attempt)
    travels the circuit: payees, owners, and the broker see only the exit
    relay's address.  Returns the circuit in use (pass one in to share or
    rotate).
    """
    active = circuit if circuit is not None else overlay.build_circuit()

    def routed_send(dst: str, kind: str, payload: Any) -> Any:
        return overlay.send(node.address, active, dst, kind, payload)

    node.send_raw = routed_send  # type: ignore[method-assign]
    return active
