"""Pseudonymous funding constructors (the WP110 anonymity boundary).

A top-up debits a *named* account while holdership is proven anonymously
through the dual-signed holder envelope.  Writing the account name (or any
other peer identifier) into the envelope payload would put an identity on
the anonymous channel, linking the pseudonymous coin to its funder.  The
sanctioned shape is a *funding voucher*: the debit authorization sealed
under the funding identity, attached as opaque bytes.  The broker verifies
the voucher's signature and reads the account from inside it; a payee or
relay observing the envelope sees only ciphertext-shaped bytes.

These constructors — alongside ``repro.crypto.blind`` — are the only
functions the anonymity-taint rule (WP110) accepts as carriers of
peer-identifying values into holder envelopes.
"""

from __future__ import annotations

import secrets

from repro.crypto.keys import KeyPair
from repro.messages.envelope import seal


def funding_voucher(identity: KeyPair, account: str, amount: int, coin_y: int) -> bytes:
    """Seal a debit authorization for ``amount`` against ``account``.

    The only identity-bearing content permitted inside a holder envelope,
    and only in this sealed form: the broker authenticates the debit from
    the signature, everyone else sees opaque bytes.
    """
    return seal(
        identity,
        {
            "kind": "whopay.debit_auth",
            "account": account,
            "amount": amount,
            "coin_y": coin_y,
        },
    ).encode()


def bearer_account(prefix: str = "bearer") -> str:
    """A fresh, unlinkable account name.

    Fund coins from an account created under a throwaway identity when even
    the broker must not link the top-up to a long-lived peer name.
    """
    return f"{prefix}-{secrets.token_hex(16)}"
