"""Low-level number-theoretic and hashing helpers.

These are the building blocks shared by every scheme in ``repro.crypto``:
secure randomness, Miller–Rabin primality testing, modular inverses, and the
hash-to-integer mapping used by Fiat–Shamir style constructions.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

# Small primes used to cheaply reject composites before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)


def randbelow(n: int) -> int:
    """Return a uniform random integer in ``[0, n)`` using the OS CSPRNG."""
    if n <= 0:
        raise ValueError("randbelow requires a positive bound")
    return secrets.randbelow(n)


def rand_range(low: int, high: int) -> int:
    """Return a uniform random integer in ``[low, high)``."""
    if high <= low:
        raise ValueError(f"empty range [{low}, {high})")
    return low + secrets.randbelow(high - low)


def rand_bits(bits: int) -> int:
    """Return a random integer with exactly ``bits`` bits (top bit set)."""
    if bits < 2:
        raise ValueError("need at least 2 bits")
    return secrets.randbits(bits - 1) | (1 << (bits - 1))


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin primality test with ``rounds`` random bases.

    A composite passes all rounds with probability at most 4**-rounds, which
    at the default of 40 rounds is far below any practical concern.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rand_range(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    while True:
        candidate = rand_bits(bits) | 1
        if is_probable_prime(candidate):
            return candidate


def modinv(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m`` (``m`` need not be prime)."""
    inv = pow(a, -1, m)
    return inv


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hash_to_int(*parts: bytes, modulus: int) -> int:
    """Map the concatenation of ``parts`` to an integer in ``[0, modulus)``.

    Used for Fiat–Shamir challenges and DSA message digests.  Each part is
    length-prefixed so the mapping is injective over the tuple of parts, and
    the digest is extended (counter mode) until it covers the modulus size,
    then reduced.  The reduction bias is negligible because we generate at
    least 64 bits beyond the modulus size.
    """
    if modulus <= 1:
        raise ValueError("modulus must exceed 1")
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    seed = h.digest()
    need = (modulus.bit_length() + 64 + 7) // 8
    out = b""
    counter = 0
    while len(out) < need:
        out += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return int.from_bytes(out[:need], "big") % modulus


def int_to_bytes(n: int) -> bytes:
    """Minimal big-endian encoding of a non-negative integer (b"\\x00" for 0)."""
    if n < 0:
        raise ValueError("cannot encode negative integers")
    length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_bytes`."""
    return int.from_bytes(data, "big")


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison (wraps :mod:`hmac`)."""
    return hmac.compare_digest(a, b)
