"""Key-pair abstractions and fingerprints.

WhoPay identifies coins by public keys (Section 4.1), so key material shows
up everywhere: user identity keys, per-coin keys minted on every issue and
transfer, the broker's signing key, and group membership keys.  This module
provides the common ``KeyPair``/``PublicKey`` shape all of them share, plus
the stable fingerprint used when a key has to act as a dictionary key or a
DHT key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import primitives
from repro.crypto.params import DlogParams


@dataclass(frozen=True)
class PublicKey:
    """A public key ``y = g^x mod p`` in a named Schnorr group."""

    params: DlogParams
    y: int

    def encode(self) -> bytes:
        """Stable byte encoding (group constants + y), suitable for hashing."""
        return self.params.encode() + b"|" + primitives.int_to_bytes(self.y)

    def fingerprint(self) -> bytes:
        """20-byte identifier for this key (truncated SHA-256 of encoding)."""
        return primitives.sha256(self.encode())[:20]

    def validate(self) -> None:
        """Raise :class:`ValueError` unless ``y`` is in the right subgroup."""
        if not self.params.is_element(self.y):
            raise ValueError("public key is not a subgroup element")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"PublicKey({self.fingerprint().hex()[:12]}…)"


@dataclass(frozen=True)
class KeyPair:
    """A secret exponent ``x`` with its public point ``y = g^x mod p``."""

    params: DlogParams
    x: int
    public: PublicKey

    @classmethod
    def generate(cls, params: DlogParams) -> "KeyPair":
        """Mint a fresh key pair in ``params``."""
        x = params.random_exponent()
        y = params.pow_g(x)
        return cls(params=params, x=x, public=PublicKey(params=params, y=y))

    @classmethod
    def from_secret(cls, params: DlogParams, x: int) -> "KeyPair":
        """Rebuild a key pair from a stored secret exponent."""
        if not 0 < x < params.q:
            raise ValueError("secret exponent out of range")
        y = params.pow_g(x)
        return cls(params=params, x=x, public=PublicKey(params=params, y=y))

    def fingerprint(self) -> bytes:
        """Fingerprint of the public half."""
        return self.public.fingerprint()


def fingerprint(key: PublicKey | KeyPair) -> bytes:
    """Fingerprint of a key or key pair (module-level convenience)."""
    return key.fingerprint()
