"""Chaum blind signatures (the paper's reference [9]).

The primitive behind the classical anonymous e-cash systems WhoPay's
introduction surveys: a client obtains the mint's RSA signature on a message
the mint never sees.

    blinded   = H(m) · r^e  mod n          (client, random r)
    signed    = blinded^d   mod n          (mint — a raw exponentiation)
    signature = signed · r^-1 mod n        (client)
    check:      signature^e == H(m)  mod n

Unlinkability: the mint's view (``blinded``) is uniformly random and
independent of ``m``, so it cannot connect a withdrawal to the coin later
deposited — the property :mod:`repro.baselines.ecash` builds on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto import fastexp, primitives
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, hash_to_modulus, rsa_sign_raw, rsa_verify


@dataclass(frozen=True)
class BlindingState:
    """Client-side secret state between blinding and unblinding."""

    message: bytes
    r: int


def blind(public: RsaPublicKey, message: bytes) -> tuple[int, BlindingState]:
    """Blind ``message`` for signing; returns (blinded value, secret state)."""
    n = public.n
    while True:
        r = primitives.rand_range(2, n - 1)
        if math.gcd(r, n) == 1:
            break
    # fastexp defers to native pow for the one-shot base; the call is routed
    # through the layer so blinding shares its instrumentation and any
    # future residue caching with the rest of the substrate.
    blinded = (hash_to_modulus(message, n) * fastexp.mod_pow(r, public.e, n)) % n
    return blinded, BlindingState(message=message, r=r)


def sign_blinded(keypair: RsaKeyPair, blinded: int) -> int:
    """Mint side: sign a blinded value (sees nothing about the message)."""
    return rsa_sign_raw(keypair, blinded)


def unblind(public: RsaPublicKey, state: BlindingState, blind_signature: int) -> int:
    """Client side: strip the blinding factor; returns a normal FDH signature."""
    r_inv = primitives.modinv(state.r, public.n)
    return (blind_signature * r_inv) % public.n


def verify_unblinded(public: RsaPublicKey, message: bytes, signature: int) -> bool:
    """An unblinded signature verifies exactly like an ordinary one."""
    return rsa_verify(public, message, signature)
