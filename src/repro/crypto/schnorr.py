"""Schnorr proofs of knowledge of a discrete logarithm.

WhoPay's issue and transfer protocols contain an ownership challenge:
"U … answers a challenge by V to prove he is the owner of the coin"
(Section 4.2).  Because coins are public keys, the natural instantiation is
a Schnorr proof of knowledge of the coin's secret key, made non-interactive
with the Fiat–Shamir transform and bound to a verifier-chosen challenge
nonce (so transcripts cannot be replayed to a different verifier).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import primitives
from repro.crypto.keys import KeyPair, PublicKey


@dataclass(frozen=True)
class SchnorrProof:
    """A non-interactive Schnorr proof ``(commitment, response)``."""

    commitment: int  # t = g^v mod p
    response: int  # z = v + c*x mod q

    def encode(self) -> bytes:
        """Stable byte encoding."""
        return primitives.int_to_bytes(self.commitment) + b"|" + primitives.int_to_bytes(self.response)


def _challenge(public: PublicKey, commitment: int, context: bytes) -> int:
    params = public.params
    return primitives.hash_to_int(
        b"schnorr-v1",
        public.encode(),
        primitives.int_to_bytes(commitment),
        context,
        modulus=params.q,
    )


def schnorr_prove(keypair: KeyPair, context: bytes) -> SchnorrProof:
    """Prove knowledge of ``keypair.x``, bound to ``context``.

    ``context`` should include the verifier's fresh nonce plus any protocol
    state the proof must commit to (coin id, session id); this is what makes
    the ownership challenge unreplayable.
    """
    params = keypair.params
    v = params.random_exponent()
    t = pow(params.g, v, params.p)
    c = _challenge(keypair.public, t, context)
    z = (v + c * keypair.x) % params.q
    return SchnorrProof(commitment=t, response=z)


def schnorr_verify(public: PublicKey, proof: SchnorrProof, context: bytes) -> bool:
    """Check a proof against the same ``context`` the prover used."""
    params = public.params
    if not params.is_element(public.y):
        return False
    if not (0 < proof.commitment < params.p) or not (0 <= proof.response < params.q):
        return False
    c = _challenge(public, proof.commitment, context)
    lhs = pow(params.g, proof.response, params.p)
    rhs = (proof.commitment * pow(public.y, c, params.p)) % params.p
    return lhs == rhs
