"""Schnorr proofs of knowledge of a discrete logarithm.

WhoPay's issue and transfer protocols contain an ownership challenge:
"U … answers a challenge by V to prove he is the owner of the coin"
(Section 4.2).  Because coins are public keys, the natural instantiation is
a Schnorr proof of knowledge of the coin's secret key, made non-interactive
with the Fiat–Shamir transform and bound to a verifier-chosen challenge
nonce (so transcripts cannot be replayed to a different verifier).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Sequence

from repro.crypto import fastexp, primitives
from repro.crypto.keys import KeyPair, PublicKey


@dataclass(frozen=True)
class SchnorrProof:
    """A non-interactive Schnorr proof ``(commitment, response)``."""

    commitment: int  # t = g^v mod p
    response: int  # z = v + c*x mod q

    def encode(self) -> bytes:
        """Stable byte encoding."""
        return primitives.int_to_bytes(self.commitment) + b"|" + primitives.int_to_bytes(self.response)


def _challenge(public: PublicKey, commitment: int, context: bytes) -> int:
    params = public.params
    return primitives.hash_to_int(
        b"schnorr-v1",
        public.encode(),
        primitives.int_to_bytes(commitment),
        context,
        modulus=params.q,
    )


def schnorr_prove(keypair: KeyPair, context: bytes) -> SchnorrProof:
    """Prove knowledge of ``keypair.x``, bound to ``context``.

    ``context`` should include the verifier's fresh nonce plus any protocol
    state the proof must commit to (coin id, session id); this is what makes
    the ownership challenge unreplayable.
    """
    params = keypair.params
    v = params.random_exponent()
    t = params.pow_g(v)
    c = _challenge(keypair.public, t, context)
    z = (v + c * keypair.x) % params.q
    return SchnorrProof(commitment=t, response=z)


def schnorr_verify(public: PublicKey, proof: SchnorrProof, context: bytes) -> bool:
    """Check a proof against the same ``context`` the prover used."""
    params = public.params
    if not params.is_element(public.y):
        return False
    if not (0 < proof.commitment < params.p) or not (0 <= proof.response < params.q):
        return False
    c = _challenge(public, proof.commitment, context)
    lhs = params.pow_g(proof.response)
    rhs = (
        proof.commitment * fastexp.mod_pow(public.y, c, params.p, order=params.q)
    ) % params.p
    return lhs == rhs


#: Bit width of the per-item randomizers in the batch small-exponent test.
BATCH_RANDOMIZER_BITS = 64


def schnorr_batch_verify(
    items: Sequence[tuple[PublicKey, "SchnorrProof", bytes]],
) -> bool:
    """Verify many ``(public, proof, context)`` triples at once.

    Randomized linear combination: with fresh 64-bit multipliers ``l_i``,
    the per-proof equations ``g**z_i == t_i * y_i**c_i`` are folded into

        (prod t_i**l_i * prod y_i**(l_i*c_i) / g**sum(l_i*z_i))**cofactor == 1

    Raising to the group cofactor projects away small-order components a
    malicious prover could hide in a commitment, so the test accepts iff
    every equation holds on the order-``q`` subgroup — a batch with one
    forged proof passes with probability at most ~2**-64.  Mixed-group
    batches fall back to per-item :func:`schnorr_verify`.

    Pure predicate: ``True`` iff every proof verifies.
    """
    items = list(items)
    if not items:
        return True
    params = items[0][0].params
    if any(public.params != params for public, _, _ in items):
        return all(schnorr_verify(public, proof, context) for public, proof, context in items)

    p, q = params.p, params.q
    g_exponent = 0
    commitment_product = 1
    y_exponents: dict[int, int] = {}
    for public, proof, context in items:
        if not params.is_element(public.y):
            return False
        if not (0 < proof.commitment < p) or not (0 <= proof.response < q):
            return False
        c = _challenge(public, proof.commitment, context)
        multiplier = secrets.randbits(BATCH_RANDOMIZER_BITS) | 1
        g_exponent = (g_exponent + multiplier * proof.response) % q
        commitment_product = (commitment_product * pow(proof.commitment, multiplier, p)) % p
        y = public.y
        y_exponents[y] = (y_exponents.get(y, 0) + multiplier * c) % q

    rhs = (
        commitment_product * fastexp.multi_exp(list(y_exponents.items()), p, order=q)
    ) % p
    lhs = params.pow_g(g_exponent)
    ratio = (rhs * primitives.modinv(lhs, p)) % p
    return pow(ratio, params.cofactor, p) == 1
