"""DSA signatures (FIPS 186 style) over the shared Schnorr groups.

This is the workhorse signature scheme of the reproduction — the paper's
Table 2 benchmarks exactly these three operations (key generation, signature
generation, signature verification) at the 1024/160 parameter size.

Nonces are derived deterministically from the secret key and message (an
RFC 6979 flavoured HMAC construction) so that signing is safe against nonce
reuse and reproducible under test, while remaining indistinguishable from
random-nonce DSA to verifiers.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto import primitives
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams, default_params


@dataclass(frozen=True)
class DsaSignature:
    """A DSA signature pair ``(r, s)``, both in ``[1, q)``."""

    r: int
    s: int

    def encode(self) -> bytes:
        """Stable byte encoding (used when signatures are nested in messages)."""
        return primitives.int_to_bytes(self.r) + b"|" + primitives.int_to_bytes(self.s)


class DsaKeyPair(KeyPair):
    """A :class:`~repro.crypto.keys.KeyPair` intended for DSA use."""


def dsa_generate(params: DlogParams | None = None) -> KeyPair:
    """Generate a DSA key pair (Table 2 row 1: "DSA key generation")."""
    return KeyPair.generate(params or default_params())


def _derive_nonce(params: DlogParams, x: int, digest: int) -> int:
    """Deterministic nonce in ``[1, q)`` from the key and message digest.

    A simplified RFC 6979: HMAC-SHA256 keyed by the secret exponent over the
    message digest, extended in counter mode until a value below ``q`` is
    found.  Distinct messages yield independent-looking nonces; the same
    message always yields the same signature (handy for tests).
    """
    key = primitives.int_to_bytes(x).rjust(32, b"\x00")
    msg = primitives.int_to_bytes(digest).rjust(32, b"\x00")
    counter = 0
    while True:
        mac = hmac.new(key, msg + counter.to_bytes(4, "big"), hashlib.sha256).digest()
        k = int.from_bytes(mac, "big") % params.q
        if 0 < k:
            return k
        counter += 1


def dsa_sign(keypair: KeyPair, message: bytes) -> DsaSignature:
    """Sign ``message`` (Table 2 row 2: "DSA signature generation")."""
    params = keypair.params
    digest = primitives.hash_to_int(message, modulus=params.q)
    while True:
        k = _derive_nonce(params, keypair.x, digest)
        r = pow(params.g, k, params.p) % params.q
        if r == 0:
            digest = (digest + 1) % params.q  # vanishingly unlikely; re-derive
            continue
        k_inv = primitives.modinv(k, params.q)
        s = (k_inv * (digest + keypair.x * r)) % params.q
        if s == 0:
            digest = (digest + 1) % params.q
            continue
        return DsaSignature(r=r, s=s)


def dsa_verify(public: PublicKey, message: bytes, signature: DsaSignature) -> bool:
    """Verify a signature (Table 2 row 3: "DSA signature verification").

    Returns ``False`` (never raises) on any malformed input, so protocol code
    can treat verification as a pure predicate.
    """
    params = public.params
    r, s = signature.r, signature.s
    if not (0 < r < params.q and 0 < s < params.q):
        return False
    if not params.is_element(public.y):
        return False
    digest = primitives.hash_to_int(message, modulus=params.q)
    w = primitives.modinv(s, params.q)
    u1 = (digest * w) % params.q
    u2 = (r * w) % params.q
    v = (pow(params.g, u1, params.p) * pow(public.y, u2, params.p)) % params.p % params.q
    return v == r
