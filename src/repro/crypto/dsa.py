"""DSA signatures (FIPS 186 style) over the shared Schnorr groups.

This is the workhorse signature scheme of the reproduction — the paper's
Table 2 benchmarks exactly these three operations (key generation, signature
generation, signature verification) at the 1024/160 parameter size.

Nonces are derived deterministically from the secret key and message (an
RFC 6979 flavoured HMAC construction) so that signing is safe against nonce
reuse and reproducible under test, while remaining indistinguishable from
random-nonce DSA to verifiers.

Performance engineering (DESIGN.md §1.1, "Performance engineering"):

* Verification computes ``g**u1 * y**u2`` as one simultaneous
  multi-exponentiation (:func:`repro.crypto.fastexp.multi_exp`); the
  generator always hits its fixed-base table and recurrent signer keys are
  auto-promoted to tables of their own.
* Signatures carry an optional ``commit`` hint — the full ``R = g**k mod p``
  whose reduction ``R mod q`` is ``r``.  Individual verification ignores it;
  :func:`dsa_batch_verify` uses it to verify many signatures with one
  randomized linear combination (small-exponent test à la Naccache et al.).
* :func:`dsa_digest` exposes the per-message digest so callers that sign
  *and* verify the same message (or verify in batches) hash it only once.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto import fastexp, primitives
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams, default_params

#: Bit width of the per-item randomizers in the batch small-exponent test.
#: A forged batch member survives with probability ~2**-BATCH_RANDOMIZER_BITS.
BATCH_RANDOMIZER_BITS = 64


@dataclass(frozen=True)
class DsaSignature:
    """A DSA signature pair ``(r, s)``, both in ``[1, q)``.

    ``commit`` is the full nonce commitment ``R = g**k mod p`` (so that
    ``r == R mod q``).  It is a *verification accelerator*, not part of the
    signature's security: honest signers attach it, verifiers never trust it
    beyond the randomized batch test, and individual verification ignores it
    entirely.  Signatures without it (e.g. minted by an older peer) remain
    fully valid — batch verification just falls back to per-signature
    checking for them.
    """

    r: int
    s: int
    commit: int | None = None

    def encode(self) -> bytes:
        """Stable byte encoding (used when signatures are nested in messages)."""
        parts = primitives.int_to_bytes(self.r) + b"|" + primitives.int_to_bytes(self.s)
        if self.commit is not None:
            parts += b"|" + primitives.int_to_bytes(self.commit)
        return parts


class DsaKeyPair(KeyPair):
    """A :class:`~repro.crypto.keys.KeyPair` intended for DSA use."""


def dsa_generate(params: DlogParams | None = None) -> KeyPair:
    """Generate a DSA key pair (Table 2 row 1: "DSA key generation")."""
    return KeyPair.generate(params or default_params())


def dsa_digest(params: DlogParams, message: bytes) -> int:
    """The per-message digest both signing and verification consume.

    Hoisted out so protocol code that signs and immediately verifies (or
    batch-verifies) the same payload hashes it exactly once.
    """
    return primitives.hash_to_int(message, modulus=params.q)


def _derive_nonce(params: DlogParams, x: int, digest: int) -> int:
    """Deterministic nonce in ``[1, q)`` from the key and message digest.

    A simplified RFC 6979: HMAC-SHA256 keyed by the secret exponent over the
    message digest, in counter mode.  Candidate nonces follow RFC 6979's
    ``bits2int`` + retry-on-overflow rule: take the leftmost ``qlen`` bits of
    the MAC output and *reject* (rather than reduce) candidates outside
    ``[1, q)``.  A plain ``% q`` reduction is detectably biased once ``q``
    approaches the MAC width — at 256-bit ``q`` (the 2048/256 group) roughly
    half the nonce range would be twice as likely as the other half.
    """
    key = primitives.int_to_bytes(x).rjust(32, b"\x00")
    msg = primitives.int_to_bytes(digest).rjust(32, b"\x00")
    qlen = params.q.bit_length()
    shift = max(0, 256 - qlen)
    counter = 0
    while True:
        mac = hmac.new(key, msg + counter.to_bytes(4, "big"), hashlib.sha256).digest()
        k = int.from_bytes(mac, "big") >> shift
        if 0 < k < params.q:
            return k
        counter += 1


def dsa_sign(
    keypair: KeyPair,
    message: bytes,
    digest: int | None = None,
    pool: "DsaNoncePool | None" = None,
) -> DsaSignature:
    """Sign ``message`` (Table 2 row 2: "DSA signature generation").

    ``digest`` may be precomputed with :func:`dsa_digest`; otherwise it is
    derived here.  With ``pool`` given and non-empty, the nonce, its
    commitment, and its inverse come precomputed from the
    :class:`DsaNoncePool` (flush-amortized signing); a dry pool falls back
    to the deterministic derivation below.
    """
    params = keypair.params
    if digest is None:
        digest = dsa_digest(params, message)
    if pool is not None:
        if pool.keypair.x != keypair.x:
            raise ValueError("nonce pool belongs to a different signing key")
        triple = pool.take()
        if triple is not None:
            k, commit, r_s_k_inv = triple
            r = commit % params.q
            s = (r_s_k_inv * (digest + keypair.x * r)) % params.q
            if r != 0 and s != 0:
                return DsaSignature(r=r, s=s, commit=commit)
            # r/s == 0 (astronomically unlikely): discard the triple and
            # fall through to the deterministic re-derivation path.
    while True:
        k = _derive_nonce(params, keypair.x, digest)
        commit = params.pow_g(k)
        r = commit % params.q
        if r == 0:
            digest = (digest + 1) % params.q  # vanishingly unlikely; re-derive
            continue
        k_inv = primitives.modinv(k, params.q)
        s = (k_inv * (digest + keypair.x * r)) % params.q
        if s == 0:
            digest = (digest + 1) % params.q
            continue
        return DsaSignature(r=r, s=s, commit=commit)


def _batch_modinv(values: Sequence[int], modulus: int) -> list[int]:
    """Montgomery batch inversion: n inverses for the price of one.

    Prefix-product trick: invert the running product once, then peel the
    individual inverses off backwards with two multiplications each.
    Every value must be invertible (nonces are in ``[1, q)`` with prime
    ``q``, so they always are).
    """
    prefix: list[int] = []
    running = 1
    for value in values:
        running = (running * value) % modulus
        prefix.append(running)
    inverse = primitives.modinv(running, modulus)
    out = [0] * len(values)
    for index in range(len(values) - 1, -1, -1):
        if index == 0:
            out[0] = inverse
        else:
            out[index] = (inverse * prefix[index - 1]) % modulus
            inverse = (inverse * values[index]) % modulus
    return out


def dsa_sign_batch(
    keypair: KeyPair, messages: Sequence[bytes], digests: Sequence[int] | None = None
) -> list[DsaSignature]:
    """Sign many messages, bit-identical to per-message :func:`dsa_sign`.

    Nonces stay the deterministic RFC 6979-flavoured derivation (so the
    output is byte-for-byte what sequential signing would produce — replay
    fingerprints don't move), but the per-signature modular inversion of
    ``k`` is done for the whole batch with one :func:`_batch_modinv` call.
    The vanishingly-unlikely ``r == 0`` / ``s == 0`` re-derivation cases
    fall back to :func:`dsa_sign` for just that message.
    """
    params = keypair.params
    if digests is None:
        digest_list = [dsa_digest(params, message) for message in messages]
    else:
        digest_list = list(digests)
        if len(digest_list) != len(messages):
            raise ValueError("digests, when given, must match messages 1:1")
    nonces = [_derive_nonce(params, keypair.x, digest) for digest in digest_list]
    commits = [params.pow_g(k) for k in nonces]
    inverses = _batch_modinv(nonces, params.q)
    signatures: list[DsaSignature] = []
    for message, digest, commit, k_inv in zip(messages, digest_list, commits, inverses):
        r = commit % params.q
        s = (k_inv * (digest + keypair.x * r)) % params.q if r else 0
        if r == 0 or s == 0:
            signatures.append(dsa_sign(keypair, message, digest=digest))
            continue
        signatures.append(DsaSignature(r=r, s=s, commit=commit))
    return signatures


class DsaNoncePool:
    """Precomputed signing nonces: the flush-amortized half of reply signing.

    Each entry is a ready ``(k, R = g**k, k_inv)`` triple, so a pooled
    :func:`dsa_sign` costs two modular multiplications — the expensive
    exponentiation and inversion were done in bulk by :meth:`ensure`
    (fixed-base tables for the commits, Montgomery batch inversion for the
    inverses), once per group-commit flush.

    Nonce safety: entries derive from an HMAC chain keyed by the secret
    exponent *and* a per-pool random salt, so nonces are unpredictable and
    can never repeat across pools (process restarts, crash recoveries) —
    the classic counter-only pitfall of reusing ``k`` against two different
    messages, which leaks the key, is structurally excluded.  The cost is
    that pooled signatures are not RFC 6979-reproducible; only the
    throughput pipeline installs a pool, so the deterministic default path
    (and the chaos suite's bit-identical replay fingerprints) are
    untouched.
    """

    def __init__(self, keypair: KeyPair, salt: bytes | None = None) -> None:
        self.keypair = keypair
        self._salt = secrets.token_bytes(16) if salt is None else salt
        self._counter = 0
        self._triples: list[tuple[int, int, int]] = []
        self.refills = 0
        self.generated = 0
        self.served = 0

    def __len__(self) -> int:
        return len(self._triples)

    def _next_nonce(self) -> int:
        """Next chain nonce in ``[1, q)`` (bits2int + rejection, as signing)."""
        params = self.keypair.params
        key = primitives.int_to_bytes(self.keypair.x).rjust(32, b"\x00") + self._salt
        qlen = params.q.bit_length()
        shift = max(0, 256 - qlen)
        while True:
            mac = hmac.new(
                key, b"nonce-pool|" + self._counter.to_bytes(8, "big"), hashlib.sha256
            ).digest()
            self._counter += 1
            k = int.from_bytes(mac, "big") >> shift
            if 0 < k < params.q:
                return k

    def ensure(self, count: int) -> int:
        """Top the pool up to at least ``count`` entries; returns how many
        triples were generated (0 when the pool already covers the need)."""
        need = count - len(self._triples)
        if need <= 0:
            return 0
        params = self.keypair.params
        nonces: list[int] = []
        commits: list[int] = []
        while len(nonces) < need:
            k = self._next_nonce()
            commit = params.pow_g(k)
            if commit % params.q == 0:
                continue  # r would be 0; astronomically unlikely, skip
            nonces.append(k)
            commits.append(commit)
        inverses = _batch_modinv(nonces, params.q)
        self._triples.extend(zip(nonces, commits, inverses))
        self.refills += 1
        self.generated += need
        return need

    def take(self) -> tuple[int, int, int] | None:
        """Pop one ready triple, or ``None`` when the pool is dry."""
        self.served += 1 if self._triples else 0
        return self._triples.pop() if self._triples else None


def dsa_verify(
    public: PublicKey, message: bytes, signature: DsaSignature, digest: int | None = None
) -> bool:
    """Verify a signature (Table 2 row 3: "DSA signature verification").

    Returns ``False`` (never raises) on any malformed input, so protocol code
    can treat verification as a pure predicate.  ``signature.commit`` plays
    no role here — only the randomized batch test uses it.
    """
    params = public.params
    r, s = signature.r, signature.s
    if not (0 < r < params.q and 0 < s < params.q):
        return False
    if not params.is_element(public.y):
        return False
    if digest is None:
        digest = dsa_digest(params, message)
    w = primitives.modinv(s, params.q)
    u1 = (digest * w) % params.q
    u2 = (r * w) % params.q
    v = fastexp.multi_exp(((params.g, u1), (public.y, u2)), params.p, order=params.q)
    return v % params.q == r


def dsa_batch_verify(
    items: Sequence[tuple[PublicKey, bytes, DsaSignature]],
    digests: Iterable[int] | None = None,
) -> bool:
    """Verify many ``(public, message, signature)`` triples at once.

    Randomized linear-combination ("small exponent") batch test: with
    per-item random 64-bit multipliers ``l_i``, a single check

        (prod R_i**l_i  /  (g**sum(l_i*u1_i) * prod y_i**(l_i*u2_i)))**cofactor == 1

    replaces one double-exponentiation per signature.  Raising to the group
    cofactor projects away any small-order component an adversary might
    smuggle into a ``commit`` hint, so soundness rests only on the subgroup
    components — a batch containing even one forged signature passes with
    probability at most ~2**-64.  Signatures lacking ``commit`` (or with
    ``commit mod q != r``) are verified individually, as are mixed-group
    batches, so the function always agrees with per-item :func:`dsa_verify`
    on honestly generated signatures.

    Pure predicate: ``True`` iff *every* item verifies.  Callers needing to
    identify the offender re-check individually after a ``False``.
    """
    items = list(items)
    if not items:
        return True
    digest_list = list(digests) if digests is not None else [None] * len(items)
    if len(digest_list) != len(items):
        raise ValueError("digests, when given, must match items 1:1")

    params = items[0][0].params
    if any(public.params != params for public, _, _ in items):
        return all(
            dsa_verify(public, message, signature, digest=digest)
            for (public, message, signature), digest in zip(items, digest_list)
        )

    p, q, g = params.p, params.q, params.g
    leftover: list[int] = []  # indices that need individual verification
    commits: list[tuple[int, int]] = []  # (commit hint R_i, multiplier l_i)
    g_exponent = 0
    y_exponents: dict[int, int] = {}  # signer y -> accumulated exponent mod q
    for index, ((public, message, signature), digest) in enumerate(zip(items, digest_list)):
        r, s, commit = signature.r, signature.s, signature.commit
        if not (0 < r < q and 0 < s < q):
            return False
        if not params.is_element(public.y):
            return False
        if commit is None or not 0 < commit < p or commit % q != r:
            # No (or inconsistent) hint: cannot join the combination.  An
            # inconsistent hint on an otherwise valid signature must not
            # reject it — the hint is untrusted metadata.
            leftover.append(index)
            continue
        if digest is None:
            digest = dsa_digest(params, message)
        w = primitives.modinv(s, q)
        u1 = (digest * w) % q
        u2 = (r * w) % q
        multiplier = secrets.randbits(BATCH_RANDOMIZER_BITS) | 1
        commits.append((commit, multiplier))
        g_exponent = (g_exponent + multiplier * u1) % q
        y = public.y
        y_exponents[y] = (y_exponents.get(y, 0) + multiplier * u2) % q

    if commits:
        # One multi-exponentiation for the whole equation: the commit hints
        # ride along with their 64-bit multipliers (ad hoc bases — Pippenger
        # buckets them far cheaper than a native pow each) and the known
        # order-q bases ``g`` and the signer keys fold in with *negated*
        # exponents, so the product is the LHS/RHS ratio directly.
        # ``promote=False``: commit hints are one-shot bases, not worth
        # learning tables for (existing tables for g/y still get used).
        pairs = commits + [(g, (q - g_exponent) % q)]
        pairs.extend((y, (q - exponent) % q) for y, exponent in y_exponents.items())
        ratio = fastexp.multi_exp(pairs, p, order=q, promote=False)
        # Compare up to the cofactor subgroup: commit hints are adversarial,
        # so their order-dividing-cofactor components must be projected away
        # before the equality means anything.
        if pow(ratio, params.cofactor, p) != 1:
            return False

    for index in leftover:
        public, message, signature = items[index]
        if not dsa_verify(public, message, signature, digest=digest_list[index]):
            return False
    return True
