"""PayWord-style hash chains (paper Section 7, micropayment aggregation).

A chain is built by repeatedly hashing a random seed::

    w_n = seed;   w_i = H(w_{i+1})   for i = n-1 … 0

The anchor ``w_0`` is committed (in WhoPay's extension, signed alongside a
credit-window agreement); revealing ``w_i`` then proves the payer authorized
``i`` unit payments, because producing a preimage chain of length ``i``
ending at the anchor is infeasible without the seed.  Aggregation: many tiny
payments become a single WhoPay payment when the window reaches a threshold
(see :mod:`repro.baselines.payword`).
"""

from __future__ import annotations

import secrets

from repro.crypto import primitives


class HashChain:
    """A payer-side PayWord chain of ``length`` spendable units."""

    def __init__(self, length: int, seed: bytes | None = None) -> None:
        if length < 1:
            raise ValueError("chain length must be positive")
        self.length = length
        self._seed = seed if seed is not None else secrets.token_bytes(32)
        # links[i] = w_i; links[0] is the public anchor, links[length] the seed.
        links = [self._seed]
        for _ in range(length):
            links.append(primitives.sha256(links[-1]))
        links.reverse()
        self._links = links
        self._spent = 0

    @property
    def anchor(self) -> bytes:
        """The public commitment ``w_0``."""
        return self._links[0]

    @property
    def spent(self) -> int:
        """Units revealed so far."""
        return self._spent

    @property
    def remaining(self) -> int:
        """Units still spendable."""
        return self.length - self._spent

    def pay(self, units: int = 1) -> tuple[int, bytes]:
        """Spend ``units`` more; returns ``(total_spent, w_total_spent)``.

        The returned pair is the payment token handed to the payee.
        """
        if units < 1:
            raise ValueError("must spend at least one unit")
        if self._spent + units > self.length:
            raise ValueError("hash chain exhausted")
        self._spent += units
        return self._spent, self._links[self._spent]

    def link(self, index: int) -> bytes:
        """The chain value ``w_index`` (0 = anchor); payer-side inspection."""
        if not 0 <= index <= self.length:
            raise IndexError("link index out of range")
        return self._links[index]


def verify_chain_link(anchor: bytes, index: int, link: bytes) -> bool:
    """Payee-side check that ``link`` hashes to ``anchor`` in ``index`` steps.

    Cost is ``index`` hash invocations — the cheapness that makes PayWord a
    viable micropayment primitive.
    """
    if index < 0:
        return False
    value = link
    for _ in range(index):
        value = primitives.sha256(value)
    return primitives.constant_time_eq(value, anchor)
