"""Textbook-plus-hash RSA, from scratch.

Needed only by the blind-signature machinery (:mod:`repro.crypto.blind`) —
Chaum's blinding (the paper's reference [9], the mechanism behind the
"numerous anonymous payment systems" of Section 1) relies on RSA's
multiplicative structure, which the discrete-log schemes used elsewhere in
this package do not offer.

Signatures are full-domain-hash style: the message is hashed and expanded to
the modulus size before exponentiation, which removes textbook RSA's
malleability for *ordinary* signing while keeping the homomorphism available
to the explicit blinding API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import primitives

#: Fermat number F4; the standard public exponent.
PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA verification key ``(n, e)``."""

    n: int
    e: int

    def encode(self) -> bytes:
        """Stable byte encoding."""
        return primitives.int_to_bytes(self.n) + b"|" + primitives.int_to_bytes(self.e)


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair; ``d`` is the signing exponent."""

    public: RsaPublicKey
    d: int
    p: int
    q: int

    def _sign_value(self, value: int) -> int:
        """``value ** d mod n`` via the CRT (Garner) — ~3-4x a plain ``pow``.

        Both half-size exponentiations use half-size exponents *and*
        half-size moduli, which is where the speedup comes from; the mint's
        blind-signing throughput rides on this.
        """
        p, q, n = self.p, self.q, self.public.n
        mp = pow(value % p, self.d % (p - 1), p)
        mq = pow(value % q, self.d % (q - 1), q)
        h = (primitives.modinv(q % p, p) * (mp - mq)) % p
        return (mq + q * h) % n


def rsa_generate(bits: int = 1024) -> RsaKeyPair:
    """Generate an RSA key pair with a ``bits``-sized modulus.

    512-bit moduli are fine for tests; anything real should use ≥ 2048.
    """
    if bits < 128:
        raise ValueError("modulus too small to be meaningful")
    half = bits // 2
    while True:
        p = primitives.generate_prime(half)
        q = primitives.generate_prime(bits - half)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % PUBLIC_EXPONENT == 0:
            continue
        d = primitives.modinv(PUBLIC_EXPONENT, phi)
        return RsaKeyPair(public=RsaPublicKey(n=n, e=PUBLIC_EXPONENT), d=d, p=p, q=q)


def hash_to_modulus(message: bytes, n: int) -> int:
    """Full-domain hash of ``message`` into ``[1, n)``."""
    digest = primitives.hash_to_int(b"rsa-fdh-v1", message, modulus=n - 1)
    return digest + 1  # avoid the fixed point 0


def rsa_sign(keypair: RsaKeyPair, message: bytes) -> int:
    """FDH-RSA signature on ``message``."""
    return keypair._sign_value(hash_to_modulus(message, keypair.public.n))


def rsa_verify(public: RsaPublicKey, message: bytes, signature: int) -> bool:
    """Verify an FDH-RSA signature; pure predicate."""
    if not 0 < signature < public.n:
        return False
    return pow(signature, public.e, public.n) == hash_to_modulus(message, public.n)


def rsa_sign_raw(keypair: RsaKeyPair, value: int) -> int:
    """Exponentiate a *raw* value with the signing key.

    This is the mint's side of blind signing: the value arrived already
    hashed-and-blinded from the client, so no hashing happens here.  Never
    expose this on ordinary messages — it is exactly the textbook-RSA oracle
    the FDH wrapping exists to prevent — which is why the blind-signing
    protocol (``repro.crypto.blind``) is its only caller.
    """
    if not 0 < value < keypair.public.n:
        raise ValueError("value out of modulus range")
    return keypair._sign_value(value)
