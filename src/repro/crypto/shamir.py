"""Shamir secret sharing over GF(q).

Section 3.2 of the paper: "this master private key can be divided among N
judges using Shamir's secret sharing protocol and at least K judges are
needed in order to recover the key."  :class:`~repro.crypto.group_signature.
GroupManager.export_opening_shares` uses this module for exactly that.

Shares are points ``(i, f(i))`` of a random degree-``k-1`` polynomial with
``f(0) = secret``, all arithmetic modulo the (prime) group order ``q``.
"""

from __future__ import annotations

from repro.crypto import primitives


def split_secret(secret: int, n: int, k: int, modulus: int) -> list[tuple[int, int]]:
    """Split ``secret`` into ``n`` shares with reconstruction threshold ``k``.

    Returns ``n`` points ``(x, y)`` with distinct non-zero ``x``.  Any ``k``
    of them reconstruct the secret; any ``k-1`` are information-theoretically
    independent of it.
    """
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")
    if n >= modulus:
        raise ValueError("too many shares for the field size")
    if not 0 <= secret < modulus:
        raise ValueError("secret out of field range")
    if not primitives.is_probable_prime(modulus, rounds=10):
        raise ValueError("modulus must be prime")
    coefficients = [secret] + [primitives.randbelow(modulus) for _ in range(k - 1)]
    shares = []
    for x in range(1, n + 1):
        y = 0
        for coeff in reversed(coefficients):  # Horner evaluation
            y = (y * x + coeff) % modulus
        shares.append((x, y))
    return shares


def combine_shares(shares: list[tuple[int, int]], modulus: int) -> int:
    """Reconstruct the secret from ``k`` (or more) distinct shares.

    Lagrange interpolation at ``x = 0``.  With fewer than the original
    threshold of shares this returns an unrelated field element rather than
    raising — the caller cannot detect insufficiency, which is inherent to
    the scheme.
    """
    if not shares:
        raise ValueError("no shares provided")
    xs = [x for x, _ in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate share indices")
    secret = 0
    for i, (x_i, y_i) in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, (x_j, _) in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-x_j)) % modulus
            denominator = (denominator * (x_i - x_j)) % modulus
        lagrange = (numerator * primitives.modinv(denominator, modulus)) % modulus
        secret = (secret + y_i * lagrange) % modulus
    return secret
