"""Group signatures with judge opening (Section 3.2 of the paper).

The paper requires a scheme with three properties:

* **Anonymity / unlinkability** — a verifier learns only that *some*
  registered member signed; two signatures by the same member cannot be
  linked.
* **Public verifiability** — anyone holding the group public key can check
  membership.
* **Openability** — the judge (holder of the opening key) can recover the
  signer's identity from any valid signature.

The construction implemented here is a *ring signature with an escrowed
opening key*:

1. Every member ``i`` is registered by the judge with a membership key
   ``h_i = g^{x_i}``; the judge records ``h_i → identity``.
2. A signature on message ``M`` is an ElGamal encryption ``(c1, c2) =
   (g^r, h_i · y_J^r)`` of the signer's membership key under the judge's
   opening key ``y_J``, together with a Fiat–Shamir OR-proof
   (Cramer–Damgård–Schoenmakers composition) over the member roster that,
   for **some** ``j``, the prover knows ``(r, x_j)`` with::

       c1 = g^r   ∧   c2 / h_j = y_J^r   ∧   h_j = g^{x_j}

   The proof is bound to ``M`` through the challenge hash.
3. The judge opens a signature by decrypting ``(c1, c2)`` and looking up the
   resulting ``h_i`` in its registry.

Deviation note (recorded in DESIGN.md §4): the paper assumes a hypothetical
"efficient group signature scheme" with constant-size signatures and guesses
its cost at 2x DSA (Table 3).  Our scheme is a real, working one but its
sign/verify cost is linear in the roster size.  The simulator therefore pins
the paper's 2x cost model (``repro.sim.costs``); the measured cost of this
scheme is reported separately by ``benchmarks/bench_table3_relative_cost.py``.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Sequence

from repro.crypto import fastexp, primitives
from repro.crypto.elgamal import ElGamalCiphertext, ElGamalKeyPair, elgamal_generate
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams, default_params


class GroupSignatureError(Exception):
    """Raised on malformed group-signature operations (never on bad sigs)."""


@dataclass(frozen=True)
class GroupPublicKey:
    """What a verifier needs: the group, the opening key, and the roster.

    The roster is a tuple of membership keys ``h_j``.  Membership keys are
    pseudonymous — only the judge can map one back to a real identity — so
    publishing the roster leaks nothing about identities.

    ``version`` identifies the roster snapshot (it advances on every
    registration *and* every expulsion), letting verifiers fetch exactly the
    snapshot a signer used and letting the system enforce a revocation
    floor: signatures minted against pre-expulsion snapshots can be refused.
    """

    params: DlogParams
    opening_key: PublicKey
    roster: tuple[int, ...]
    version: int = 0

    def encode(self) -> bytes:
        """Stable byte encoding hashed into every challenge (memoized —
        the fields are frozen, and verifiers hash it once per signature)."""
        cached = self.__dict__.get("_encode_memo")
        if cached is None:
            parts = [self.params.encode(), self.opening_key.encode()]
            parts.extend(primitives.int_to_bytes(h) for h in self.roster)
            cached = b"|".join(parts)
            object.__setattr__(self, "_encode_memo", cached)
        return cached

    def roster_index(self, h: int) -> int | None:
        """Index of membership key ``h`` in the roster, or ``None``."""
        try:
            return self.roster.index(h)
        except ValueError:
            return None


@dataclass(frozen=True)
class GroupMemberKey:
    """A member's group private key ``gk_U``: secret exponent + roster entry."""

    params: DlogParams
    x: int
    h: int  # = g^x mod p, the membership (roster) key

    @property
    def membership_key(self) -> int:
        """The public roster entry for this member."""
        return self.h


@dataclass(frozen=True)
class GroupSignature:
    """A group signature: ciphertext + per-clause OR-proof transcripts.

    ``commitments`` is the per-clause ``(t1, t2, t3)`` commitment list — a
    *verification accelerator*, not part of the signature's security.  The
    signer computes these values anyway (the challenge hash covers them), so
    attaching them is free; :func:`group_batch_verify` uses them to replace
    the per-clause equation recomputation with one randomized batch check.
    Verifiers never trust them beyond that randomized test, individual
    verification (:func:`group_verify`) ignores them entirely, and
    signatures without them (minted by an older peer, or stripped in
    transit) remain fully valid — the batch path falls back to exact
    per-signature verification for those.  Mirrors ``DsaSignature.commit``.
    """

    ciphertext: ElGamalCiphertext
    challenges: tuple[int, ...]
    responses_r: tuple[int, ...]
    responses_x: tuple[int, ...]
    commitments: tuple[tuple[int, int, int], ...] | None = None

    def encode(self) -> bytes:
        """Stable byte encoding.

        ``commitments`` is deliberately excluded: it is untrusted metadata
        that transports may strip, and the bytes here must stay identical
        for the same underlying signature either way.
        """
        parts = [self.ciphertext.encode()]
        for seq in (self.challenges, self.responses_r, self.responses_x):
            parts.extend(primitives.int_to_bytes(v) for v in seq)
        return b"|".join(parts)


class GroupManager:
    """The judge's side of the scheme: registration and opening.

    In WhoPay there is a single group containing every user (Section 3.2,
    footnote 1).  The manager can also split its opening key among ``N``
    judges with :meth:`export_opening_shares` (Shamir, Section 3.2).
    """

    def __init__(self, params: DlogParams | None = None) -> None:
        self.params = params or default_params()
        self._opening = elgamal_generate(self.params)
        # The opening key is exponentiated in every clause of every signature
        # for the lifetime of the group: precompute its fixed-base table now.
        fastexp.precompute(
            self._opening.public.y, self.params.p, self.params.q_bits, order=self.params.q
        )
        self._registry: dict[int, str] = {}  # h -> identity
        # Snapshot history: version v is _snapshots[v].  Every registration
        # and every expulsion appends a snapshot, so old signatures remain
        # verifiable against the exact roster they were minted under.
        self._snapshots: list[tuple[int, ...]] = [()]
        self._expelled: dict[str, int] = {}  # identity -> expulsion version

    @property
    def opening_keypair(self) -> ElGamalKeyPair:
        """The judge's ElGamal opening key pair (keep secret)."""
        return self._opening

    def public_key(self) -> GroupPublicKey:
        """Snapshot of the current group public key (roster included)."""
        return self.public_key_at(len(self._snapshots) - 1)

    def public_key_at(self, version: int) -> GroupPublicKey:
        """The group public key as of roster version ``version``.

        A verifier can reconstruct exactly the snapshot a signer used (the
        signer's envelope records its roster version).
        """
        if not 0 <= version < len(self._snapshots):
            raise GroupSignatureError(f"unknown roster version {version}")
        return GroupPublicKey(
            params=self.params,
            opening_key=self._opening.public,
            roster=self._snapshots[version],
            version=version,
        )

    @property
    def current_version(self) -> int:
        """The latest roster version."""
        return len(self._snapshots) - 1

    def register(self, identity: str) -> GroupMemberKey:
        """Enroll ``identity``: mint a membership key and record the mapping.

        The paper has the judge assign each user a distinct private key
        (Section 3.2); we follow that and generate the key on the judge's
        side, returning it for delivery to the member.
        """
        member = KeyPair.generate(self.params)
        if member.public.y in self._registry:  # astronomically unlikely
            raise GroupSignatureError("membership key collision")
        # Roster keys are exponentiated on every sign/verify from now on.
        fastexp.precompute(member.public.y, self.params.p, self.params.q_bits, order=self.params.q)
        self._registry[member.public.y] = identity
        self._snapshots.append(self._snapshots[-1] + (member.public.y,))
        return GroupMemberKey(params=self.params, x=member.x, h=member.public.y)

    def expel(self, identity: str) -> int:
        """Remove ``identity`` from the roster; returns the new version.

        The member can no longer produce signatures that verify against
        current (or later) snapshots.  Its registry entry is kept so the
        judge can still open the member's *historical* signatures — expelling
        a fraudster must not destroy the evidence trail.
        """
        targets = [h for h, name in self._registry.items() if name == identity]
        current = self._snapshots[-1]
        live = [h for h in targets if h in current]
        if not live:
            raise GroupSignatureError(f"{identity!r} is not an active member")
        self._snapshots.append(tuple(h for h in current if h not in live))
        self._expelled[identity] = self.current_version
        return self.current_version

    def is_expelled(self, identity: str) -> bool:
        """True if ``identity`` has been removed from the current roster."""
        return identity in self._expelled

    def member_count(self) -> int:
        """Number of currently enrolled members."""
        return len(self._snapshots[-1])

    def open(self, signature: GroupSignature) -> str | None:
        """Reveal the signer's identity (fairness).

        Returns the registered identity, or ``None`` if the decrypted
        membership key is not in the registry (which cannot happen for a
        signature that verified against this group's public key).
        """
        from repro.crypto.elgamal import elgamal_decrypt

        h = elgamal_decrypt(self._opening, signature.ciphertext)
        return self._registry.get(h)

    def export_opening_shares(self, n: int, k: int) -> list[tuple[int, int]]:
        """Split the opening exponent into ``n`` Shamir shares, threshold ``k``.

        Any ``k`` judges can jointly rebuild the opening key via
        :func:`repro.crypto.shamir.combine_shares`; fewer learn nothing.
        """
        from repro.crypto.shamir import split_secret

        return split_secret(self._opening.secret, n=n, k=k, modulus=self.params.q)


def _challenge_hash(
    gpk: GroupPublicKey,
    ciphertext: ElGamalCiphertext,
    commitments: list[tuple[int, int, int]],
    message: bytes,
) -> int:
    parts: list[bytes] = [b"group-sig-v1", gpk.encode(), ciphertext.encode()]
    for t1, t2, t3 in commitments:
        parts.append(primitives.int_to_bytes(t1))
        parts.append(primitives.int_to_bytes(t2))
        parts.append(primitives.int_to_bytes(t3))
    parts.append(message)
    return primitives.hash_to_int(*parts, modulus=gpk.params.q)


#: Build per-signature fixed-base tables for the ciphertext elements once
#: the roster reaches this size (below it, table construction outweighs the
#: lookups it saves).
_EPHEMERAL_TABLE_MIN_ROSTER = 6


def _ciphertext_tables(
    params: DlogParams, c1: int, c2: int, n: int
) -> dict[int, fastexp.FixedBaseTable]:
    """Ephemeral fixed-base tables for ``c1``/``c2``, used ``n`` times each.

    Every clause of the OR-proof exponentiates both ciphertext halves, so a
    roster of ``n`` members amortizes the one-off table build ``n`` times.
    """
    if n < _EPHEMERAL_TABLE_MIN_ROSTER:
        return {}
    return {
        base: fastexp.FixedBaseTable(
            base, params.p, params.q_bits, window=fastexp.EPHEMERAL_WINDOW, order=params.q
        )
        for base in (c1, c2)  # keyed dict dedupes c1 == c2 deterministically
    }


def group_sign(gpk: GroupPublicKey, member: GroupMemberKey, message: bytes) -> GroupSignature:
    """Sign ``message`` anonymously on behalf of the group.

    The signer must appear in ``gpk.roster``; signing against a stale roster
    snapshot that predates the member's registration raises
    :class:`GroupSignatureError`.

    All clause equations are computed inversion-free: every base here is an
    order-``q`` element by construction, so ``base**-c == base**(q-c)`` and
    each commitment becomes one simultaneous multi-exponentiation over
    cached (``g``, ``y``, roster) and per-signature (``c1``, ``c2``) tables.
    """
    params = gpk.params
    p, q, g = params.p, params.q, params.g
    y = gpk.opening_key.y
    idx = gpk.roster_index(member.h)
    if idx is None:
        raise GroupSignatureError("signer is not in the roster snapshot")

    # ElGamal-encrypt the signer's membership key, keeping the nonce for the proof.
    r = params.random_exponent()
    c1 = params.pow_g(r)
    c2 = (member.h * fastexp.mod_pow(y, r, p, order=q)) % p
    ciphertext = ElGamalCiphertext(c1=c1, c2=c2)

    n = len(gpk.roster)
    challenges: list[int] = [0] * n
    responses_r: list[int] = [0] * n
    responses_x: list[int] = [0] * n
    commitments: list[tuple[int, int, int]] = [(0, 0, 0)] * n

    tables = _ciphertext_tables(params, c1, c2, n)
    # Simulate every non-signer clause with a random challenge.
    for j, h_j in enumerate(gpk.roster):
        if j == idx:
            continue
        c_j = primitives.randbelow(q)
        s_r = primitives.randbelow(q)
        s_x = primitives.randbelow(q)
        # t1 = g**s_r * c1**-c_j ; t2 = y**s_r * (c2/h_j)**-c_j ; t3 = g**s_x * h_j**-c_j
        t1 = fastexp.multi_exp(((g, s_r), (c1, q - c_j)), p, order=q, tables=tables)
        t2 = fastexp.multi_exp(
            ((y, s_r), (h_j, c_j), (c2, q - c_j)), p, order=q, tables=tables
        )
        t3 = fastexp.multi_exp(((g, s_x), (h_j, q - c_j)), p, order=q)
        challenges[j] = c_j
        responses_r[j] = s_r
        responses_x[j] = s_x
        commitments[j] = (t1, t2, t3)

    # Honest commitment for the signer's clause.
    a = params.random_exponent()
    b = params.random_exponent()
    commitments[idx] = (
        params.pow_g(a),
        fastexp.mod_pow(y, a, p, order=q),
        params.pow_g(b),
    )

    total = _challenge_hash(gpk, ciphertext, commitments, message)
    c_idx = (total - sum(challenges)) % q
    challenges[idx] = c_idx
    responses_r[idx] = (a + c_idx * r) % q
    responses_x[idx] = (b + c_idx * member.x) % q

    return GroupSignature(
        ciphertext=ciphertext,
        challenges=tuple(challenges),
        responses_r=tuple(responses_r),
        responses_x=tuple(responses_x),
        commitments=tuple(commitments),
    )


def group_verify(gpk: GroupPublicKey, message: bytes, signature: GroupSignature) -> bool:
    """Verify a group signature against the roster in ``gpk``.

    Pure predicate: returns ``False`` on any malformed input.

    Both ciphertext halves must be order-``q`` subgroup elements.  Honest
    signers always produce such ciphertexts; the explicit check (absent from
    the original verifier) rejects malformed ones outright *and* licenses
    the inversion-free ``base**-c == base**(q-c)`` rewriting that turns
    every clause into table lookups.  Roster keys and the opening key are
    trusted verifier inputs (they come from the judge), exactly as before.
    """
    params = gpk.params
    p, q, g = params.p, params.q, params.g
    y = gpk.opening_key.y
    n = len(gpk.roster)
    if not (len(signature.challenges) == len(signature.responses_r) == len(signature.responses_x) == n):
        return False
    c1, c2 = signature.ciphertext.c1, signature.ciphertext.c2
    if not (params.is_element(c1) and params.is_element(c2)):
        return False

    tables = _ciphertext_tables(params, c1, c2, n)
    commitments: list[tuple[int, int, int]] = []
    for j, h_j in enumerate(gpk.roster):
        c_j = signature.challenges[j]
        s_r = signature.responses_r[j]
        s_x = signature.responses_x[j]
        if not (0 <= c_j < q and 0 <= s_r < q and 0 <= s_x < q):
            return False
        # t1 = g**s_r * c1**-c_j ; t2 = y**s_r * (c2/h_j)**-c_j ; t3 = g**s_x * h_j**-c_j
        t1 = fastexp.multi_exp(((g, s_r), (c1, q - c_j)), p, order=q, tables=tables)
        t2 = fastexp.multi_exp(
            ((y, s_r), (h_j, c_j), (c2, q - c_j)), p, order=q, tables=tables
        )
        t3 = fastexp.multi_exp(((g, s_x), (h_j, q - c_j)), p, order=q)
        commitments.append((t1, t2, t3))

    total = _challenge_hash(gpk, signature.ciphertext, commitments, message)
    return sum(signature.challenges) % q == total


#: Bit width of the per-clause randomizers in the batched equation test.
#: A forged clause survives the combination with probability ~2**-64 —
#: the same bound (and the same small-exponent technique) as
#: ``repro.crypto.dsa.dsa_batch_verify``.
BATCH_RANDOMIZER_BITS = 64


def group_batch_verify(
    gpk: GroupPublicKey, items: Sequence[tuple[bytes, GroupSignature]]
) -> bool:
    """Verify many ``(message, signature)`` pairs against one roster at once.

    The exact verifier recomputes every clause commitment ``(t1, t2, t3)``
    with three multi-exponentiations per roster member.  When a signature
    carries its ``commitments`` hint, the verifier can instead (a) check the
    Fiat–Shamir challenge hash against the *claimed* commitments — an exact,
    cheap check — and (b) confirm the claimed commitments satisfy the clause
    equations

        g**s_r           == t1 * c1**c_j
        y**s_r * h_j**c_j == t2 * c2**c_j
        g**s_x           == t3 * h_j**c_j

    with one randomized linear combination over *all* clauses of *all*
    hinted signatures: per-clause random odd 64-bit multipliers
    ``(a, b, d)`` weight the three equations, the cached bases
    (``g``, ``y``, roster keys) fold into single accumulated exponents, and
    the per-signature bases (``t*``, ``c1``, ``c2``) join one bucket-method
    product.  The final equality is checked after raising to the group
    cofactor, which projects away any small-order component an adversary
    might smuggle into a hint; the subgroup components — the only thing the
    proof system speaks about — must then cancel exactly, so a batch
    containing even one forged signature passes with probability at most
    ~2**-64.

    Two checks stay exact per signature because batching them is unsound or
    pointless: subgroup membership of ``c1``/``c2`` (cofactor components of
    *independent* ciphertexts could cancel pairwise inside a combined
    product, and fairness — judge opening — needs well-formed ciphertexts),
    and the challenge hash itself (already cheap, and it is what binds the
    claimed commitments).

    Hints are untrusted metadata: signatures whose hints are missing,
    malformed, or inconsistent with the challenge hash are verified
    individually via :func:`group_verify`, so a stripped or corrupted hint
    can never reject an honest signature — nor accept a forged one.

    Pure predicate: ``True`` iff *every* pair verifies.  Callers needing to
    identify the offender re-check individually after a ``False``.
    """
    items = list(items)
    if not items:
        return True
    params = gpk.params
    p, q, g = params.p, params.q, params.g
    y = gpk.opening_key.y
    n = len(gpk.roster)

    leftover: list[int] = []  # indices that need individual verification
    agg_g = 0  # exponent of g on the equation LHS
    agg_y = 0  # exponent of y on the equation LHS
    agg_h = [0] * n  # exponent of h_j on the LHS (E2) minus the RHS (E3)
    adhoc: list[tuple[int, int]] = []  # per-signature bases for the RHS
    for index, (message, signature) in enumerate(items):
        if not (
            len(signature.challenges)
            == len(signature.responses_r)
            == len(signature.responses_x)
            == n
        ):
            return False
        c1, c2 = signature.ciphertext.c1, signature.ciphertext.c2
        if not (params.is_element(c1) and params.is_element(c2)):
            return False
        if not all(
            0 <= c_j < q and 0 <= s_r < q and 0 <= s_x < q
            for c_j, s_r, s_x in zip(
                signature.challenges, signature.responses_r, signature.responses_x
            )
        ):
            return False
        hints = signature.commitments
        if (
            hints is None
            or len(hints) != n
            or not all(
                isinstance(hint, tuple)
                and len(hint) == 3
                and all(isinstance(t, int) and 0 < t < p for t in hint)
                for hint in hints
            )
        ):
            leftover.append(index)
            continue
        total = _challenge_hash(gpk, signature.ciphertext, list(hints), message)
        if sum(signature.challenges) % q != total:
            # The hash does not match the *claimed* commitments.  The hint
            # may be corrupt while the signature is valid — decide exactly.
            leftover.append(index)
            continue
        e_c1 = 0  # exponent of this signature's c1 on the RHS
        e_c2 = 0  # exponent of this signature's c2 on the RHS
        for j in range(n):
            c_j = signature.challenges[j]
            s_r = signature.responses_r[j]
            s_x = signature.responses_x[j]
            t1, t2, t3 = hints[j]
            a = secrets.randbits(BATCH_RANDOMIZER_BITS) | 1
            b = secrets.randbits(BATCH_RANDOMIZER_BITS) | 1
            d = secrets.randbits(BATCH_RANDOMIZER_BITS) | 1
            agg_g += a * s_r + d * s_x
            agg_y += b * s_r
            agg_h[j] += (b - d) * c_j
            e_c1 += a * c_j
            e_c2 += b * c_j
            adhoc.append((t1, a))
            adhoc.append((t2, b))
            adhoc.append((t3, d))
        adhoc.append((c1, e_c1 % q))
        adhoc.append((c2, e_c2 % q))

    if adhoc:
        # RHS * LHS**-1, inversion-free: every LHS base is order-q, so its
        # exponent negates as q - e.  The t* hints have unknown order — they
        # stay on the RHS with their (positive, < q) random multipliers.
        pairs = adhoc + [(g, (-agg_g) % q), (y, (-agg_y) % q)]
        pairs.extend((h_j, (-agg_h[j]) % q) for j, h_j in enumerate(gpk.roster))
        ratio = fastexp.multi_exp(pairs, p, order=q, promote=False)
        if pow(ratio, params.cofactor, p) != 1:
            return False

    return all(group_verify(gpk, *items[index]) for index in leftover)
