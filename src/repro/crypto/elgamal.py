"""ElGamal encryption over the shared Schnorr groups.

Used by the group-signature scheme: every group signature carries an ElGamal
encryption of the signer's membership public key under the judge's *opening
key*, which is what lets the judge — and only the judge — de-anonymize a
signature (the paper's fairness property, Section 2).

Plaintexts are group elements.  The helpers :func:`encode_int_element` /
``exponent`` plaintexts are not needed here because WhoPay only ever encrypts
membership keys, which are already subgroup elements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import fastexp, primitives
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.params import DlogParams, default_params


@dataclass(frozen=True)
class ElGamalKeyPair:
    """An ElGamal key pair; ``secret`` is the decryption exponent."""

    keypair: KeyPair

    @property
    def public(self) -> PublicKey:
        """The encryption key."""
        return self.keypair.public

    @property
    def secret(self) -> int:
        """The decryption exponent."""
        return self.keypair.x


@dataclass(frozen=True)
class ElGamalCiphertext:
    """An ElGamal ciphertext ``(c1, c2) = (g^r, m * y^r)``."""

    c1: int
    c2: int

    def encode(self) -> bytes:
        """Stable byte encoding."""
        return primitives.int_to_bytes(self.c1) + b"|" + primitives.int_to_bytes(self.c2)


def elgamal_generate(params: DlogParams | None = None) -> ElGamalKeyPair:
    """Generate an ElGamal key pair."""
    return ElGamalKeyPair(keypair=KeyPair.generate(params or default_params()))


def elgamal_encrypt(public: PublicKey, element: int, nonce: int | None = None) -> ElGamalCiphertext:
    """Encrypt the subgroup element ``element`` to ``public``.

    ``nonce`` may be supplied by callers that need the encryption randomness
    for an accompanying zero-knowledge proof (the group-signature scheme
    does); otherwise a fresh one is drawn.
    """
    params = public.params
    if not params.is_element(element):
        raise ValueError("ElGamal plaintext must be a subgroup element")
    r = params.random_exponent() if nonce is None else nonce
    c1 = params.pow_g(r)
    # The encryption key is long-lived (the judge's opening key outlives the
    # whole system), so it auto-promotes to a fixed-base table.
    c2 = (element * fastexp.mod_pow(public.y, r, params.p, order=params.q)) % params.p
    return ElGamalCiphertext(c1=c1, c2=c2)


def elgamal_decrypt(key: ElGamalKeyPair, ciphertext: ElGamalCiphertext) -> int:
    """Recover the plaintext subgroup element."""
    params = key.keypair.params
    shared = pow(ciphertext.c1, key.secret, params.p)
    return (ciphertext.c2 * primitives.modinv(shared, params.p)) % params.p
