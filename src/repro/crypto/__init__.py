"""Cryptographic substrate for the WhoPay reproduction.

Everything in this package is implemented from scratch on top of the Python
standard library (``hashlib``, ``secrets``, ``hmac``).  No third-party
cryptography package is used.  The paper (Section 6.2, Table 2) assumes DSA
1024-bit signatures and an "efficient group signature scheme" (Section 3.2);
both are provided here, along with the auxiliary primitives the extensions
need (ElGamal for the judge's opening key, Shamir secret sharing for
threshold judges, PayWord hash chains for micropayment aggregation).

The implementations are honest, working algorithms — signatures really
verify, group signatures really hide and really open — but this is research
code: it has not been audited, makes no side-channel guarantees, and must not
be used to protect real value.
"""

from repro.crypto import fastexp
from repro.crypto.dsa import (
    DsaKeyPair,
    DsaSignature,
    dsa_batch_verify,
    dsa_digest,
    dsa_generate,
    dsa_sign,
    dsa_verify,
)
from repro.crypto.elgamal import ElGamalCiphertext, ElGamalKeyPair, elgamal_decrypt, elgamal_encrypt, elgamal_generate
from repro.crypto.group_signature import (
    GroupManager,
    GroupMemberKey,
    GroupPublicKey,
    GroupSignature,
    group_sign,
    group_verify,
)
from repro.crypto.hashchain import HashChain, verify_chain_link
from repro.crypto.keys import KeyPair, PublicKey, fingerprint
from repro.crypto.params import DlogParams, PARAMS_1024_160, PARAMS_2048_256, PARAMS_TEST_512, default_params
from repro.crypto.schnorr import SchnorrProof, schnorr_batch_verify, schnorr_prove, schnorr_verify
from repro.crypto.shamir import combine_shares, split_secret

__all__ = [
    "DlogParams",
    "PARAMS_1024_160",
    "PARAMS_2048_256",
    "PARAMS_TEST_512",
    "default_params",
    "fastexp",
    "DsaKeyPair",
    "DsaSignature",
    "dsa_batch_verify",
    "dsa_digest",
    "dsa_generate",
    "dsa_sign",
    "dsa_verify",
    "ElGamalKeyPair",
    "ElGamalCiphertext",
    "elgamal_generate",
    "elgamal_encrypt",
    "elgamal_decrypt",
    "GroupManager",
    "GroupMemberKey",
    "GroupPublicKey",
    "GroupSignature",
    "group_sign",
    "group_verify",
    "HashChain",
    "verify_chain_link",
    "KeyPair",
    "PublicKey",
    "fingerprint",
    "SchnorrProof",
    "schnorr_batch_verify",
    "schnorr_prove",
    "schnorr_verify",
    "split_secret",
    "combine_shares",
]
